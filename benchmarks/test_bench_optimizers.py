"""A3 — optimizer comparison and MDL-weight sweep (Sections 3.6 / 5).

Three studies:

* the heuristic lattice walk vs simulated annealing vs factorial design
  (the two Section 5 alternatives) on the same BinArray — final MDL cost
  and trial counts;
* the MDL weight bias: large ``w_c`` favours fewer clusters, large
  ``w_e`` favours lower error (Section 3.6's promise).
"""

from conftest import emit, generate
from repro.binning import bin_table
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.clusterer import GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.optimizer import HeuristicOptimizer, OptimizerConfig
from repro.core.verifier import Verifier
from repro.extensions.annealing import AnnealingConfig, AnnealingOptimizer
from repro.extensions.factorial import factorial_search
from repro.viz.report import format_table


def test_optimizer_comparison(benchmark):
    table = generate(15_000, outlier_fraction=0.05, seed=44)
    binner = bin_table(table, "age", "salary", "group", 40, 40)
    code = binner.rhs_encoding.code_of("A")
    clusterer = GridClusterer()
    verifier = Verifier(table, "group", "A", sample_size=1500, repeats=3)

    heuristic = benchmark.pedantic(
        lambda: HeuristicOptimizer(
            clusterer, verifier, MDLWeights(),
            OptimizerConfig(max_support_levels=8,
                            max_confidence_levels=6),
        ).search(binner.bin_array, code),
        rounds=1, iterations=1,
    )
    annealed = AnnealingOptimizer(
        clusterer, verifier,
        config=AnnealingConfig(min_temperature=0.05, seed=4),
    ).search(binner.bin_array, code)
    factorial = factorial_search(
        binner.bin_array, code, clusterer, verifier, rounds=3
    )

    rows = [
        ["heuristic walk", heuristic.best.mdl_cost,
         heuristic.best.n_clusters, len(heuristic.history)],
        ["simulated annealing", annealed.best.mdl_cost,
         annealed.best.n_clusters, len(annealed.history)],
        ["factorial design", factorial.best.mdl_cost,
         factorial.best.n_clusters, len(factorial.history)],
    ]
    emit("a3_optimizer_comparison",
         "A3a: optimizer comparison (MDL cost / clusters / trials)",
         format_table(["optimizer", "mdl", "clusters", "trials"], rows))

    # All three must land on a sane segmentation; factorial uses the
    # fewest trials (its selling point).
    for result in (heuristic, annealed, factorial):
        assert result.best.n_clusters >= 1
    assert len(factorial.history) <= len(heuristic.history)


def test_mdl_weight_bias(benchmark):
    table = generate(15_000, outlier_fraction=0.10, seed=45)

    def fit_with(weights):
        config = ARCSConfig(
            mdl_weights=weights,
            optimizer=OptimizerConfig(max_support_levels=6,
                                      max_confidence_levels=6),
        )
        return ARCS(config).fit(table, "age", "salary", "group", "A")

    balanced = benchmark.pedantic(
        fit_with, args=(MDLWeights(),), rounds=1, iterations=1
    )
    few_clusters = fit_with(MDLWeights(cluster_weight=25.0))
    low_error = fit_with(MDLWeights(error_weight=25.0))

    rows = [
        ["w_c=1, w_e=1", len(balanced.segmentation),
         balanced.best_trial.report.error_rate],
        ["w_c=25 (few clusters)", len(few_clusters.segmentation),
         few_clusters.best_trial.report.error_rate],
        ["w_e=25 (low error)", len(low_error.segmentation),
         low_error.best_trial.report.error_rate],
    ]
    emit("a3_mdl_weight_bias",
         "A3b: MDL weight bias (Section 3.6)",
         format_table(["weights", "rules", "error"], rows))

    # The biases must pull in their stated directions (weak inequality:
    # the balanced default may already be optimal on both axes).
    assert len(few_clusters.segmentation) <= len(balanced.segmentation)
    assert (low_error.best_trial.report.error_rate
            <= balanced.best_trial.report.error_rate + 0.01)
