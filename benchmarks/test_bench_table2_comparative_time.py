"""E7 — Table 2: comparative execution times.

Paper shape: "Both C4.5 alone and C4.5 together with C4.5RULES take
exponentially higher execution times than ARCS."  The sweep reports
seconds for ARCS, the C4.5 tree, and tree+RULES at each size; ARCS's
growth must stay near-linear while C4.5+RULES pulls away super-linearly.
"""

from conftest import comparison_table, emit, points_data


def test_table2_comparative_times(benchmark, comparison_sweep):
    points = comparison_sweep[0.0]
    augmented = []
    for point in points:
        augmented.append([
            point.n_tuples,
            round(point.arcs_seconds, 3),
            round(point.c45_tree_seconds, 3),
            round(point.c45_tree_seconds + point.c45_rules_seconds, 3),
        ])
    from repro.viz.report import format_table
    table = format_table(
        ["tuples", "ARCS (s)", "C4.5 (s)", "C4.5+RULES (s)"], augmented
    )
    emit("e7_table2_comparative_time",
         "E7 / Table 2: comparative execution time", table,
         data=points_data(points))

    def growth_ratios():
        first, last = points[0], points[-1]
        size_ratio = last.n_tuples / first.n_tuples
        arcs_growth = last.arcs_seconds / first.arcs_seconds
        c45_growth = (
            (last.c45_tree_seconds + last.c45_rules_seconds)
            / (first.c45_tree_seconds + first.c45_rules_seconds)
        )
        return size_ratio, arcs_growth, c45_growth

    size_ratio, arcs_growth, c45_growth = benchmark(growth_ratios)

    # ARCS grows at most ~linearly; C4.5+RULES grows faster than ARCS.
    assert arcs_growth < size_ratio * 1.5
    assert c45_growth > arcs_growth
    # C4.5+RULES is the slowest system at the largest size (paper's
    # ordering).
    last = points[-1]
    assert (last.c45_tree_seconds + last.c45_rules_seconds
            > last.arcs_seconds)
