"""A4 — the motivating rule explosion (paper Section 1 / related work).

"When mining association rules from this type of non-transactional data
we may find hundreds or thousands of rules corresponding to specific
attribute values.  We therefore introduce a clustered association rule."

This bench quantifies that: on the same Function 2 data, count

* the raw per-cell association rules the specialised engine emits,
* the range rules a Srikant-Agrawal-style quantitative miner emits
  (with and without its interest measure),
* the clustered rules ARCS produces.

The orders-of-magnitude collapse is the paper's raison d'etre.
"""

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.binning import bin_table
from repro.core.arcs import ARCS
from repro.mining.engine import rule_pairs
from repro.mining.quantitative import QuantitativeMiner
from repro.viz.report import format_table


def test_rule_explosion(benchmark):
    table = generate(20_000, 0.0, seed=90)

    # Raw cell rules at a permissive-but-sane threshold pair.
    binner = bin_table(table, "age", "salary", "group", 50, 50)
    code = binner.rhs_encoding.code_of("A")
    cell_rules = len(rule_pairs(binner.bin_array, code, 0.0002, 0.6))

    # Srikant-Agrawal range rules.
    miner = QuantitativeMiner(
        table, ["age", "salary"], "group", n_bins=12
    )
    quant_all = len(
        miner.mine("A", min_support=0.01, min_confidence=0.6,
                   min_interest=None)
    )
    # Group A's base rate is ~0.385, so any rule already above 0.6
    # confidence has interest >= 1.56; pruning bites from 2.0 up.
    quant_interesting = benchmark.pedantic(
        lambda: len(
            miner.mine("A", min_support=0.01, min_confidence=0.6,
                       min_interest=2.0)
        ),
        rounds=1, iterations=1,
    )

    # ARCS clustered rules.
    arcs_rules = len(
        ARCS(ARCS_SWEEP_CONFIG)
        .fit(table, "age", "salary", "group", "A").segmentation
    )

    rows = [
        ["per-cell association rules (Fig 3 engine)", cell_rules],
        ["quantitative range rules (no interest)", quant_all],
        ["quantitative range rules (interest >= 2.0)",
         quant_interesting],
        ["ARCS clustered rules", arcs_rules],
    ]
    emit("a4_rule_explosion",
         "A4: rule counts — the explosion ARCS collapses",
         format_table(["rule form", "count"], rows))

    assert cell_rules > 100
    assert quant_all > 10 * arcs_rules
    assert quant_interesting < quant_all  # interest prunes
    assert arcs_rules <= 6
