#!/usr/bin/env python
"""Serving load harness: throughput + latency SLOs over live HTTP.

Stands up the prediction server twice against the same generated model
directory — once as the threaded single process (``--workers 0``
semantics) and once as the pre-fork multi-worker front end — and drives
each with forked client processes running keep-alive connections.  For
every scenario it measures client-side throughput and p50/p95/p99
latency, scrapes the server's own ``serve.request_seconds`` labeled
histogram, and first proves the served answers bit-identical to the
scalar oracle (:func:`repro.perf.reference.score_batch_scalar`).

The multi-process scenario runs with fleet telemetry enabled (a
sub-second snapshot interval), so its latency gates hold *with* the
cross-worker aggregation running; the report records what each
aggregation interval cost under ``fleet_telemetry`` (the
``fleet.publish_seconds`` histogram plus ``/fleet`` ship counts).

The measurements are gated by the ``serving`` section of
``benchmarks/perf_budgets.json``:

* ``max_p95_seconds`` — client-observed p95 per scenario, always
  enforced;
* ``min_throughput_ratio`` — multi-worker over threaded throughput,
  enforced only on machines with at least ``min_cores`` cores (the
  ratio is meaningless on a single-core box; it is still measured and
  recorded there, with status ``skipped``).

The report lands at ``BENCH_serving.json`` in the repo root — written
even when the run crashes (``"status": "error"``), mirroring the
perf-budget harness, and CI fails loudly when the file is missing.

Usage::

    python benchmarks/serve_load.py            # full load (~20s serving)
    python benchmarks/serve_load.py --quick    # short CI smoke

Exit status: 0 when every gate holds, 1 on any SLO breach or
equivalence mismatch.
"""

from __future__ import annotations

import argparse
import http.client
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(
    (Path(entry) / "repro").is_dir() for entry in sys.path if entry
):
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.rules import ClusteredRule, Interval  # noqa: E402
from repro.core.segmentation import Segmentation  # noqa: E402
from repro.perf.reference import score_batch_scalar  # noqa: E402
from repro.persistence import save_segmentation  # noqa: E402
from repro.serve import (  # noqa: E402
    WorkerConfig,
    create_multiprocess_server,
    create_server,
)

BUDGETS_PATH = Path(__file__).parent / "perf_budgets.json"
#: Repo-root landing spot, like BENCH_hotpaths.json: one well-known
#: path for CI artifact upload and trajectory scripts.
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"

MODEL_NAME = "bench"

#: (full, quick) load shape: client processes, threads per process,
#: seconds of sustained load per scenario.
LOAD = {"full": (4, 4, 8.0), "quick": (2, 4, 2.0)}


def build_model(directory: Path) -> Segmentation:
    """Persist the benchmark segmentation (seeded, 24 rules)."""
    rng = np.random.default_rng(505)
    rules = []
    for index in range(24):
        x_lo, y_lo = rng.uniform(0.0, 80.0, 2)
        rules.append(ClusteredRule(
            "x", "y",
            Interval(x_lo, x_lo + rng.uniform(2.0, 15.0),
                     closed_high=bool(index % 2)),
            Interval(y_lo, y_lo + rng.uniform(2.0, 15.0),
                     closed_high=bool(index % 3 == 0)),
            "group", "A", support=0.1, confidence=0.9,
        ))
    segmentation = Segmentation.from_rules(rules)
    save_segmentation(segmentation, directory / f"{MODEL_NAME}.json")
    return segmentation


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _request(host: str, port: int, method: str, path: str,
             payload: dict | None = None,
             timeout: float = 30.0) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def _split_url(url: str) -> tuple[str, int]:
    host, _, port = url.removeprefix("http://").partition(":")
    return host, int(port)


def equivalence_probe(url: str, segmentation: Segmentation,
                      points: int = 2048) -> dict:
    """Served answers must match the scalar oracle bit for bit."""
    rng = np.random.default_rng(606)
    x_values = rng.uniform(-5.0, 105.0, points)
    y_values = rng.uniform(-5.0, 105.0, points)
    expected = score_batch_scalar(segmentation, x_values, y_values)
    host, port = _split_url(url)
    status, body = _request(host, port, "POST", "/predict_batch", {
        "model": MODEL_NAME,
        "x": x_values.tolist(), "y": y_values.tolist(),
    })
    if status != 200:
        raise SystemExit(
            f"equivalence probe got HTTP {status} from {url}: {body}"
        )
    served = np.asarray(body["rule"], dtype=np.int64)
    matches = bool(np.array_equal(served, expected))
    return {
        "points": points,
        "status": "pass" if matches else "fail",
        "mismatches": int(np.count_nonzero(served != expected)),
    }


# ----------------------------------------------------------------------
# Load generation (forked client processes, keep-alive connections)
# ----------------------------------------------------------------------
def _client_main(host: str, port: int, threads: int, duration: float,
                 seed: int, results) -> None:
    """One client process: ``threads`` keep-alive request loops."""
    import threading

    rng = np.random.default_rng(seed)
    # A fixed pool of points per process, cycled by every thread:
    # endpoint work stays identical across scenarios and runs.
    x_pool = rng.uniform(-5.0, 105.0, 512)
    y_pool = rng.uniform(-5.0, 105.0, 512)
    latencies: list[list[float]] = [[] for _ in range(threads)]
    counts = [[0, 0, 0] for _ in range(threads)]  # ok, shed, error

    def loop(slot: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        deadline = perf_counter() + duration
        index = slot
        while perf_counter() < deadline:
            payload = json.dumps({
                "model": MODEL_NAME,
                "x": float(x_pool[index % 512]),
                "y": float(y_pool[index % 512]),
            }).encode()
            index += threads
            started = perf_counter()
            try:
                connection.request(
                    "POST", "/predict", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=30.0
                )
                counts[slot][2] += 1
                continue
            elapsed = perf_counter() - started
            if status == 200:
                counts[slot][0] += 1
                latencies[slot].append(elapsed)
            elif status == 429:
                counts[slot][1] += 1
            else:
                counts[slot][2] += 1
        connection.close()

    workers = [
        threading.Thread(target=loop, args=(slot,))
        for slot in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    results.put({
        "latencies": [value for slot in latencies for value in slot],
        "ok": sum(count[0] for count in counts),
        "shed": sum(count[1] for count in counts),
        "errors": sum(count[2] for count in counts),
    })


def run_load(name: str, url: str, processes: int, threads: int,
             duration: float) -> dict:
    """Drive one server with forked clients; return the measurements."""
    host, port = _split_url(url)
    context = multiprocessing.get_context("fork")
    results = context.Queue()
    clients = [
        context.Process(
            target=_client_main,
            args=(host, port, threads, duration, 900 + index, results),
            daemon=True,
        )
        for index in range(processes)
    ]
    started = perf_counter()
    for client in clients:
        client.start()
    merged = {"latencies": [], "ok": 0, "shed": 0, "errors": 0}
    for _ in clients:
        chunk = results.get(timeout=duration + 60.0)
        merged["latencies"].extend(chunk["latencies"])
        for key in ("ok", "shed", "errors"):
            merged[key] += chunk[key]
    for client in clients:
        client.join(timeout=30.0)
    elapsed = perf_counter() - started
    latencies = np.asarray(merged["latencies"], dtype=np.float64)
    if latencies.size == 0:
        raise SystemExit(
            f"scenario {name!r} completed zero requests against {url}"
        )
    p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])
    return {
        "name": name,
        "clients": processes * threads,
        "duration_seconds": elapsed,
        "requests_ok": merged["ok"],
        "requests_shed": merged["shed"],
        "requests_error": merged["errors"],
        "throughput_rps": merged["ok"] / elapsed,
        "client_latency_seconds": {
            "p50": float(p50), "p95": float(p95), "p99": float(p99),
            "mean": float(latencies.mean()),
        },
    }


def scrape_metrics(url: str) -> dict:
    """The ``/metrics`` JSON snapshot (``{"counters", "gauges", ...}``).

    In multi-worker mode this is the *fleet* aggregate once the parent
    has published one (any worker serves the same merged view); before
    the first publish — and always in threaded mode — it is the
    answering process's local registry.
    """
    host, port = _split_url(url)
    status, body = _request(host, port, "GET", "/metrics")
    if status != 200:
        return {}
    return body.get("metrics", {})


def scrape_histogram(url: str) -> dict | None:
    """The server's own ``serve.request_seconds{endpoint="predict"}``,
    for the latency the *server* observed, excluding connection time."""
    return scrape_metrics(url).get("histograms", {}).get(
        'serve.request_seconds{endpoint="predict"}'
    )


def scrape_fleet_overhead(url: str) -> dict | None:
    """What fleet telemetry itself cost during the load run.

    ``fleet.publish_seconds`` times each parent-side aggregation
    interval end to end: merging every worker's shipped snapshot plus
    atomically replacing the fleet document.  ``/fleet`` adds how many
    snapshots workers shipped.  Returns ``None`` when the server runs
    without fleet telemetry (threaded mode, or no publish happened).
    """
    histogram = scrape_metrics(url).get("histograms", {}).get(
        "fleet.publish_seconds"
    )
    if histogram is None:
        return None
    host, port = _split_url(url)
    status, body = _request(host, port, "GET", "/fleet")
    fleet = body if status == 200 else {}
    return {
        "publishes": histogram["count"],
        "publish_seconds": {
            key: histogram[key]
            for key in ("mean", "p50", "p95", "max")
        },
        "snapshots_absorbed": fleet.get("snapshots_absorbed"),
        "workers_reporting": len(fleet.get("workers", {})) or None,
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def run_threaded(model_dir: Path, load: tuple[int, int, float],
                 segmentation: Segmentation) -> dict:
    server = create_server(
        model_dir, port=0, refresh_interval=-1,
        batch_window_seconds=0.002,
    )
    thread = server.serve_in_background()
    try:
        equivalence = equivalence_probe(server.url, segmentation)
        result = run_load("threaded", server.url, *load)
        result["server_histogram"] = scrape_histogram(server.url)
    finally:
        server.service.begin_drain()
        if server.service.batcher is not None:
            server.service.batcher.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
    result["workers"] = 0
    result["equivalence"] = equivalence
    return result


def run_multiprocess(model_dir: Path, load: tuple[int, int, float],
                     segmentation: Segmentation, workers: int) -> dict:
    # Fleet telemetry stays ON (sub-second interval, so even the quick
    # mode's short scenario spans several aggregation cycles): the p95
    # gate below therefore proves the latency budget holds *with* the
    # snapshot ship + merge running, and the publish histogram records
    # what each aggregation interval cost.
    server = create_multiprocess_server(
        model_dir, port=0, workers=workers, refresh_interval=-1,
        config=WorkerConfig(telemetry_interval=0.5),
    )
    server.start()
    try:
        equivalence = equivalence_probe(server.url, segmentation)
        result = run_load("multiprocess", server.url, *load)
        result["server_histogram"] = scrape_histogram(server.url)
        result["fleet_telemetry"] = scrape_fleet_overhead(server.url)
    finally:
        server.drain(timeout=30.0)
    result["workers"] = workers
    result["equivalence"] = equivalence
    return result


# ----------------------------------------------------------------------
# SLO gating and reporting
# ----------------------------------------------------------------------
def load_slo(path: Path) -> tuple[dict, float]:
    payload = json.loads(path.read_text())
    if payload.get("format") != "arcs-perf-budgets":
        raise SystemExit(f"{path} is not an arcs-perf-budgets file")
    serving = payload.get("serving")
    if serving is None:
        raise SystemExit(f"{path} has no 'serving' SLO section")
    return serving, float(payload.get("noise_tolerance", 0.25))


def apply_slo(scenarios: list[dict], slo: dict, tolerance: float,
              cores: int) -> list[dict]:
    """Every gate as a verdict row for the report (and the exit code)."""
    verdicts = []
    max_p95 = float(slo["max_p95_seconds"])
    for scenario in scenarios:
        p95 = scenario["client_latency_seconds"]["p95"]
        verdicts.append({
            "gate": "max_p95_seconds",
            "scenario": scenario["name"],
            "value": p95,
            "budget": max_p95,
            "status": "pass" if p95 <= max_p95 else "fail",
        })
    by_name = {scenario["name"]: scenario for scenario in scenarios}
    ratio = (by_name["multiprocess"]["throughput_rps"]
             / by_name["threaded"]["throughput_rps"])
    min_ratio = float(slo["min_throughput_ratio"])
    floor = min_ratio * (1.0 - tolerance)
    min_cores = int(slo.get("min_cores", 4))
    verdict = {
        "gate": "min_throughput_ratio",
        "scenario": "multiprocess/threaded",
        "value": ratio,
        "budget": min_ratio,
        "floor": floor,
        "cores": cores,
        "min_cores": min_cores,
    }
    if cores < min_cores:
        # One or two cores cannot show multi-core scaling; record the
        # ratio but don't gate on it (CI's 4-core runners do).
        verdict["status"] = "skipped"
        verdict["reason"] = (
            f"machine has {cores} core(s); gate needs {min_cores}"
        )
    else:
        verdict["status"] = "pass" if ratio >= floor else "fail"
    verdicts.append(verdict)
    for scenario in scenarios:
        verdicts.append({
            "gate": "bit_identical_to_oracle",
            "scenario": scenario["name"],
            "value": scenario["equivalence"]["mismatches"],
            "budget": 0,
            "status": scenario["equivalence"]["status"],
        })
    return verdicts


def render(scenarios: list[dict], verdicts: list[dict]) -> str:
    lines = []
    header = (
        f"{'scenario':<14} {'workers':>7} {'clients':>7} {'ok':>8} "
        f"{'shed':>6} {'err':>5} {'rps':>9} {'p50':>9} {'p95':>9} "
        f"{'p99':>9}"
    )
    lines += [header, "-" * len(header)]
    for scenario in scenarios:
        latency = scenario["client_latency_seconds"]
        lines.append(
            f"{scenario['name']:<14} {scenario['workers']:>7} "
            f"{scenario['clients']:>7} {scenario['requests_ok']:>8} "
            f"{scenario['requests_shed']:>6} "
            f"{scenario['requests_error']:>5} "
            f"{scenario['throughput_rps']:>9.1f} "
            f"{latency['p50'] * 1000:>8.2f}ms "
            f"{latency['p95'] * 1000:>8.2f}ms "
            f"{latency['p99'] * 1000:>8.2f}ms"
        )
    lines.append("")
    for verdict in verdicts:
        detail = f" ({verdict['reason']})" if "reason" in verdict else ""
        lines.append(
            f"  [{verdict['status']:>7}] {verdict['gate']} "
            f"[{verdict['scenario']}]: {verdict['value']:.4g} "
            f"vs budget {verdict['budget']:.4g}{detail}"
        )
    return "\n".join(lines)


def write_report(path: Path, mode: str, scenarios: list[dict],
                 verdicts: list[dict], status: str,
                 error: str | None = None) -> None:
    payload = {
        "format": "arcs-serving-report",
        "version": 1,
        "generated_at": time.time(),  # wall-clock: ok (artefact stamp)
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
        },
        "status": status,
        "scenarios": scenarios,
        "slo": verdicts,
    }
    if error is not None:
        payload["error"] = error
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="short load for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    parser.add_argument("--budgets", type=Path, default=BUDGETS_PATH,
                        help=f"SLO file (default {BUDGETS_PATH})")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the multi-process "
                             "scenario (default: one per core, 2-4)")
    args = parser.parse_args(argv)

    if "fork" not in multiprocessing.get_all_start_methods():
        raise SystemExit(
            "serve_load needs the 'fork' start method (Linux/macOS)"
        )
    slo, tolerance = load_slo(args.budgets)
    mode = "quick" if args.quick else "full"
    load = LOAD[mode]
    cores = os.cpu_count() or 1
    workers = args.workers or max(2, min(4, cores))

    scenarios: list[dict] = []
    verdicts: list[dict] = []
    try:
        with tempfile.TemporaryDirectory() as tmp:
            model_dir = Path(tmp)
            segmentation = build_model(model_dir)
            print(f"serve-load ({mode} mode): {load[0]}x{load[1]} "
                  f"clients, {load[2]:.0f}s per scenario, "
                  f"{workers} workers, {cores} core(s)")
            scenarios.append(
                run_threaded(model_dir, load, segmentation)
            )
            scenarios.append(
                run_multiprocess(model_dir, load, segmentation, workers)
            )
        verdicts = apply_slo(scenarios, slo, tolerance, cores)
    except BaseException as error:
        # A crashing run must still leave a report behind: CI treats a
        # missing BENCH_serving.json as a broken run and fails loudly.
        write_report(args.out, mode, scenarios, verdicts, "error",
                     error=f"{type(error).__name__}: {error}")
        print(f"serve-load crashed; partial report written to {args.out}")
        raise

    failed = [v for v in verdicts if v["status"] == "fail"]
    status = "fail" if failed else "pass"
    print()
    print(render(scenarios, verdicts))
    write_report(args.out, mode, scenarios, verdicts, status)
    print(f"\nreport written to {args.out}")
    if failed:
        gates = ", ".join(
            f"{verdict['gate']}[{verdict['scenario']}]"
            for verdict in failed
        )
        print(f"\nSERVING SLO BREACHED: {gates} (see report)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
