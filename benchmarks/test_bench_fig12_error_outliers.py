"""E3 — Figure 12: error rate vs database size, 10% outliers.

Paper shape: with 10% of the data as outliers the error rate of C4.5 is
slightly higher than ARCS.  The 10% flipped labels are an irreducible
error floor for both systems, so both series sit above 0.10.
"""

from conftest import comparison_table, emit, points_data


def test_fig12_error_rates_with_outliers(benchmark, comparison_sweep):
    points = comparison_sweep[0.10]
    table = comparison_table(points, ["arcs_error", "c45_error"])
    emit("e3_fig12_error_outliers",
         "E3 / Figure 12: error rate vs tuples (U=10%)", table,
         data=points_data(points))

    def mean_gap():
        return sum(
            point.c45_error - point.arcs_error for point in points
        ) / len(points)

    gap = benchmark(mean_gap)

    for point in points:
        # Both floors at the outlier rate; neither collapses.
        assert 0.08 <= point.arcs_error < 0.30
        assert 0.08 <= point.c45_error < 0.30
    # Paper: ARCS at or below C4.5 under outliers (allow a small slack
    # band — the two are close).
    assert gap > -0.05
