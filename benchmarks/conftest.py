"""Shared machinery for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  The expensive comparison
sweep (ARCS vs C4.5 over a tuple-count range, with and without outliers)
is computed once per session and shared by the Figure 11–14 and Table 2
modules; each module then times one representative kernel with
pytest-benchmark and writes its paper-style table to
``benchmarks/results/`` as well as stdout.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.baselines import C45Rules, C45Tree, classification_error
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.viz.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Tuple counts for the ARCS-vs-C4.5 sweep.  The paper sweeps 20k–1M on a
#: 120 MHz Pentium running C; pure-Python C4.5RULES is the bottleneck, so
#: the comparison sweep is scaled down (the ARCS-only scale-up below goes
#: to 500k).  Sizes stay at 10k and above: the paper's own sweep starts
#: at 20k because a 50x50 BinArray needs several tuples per cell for
#: stable support/confidence estimates (at 5k a lone outlier already
#: gives its cell confidence 1.0).
COMPARISON_SIZES = (10_000, 20_000, 40_000)

#: Larger ARCS-only sizes for the Figure 15 scale-up.
SCALEUP_SIZES = (20_000, 50_000, 100_000, 200_000, 500_000)

#: A finer confidence axis than support axis: under outliers the usable
#: confidence band is narrow and a coarse axis can miss it entirely.
ARCS_SWEEP_CONFIG = ARCSConfig(
    optimizer=OptimizerConfig(max_support_levels=6,
                              max_confidence_levels=10),
)


def emit(name: str, title: str, text: str, data=None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Two artefacts are written per result: the paper-style ASCII table
    (``{name}.txt``) and a machine-readable record (``{name}.json``)
    carrying ``data`` — the structured rows behind the table, including
    any timings — so downstream tooling can diff runs without parsing
    the rendered text.
    """
    banner = f"\n=== {title} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n"))
    payload = {
        "format": "arcs-benchmark-result",
        "version": 1,
        "name": name,
        "title": title,
        "generated_at": time.time(),  # wall-clock: ok (artefact stamp)
        "text": text,
        "data": data,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )


def points_data(points: list["ComparisonPoint"]) -> list[dict]:
    """ComparisonPoints as JSON-ready dicts (rows for :func:`emit`)."""
    return [asdict(point) for point in points]


def generate(n_tuples: int, outlier_fraction: float = 0.0,
             seed: int = 1000) -> repro.Table:
    return repro.generate_synthetic(
        repro.SyntheticConfig(
            n_tuples=n_tuples, function_id=2, perturbation=0.05,
            outlier_fraction=outlier_fraction, seed=seed,
        )
    )


@dataclass(frozen=True)
class ComparisonPoint:
    """One (size, outlier level) cell of the ARCS-vs-C4.5 sweep."""

    n_tuples: int
    outlier_fraction: float
    arcs_error: float
    c45_error: float
    arcs_rules: int
    c45_rules_total: int
    c45_rules_for_a: int
    arcs_seconds: float
    c45_tree_seconds: float
    c45_rules_seconds: float


def _run_point(n_tuples: int, outlier_fraction: float,
               seed: int) -> ComparisonPoint:
    train = generate(n_tuples, outlier_fraction, seed=seed)
    test = generate(max(2_000, n_tuples // 2), outlier_fraction,
                    seed=seed + 7)

    start = time.perf_counter()
    arcs_result = ARCS(ARCS_SWEEP_CONFIG).fit(
        train, "age", "salary", "group", "A"
    )
    arcs_seconds = time.perf_counter() - start
    covered = arcs_result.segmentation.covers_table(test)
    actual = np.asarray(
        [label == "A" for label in test.column("group")]
    )
    arcs_error = float(np.mean(covered != actual))

    start = time.perf_counter()
    tree = C45Tree().fit(train, ["age", "salary"], "group")
    c45_tree_seconds = time.perf_counter() - start
    start = time.perf_counter()
    rules = C45Rules.from_tree(tree, train)
    c45_rules_seconds = time.perf_counter() - start
    c45_error = classification_error(
        rules.predict(test), test, "group", "A"
    )

    return ComparisonPoint(
        n_tuples=n_tuples,
        outlier_fraction=outlier_fraction,
        arcs_error=arcs_error,
        c45_error=c45_error,
        arcs_rules=len(arcs_result.segmentation),
        c45_rules_total=len(rules),
        c45_rules_for_a=len(rules.rules_for("A")),
        arcs_seconds=arcs_seconds,
        c45_tree_seconds=c45_tree_seconds,
        c45_rules_seconds=c45_rules_seconds,
    )


@pytest.fixture(scope="session")
def comparison_sweep() -> dict[float, list[ComparisonPoint]]:
    """The full ARCS-vs-C4.5 sweep at U = 0% and U = 10%."""
    sweep: dict[float, list[ComparisonPoint]] = {}
    for outlier_fraction in (0.0, 0.10):
        points = []
        for index, n_tuples in enumerate(COMPARISON_SIZES):
            points.append(
                _run_point(n_tuples, outlier_fraction,
                           seed=2000 + index)
            )
        sweep[outlier_fraction] = points
    return sweep


def comparison_table(points: list[ComparisonPoint],
                     columns: list[str]) -> str:
    """Render selected columns of the sweep as a paper-style table."""
    headers = ["tuples"] + columns
    rows = []
    for point in points:
        row = [point.n_tuples]
        for column in columns:
            row.append(getattr(point, column))
        rows.append(row)
    return format_table(headers, rows)
