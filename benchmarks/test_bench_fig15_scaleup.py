"""E6 — Figure 15: ARCS execution time scales linearly with |D|.

The paper scales 100k to 10M tuples (a factor of 100) and sees execution
time grow by only ~10x, because ARCS streams the data once into the
fixed-size BinArray and everything downstream is data-size independent.

This bench sweeps 20k–500k tuples and reports two timings per size:

* the **binning pass** — the only data-proportional stage; it must grow
  ~linearly with |D|;
* the **full fit** — binning plus the optimizer loop; its growth must
  stay below linear, because the loop's cost depends on the grid, not
  the data (the paper's "better than linear" observation).
"""

import time

from conftest import ARCS_SWEEP_CONFIG, SCALEUP_SIZES, emit, generate
from repro.binning import bin_table
from repro.core.arcs import ARCS
from repro.viz.report import format_table


def _measure(n_tuples: int, seed: int) -> tuple[float, float]:
    table = generate(n_tuples, 0.0, seed=seed)
    start = time.perf_counter()
    bin_table(table, "age", "salary", "group", 50, 50)
    bin_seconds = time.perf_counter() - start
    start = time.perf_counter()
    ARCS(ARCS_SWEEP_CONFIG).fit(table, "age", "salary", "group", "A")
    fit_seconds = time.perf_counter() - start
    return bin_seconds, fit_seconds


def test_fig15_scaleup(benchmark):
    timings = []
    for index, n_tuples in enumerate(SCALEUP_SIZES):
        bin_seconds, fit_seconds = _measure(n_tuples, seed=3000 + index)
        timings.append((n_tuples, bin_seconds, fit_seconds))

    base_n, base_bin, base_fit = timings[0]
    rows = [
        [n, round(bin_s, 4), round(fit_s, 3), n / base_n,
         round(bin_s / base_bin, 2), round(fit_s / base_fit, 2)]
        for n, bin_s, fit_s in timings
    ]
    table = format_table(
        ["tuples", "bin (s)", "full fit (s)", "size ratio",
         "bin ratio", "fit ratio"],
        rows,
    )
    emit("e6_fig15_scaleup",
         "E6 / Figure 15: ARCS execution time vs tuples", table,
         data=[
             {"n_tuples": n, "bin_seconds": bin_s,
              "fit_seconds": fit_s}
             for n, bin_s, fit_s in timings
         ])

    # Representative kernel for pytest-benchmark: the 100k binning pass.
    data = generate(100_000, 0.0, seed=999)
    benchmark.pedantic(
        lambda: bin_table(data, "age", "salary", "group", 50, 50),
        rounds=1, iterations=1,
    )

    last_n, last_bin, last_fit = timings[-1]
    size_ratio = last_n / base_n
    # The streaming pass is the data-proportional part: linear within
    # generous constant-factor slack.
    bin_ratio = last_bin / base_bin
    assert bin_ratio < size_ratio * 2.0
    assert bin_ratio > size_ratio / 10.0
    # The full fit must not grow super-linearly (the paper observes
    # better-than-linear: fixed grid work amortises).
    fit_ratio = last_fit / base_fit
    assert fit_ratio < size_ratio * 1.25
