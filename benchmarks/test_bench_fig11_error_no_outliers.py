"""E2 — Figure 11: error rate vs database size, no outliers.

Paper shape: both systems sit in a low error band across sizes, with
C4.5 at or slightly below ARCS (ARCS's floor is bin granularity plus the
5% perturbation's irreducible boundary noise).
"""

from conftest import comparison_table, emit, generate, points_data
from repro.core.arcs import ARCS
from conftest import ARCS_SWEEP_CONFIG


def test_fig11_error_rates(benchmark, comparison_sweep):
    points = comparison_sweep[0.0]
    table = comparison_table(points, ["arcs_error", "c45_error"])
    emit("e2_fig11_error_no_outliers",
         "E2 / Figure 11: error rate vs tuples (U=0%)", table,
         data=points_data(points))

    # Representative kernel: one ARCS fit at the middle size.
    data = generate(5_000, 0.0, seed=77)
    benchmark.pedantic(
        lambda: ARCS(ARCS_SWEEP_CONFIG).fit(
            data, "age", "salary", "group", "A"
        ),
        rounds=1, iterations=1,
    )

    # Shape assertions: low error for both systems at every size.
    for point in points:
        assert point.arcs_error < 0.15
        assert point.c45_error < 0.15
