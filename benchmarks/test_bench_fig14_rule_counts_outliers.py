"""E5 — Figure 14: number of rules produced vs database size, U=10%.

Same shape as Figure 13 under outliers: ARCS keeps its handful of
clusters (dynamic pruning absorbs the outlier background) while C4.5
still produces several times more rules.
"""

from conftest import comparison_table, emit, points_data


def test_fig14_rule_counts_with_outliers(benchmark, comparison_sweep):
    points = comparison_sweep[0.10]
    table = comparison_table(
        points, ["arcs_rules", "c45_rules_total", "c45_rules_for_a"]
    )
    emit("e5_fig14_rule_counts_outliers",
         "E5 / Figure 14: rules produced vs tuples (U=10%)", table,
         data=points_data(points))

    def rule_ratio():
        return sum(
            point.c45_rules_total / point.arcs_rules for point in points
        ) / len(points)

    ratio = benchmark(rule_ratio)

    for point in points:
        assert point.arcs_rules <= 6
    assert ratio > 2.0
