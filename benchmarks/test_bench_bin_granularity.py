"""E10 — the binning-granularity study (paper Section 4.2).

"The primary cause of error in the ARCS rules is due to the granularity
of binning. ... We performed a separate set of identical experiments
using between 10 to 50 bins for each attribute.  We found a general
trend towards more 'optimal' clusters as the number of bins increases."

The bench sweeps 10..50 bins and reports the exact region error of the
fitted segmentation; the trend must be downward.
"""

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.analysis.accuracy import exact_region_error
from repro.core.arcs import ARCS, ARCSConfig
from repro.data.functions import true_regions
from repro.viz.report import format_table

BIN_COUNTS = (10, 20, 30, 40, 50)


def _error_at(table, n_bins: int) -> float:
    config = ARCSConfig(
        n_bins_x=n_bins, n_bins_y=n_bins,
        optimizer=ARCS_SWEEP_CONFIG.optimizer,
    )
    result = ARCS(config).fit(table, "age", "salary", "group", "A")
    report = exact_region_error(
        result.segmentation, true_regions(2),
        x_range=(20, 80), y_range=(20_000, 150_000),
    )
    return report.total_error_area


def test_bin_granularity(benchmark):
    table = generate(20_000, 0.0, seed=55)
    errors = [(n, _error_at(table, n)) for n in BIN_COUNTS]

    emit("e10_bin_granularity",
         "E10: exact region error vs bins per attribute",
         format_table(["bins", "region error"], errors))

    benchmark.pedantic(
        _error_at, args=(table, 30), rounds=1, iterations=1
    )

    # Trend: the finest grid beats the coarsest.
    assert errors[-1][1] < errors[0][1]
    # And substantially so (the paper's 'general trend').
    assert errors[-1][1] < 0.75 * errors[0][1]
