"""E4 — Figure 13: number of rules produced vs database size, U=0%.

Paper shape: ARCS emits a handful of clustered rules (3 in the paper's
runs) while C4.5 emits several times more (~12–35), and "keeping the
number of rules small is very important" for end users.
"""

from conftest import comparison_table, emit, points_data


def test_fig13_rule_counts(benchmark, comparison_sweep):
    points = comparison_sweep[0.0]
    table = comparison_table(
        points, ["arcs_rules", "c45_rules_total", "c45_rules_for_a"]
    )
    emit("e4_fig13_rule_counts",
         "E4 / Figure 13: rules produced vs tuples (U=0%)", table,
         data=points_data(points))

    def rule_ratio():
        return sum(
            point.c45_rules_total / point.arcs_rules for point in points
        ) / len(points)

    ratio = benchmark(rule_ratio)

    for point in points:
        assert point.arcs_rules <= 6
        assert point.c45_rules_total > point.arcs_rules
    assert ratio > 2.0  # C4.5 several times more rules than ARCS
