"""E8 — Table 1: synthetic data parameters.

Regenerates the paper's data configuration and verifies the resulting
distribution matches Table 1: salary uniform 20k–150k, age uniform
20–80, ~40%/60% group split, 5% perturbation, 0%/10% outliers.  Also
times the generator itself (it feeds every other experiment).
"""

import numpy as np

from conftest import emit, generate
from repro.data.synthetic import group_fractions
from repro.viz.report import format_table


def test_table1_data_generation(benchmark):
    table = benchmark.pedantic(
        generate, args=(100_000,), kwargs={"seed": 5},
        rounds=1, iterations=1,
    )
    fractions = group_fractions(table)

    salary = table.column("salary")
    age = table.column("age")
    rows = [
        ["salary range", f"{salary.min():.0f}..{salary.max():.0f}",
         "20000..150000"],
        ["age range", f"{age.min():.1f}..{age.max():.1f}", "20..80"],
        ["fraction Group A", f"{fractions['A']:.3f}", "~0.40"],
        ["fraction other", f"{fractions['other']:.3f}", "~0.60"],
        ["perturbation", "0.05", "0.05"],
        ["outlier levels", "0.0 / 0.10", "0 and 10%"],
        ["tuple counts", "20k..10M supported", "20k..10M"],
    ]
    emit("e8_table1_data_parameters",
         "E8 / Table 1: synthetic data parameters",
         format_table(["parameter", "measured", "paper"], rows))

    assert salary.min() >= 20_000 and salary.max() <= 150_000
    assert age.min() >= 20 and age.max() <= 80
    assert 0.35 < fractions["A"] < 0.43
