"""A5 — ablation: binning strategies (paper Section 2.1).

The paper defaults to equi-width bins but names equi-depth and
homogeneity-based bins as drop-in alternatives.  On uniform attributes
all three should perform comparably (equi-depth edges converge to
equi-width under uniform data); on *skewed* attributes equi-depth
spends its bins where the data is, which is its textbook advantage.
This bench measures both regimes.
"""

import numpy as np

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.core.arcs import ARCS, ARCSConfig
from repro.data.schema import Table, categorical, quantitative
from repro.viz.report import format_table

STRATEGIES = ("equi-width", "equi-depth", "homogeneity")


def skewed_table(n=20_000, seed=140):
    """Group A lives in a narrow band of a log-normally skewed income
    attribute — most of the income range is empty tail."""
    rng = np.random.default_rng(seed)
    age = rng.uniform(20, 80, n)
    income = np.minimum(rng.lognormal(10.3, 0.6, n), 300_000.0)
    in_region = (age >= 30) & (age < 50) & (income >= 25_000) & (
        income < 45_000
    )
    labels = np.where(in_region, "A", "other")
    return Table.from_columns(
        [quantitative("age", 20, 80),
         quantitative("income", 0, 300_000),
         categorical("group", ("A", "other"))],
        {"age": age, "income": income, "group": labels.tolist()},
    )


def _fit_error(table, x, y, strategy):
    config = ARCSConfig(
        binning_strategy=strategy,
        optimizer=ARCS_SWEEP_CONFIG.optimizer,
    )
    result = ARCS(config).fit(table, x, y, "group", "A")
    return (result.best_trial.report.error_rate,
            len(result.segmentation))


def test_binning_strategies(benchmark):
    uniform = generate(20_000, 0.0, seed=130)
    skewed = skewed_table()

    rows = []
    uniform_errors = {}
    skewed_errors = {}
    for strategy in STRATEGIES:
        error_u, rules_u = _fit_error(uniform, "age", "salary", strategy)
        error_s, rules_s = _fit_error(skewed, "age", "income", strategy)
        uniform_errors[strategy] = error_u
        skewed_errors[strategy] = error_s
        rows.append([strategy, error_u, rules_u, error_s, rules_s])

    emit("a5_binning_strategies",
         "A5: binning strategies (uniform vs skewed data)",
         format_table(
             ["strategy", "uniform err", "rules", "skewed err", "rules"],
             rows,
         ))

    benchmark.pedantic(
        _fit_error, args=(uniform, "age", "salary", "equi-width"),
        rounds=1, iterations=1,
    )

    # Uniform data: all strategies in the same band.
    band = max(uniform_errors.values()) - min(uniform_errors.values())
    assert band < 0.06
    # Skewed data: equi-depth at least matches equi-width (its bins
    # concentrate where the tuples are).
    assert (skewed_errors["equi-depth"]
            <= skewed_errors["equi-width"] + 0.02)
