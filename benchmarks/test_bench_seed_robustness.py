"""E1b — seed robustness of the headline result.

The paper's claim is universal: "In every experimental run we
performed, ARCS always produced three clustered association rules."
This bench re-runs the headline experiment across independent seeds at
both outlier levels and reports the distribution of rule counts and
errors; the three-rule outcome must hold in every run.
"""

from conftest import emit, generate
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.viz.report import format_table

SEEDS = (11, 23, 37, 59, 71)

CONFIG = ARCSConfig(
    optimizer=OptimizerConfig(max_support_levels=6,
                              max_confidence_levels=10),
)


def test_seed_robustness(benchmark):
    rows = []
    rule_counts = []
    for outlier_fraction in (0.0, 0.10):
        for seed in SEEDS:
            table = generate(25_000, outlier_fraction, seed=seed)
            result = ARCS(CONFIG).fit(
                table, "age", "salary", "group", "A"
            )
            rows.append([
                f"U={outlier_fraction:.0%}", seed,
                len(result.segmentation),
                result.best_trial.report.error_rate,
            ])
            rule_counts.append(len(result.segmentation))

    emit("e1b_seed_robustness",
         "E1b: rule counts across seeds (the paper's 'every run' claim)",
         format_table(["outliers", "seed", "rules", "error"], rows))

    benchmark.pedantic(
        lambda: ARCS(CONFIG).fit(
            generate(25_000, 0.0, seed=SEEDS[0]),
            "age", "salary", "group", "A",
        ),
        rounds=1, iterations=1,
    )

    # The universal claim: three rules, every seed, both noise levels.
    assert all(count == 3 for count in rule_counts), rule_counts
