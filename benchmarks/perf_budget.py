#!/usr/bin/env python
"""Perf-budget harness: pinned micro-benchmarks for the hot paths.

Times each vectorised kernel against its scalar reference implementation
(:mod:`repro.perf.reference`) on fixed synthetic inputs, writes the
measurements to ``BENCH_hotpaths.json`` at the repo root, and compares
the speedups against the checked-in budgets in
``benchmarks/perf_budgets.json``.  A kernel that regresses below its
budgeted speedup (minus the noise tolerance) fails the run — this is
the CI perf gate.

The report is written even when a benchmark crashes mid-run: the
partial report carries ``"status": "error"`` plus the failure text, so
a perf *trajectory* (one report per commit) never silently loses a
point — CI additionally fails loudly when the file is missing.

Budgets are *speedup ratios*, not wall-clock seconds: both sides of each
ratio run in the same process on the same machine, so the gate holds on
a loaded CI runner and a fast laptop alike.  Absolute seconds are still
recorded in the report for humans.  Every benchmark also sanity-checks
that the two implementations agree before timing them.

Usage::

    python benchmarks/perf_budget.py             # full sizes (100k tuples)
    python benchmarks/perf_budget.py --quick     # small sizes for CI smoke
    python benchmarks/perf_budget.py --rebaseline  # rewrite the budgets

Exit status: 0 when every budget holds, 1 on any regression.
See ``docs/performance.md`` for the file formats and the re-baselining
policy.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(
    (Path(entry) / "repro").is_dir() for entry in sys.path if entry
):
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.binning.bin_array import BinArray  # noqa: E402
from repro.binning.categorical import CategoricalEncoding  # noqa: E402
from repro.binning.strategies import equi_width_layout  # noqa: E402
from repro.core.grid import RuleGrid  # noqa: E402
from repro.core.smoothing import neighbourhood_mean  # noqa: E402
from repro.core.verifier import count_repeat_errors  # noqa: E402
from repro.core.rules import ClusteredRule, Interval  # noqa: E402
from repro.core.segmentation import Segmentation  # noqa: E402
from repro.obs.timing import best_of  # noqa: E402
from repro.perf import reference  # noqa: E402
from repro.serve.scorer import compile_scorer  # noqa: E402

BUDGETS_PATH = Path(__file__).parent / "perf_budgets.json"
#: The report lands at the repo root so every tool (CI artifact upload,
#: trajectory scripts, humans) finds it at one well-known path.
DEFAULT_OUT = REPO_ROOT / "BENCH_hotpaths.json"

#: (full, quick) problem sizes per benchmark.
SIZES = {
    "binner": (100_000, 20_000),
    "verifier": (100_000, 20_000),
    "smoothing": (400, 160),
    "bitop_masks": (512, 160),
    "scorer": (100_000, 20_000),
    "incremental": (100_000, 20_000),
}


def _sizes(quick: bool) -> dict[str, int]:
    return {name: pair[1 if quick else 0] for name, pair in SIZES.items()}


# ----------------------------------------------------------------------
# Benchmarks.  Each returns a result dict with scalar/vectorized seconds
# after asserting both implementations agree.
# ----------------------------------------------------------------------
def bench_binner(n: int, trials: int) -> dict:
    """Bin n tuples into a 50x50 grid: scalar loop vs vectorised kernel."""
    rng = np.random.default_rng(101)
    x_values = rng.uniform(0.0, 100.0, n)
    y_values = rng.uniform(0.0, 100.0, n)
    codes = rng.integers(0, 2, n, dtype=np.int64)
    x_layout = equi_width_layout("x", 0.0, 100.0, 50)
    y_layout = equi_width_layout("y", 0.0, 100.0, 50)
    encoding = CategoricalEncoding("group", ("A", "other"))

    def scalar() -> BinArray:
        cube = BinArray(x_layout, y_layout, encoding)
        x_bins = reference.assign_bins_scalar(x_layout, x_values)
        y_bins = reference.assign_bins_scalar(y_layout, y_values)
        reference.add_chunk_scalar(cube, x_bins, y_bins, codes)
        return cube

    def vectorized() -> BinArray:
        cube = BinArray(x_layout, y_layout, encoding)
        cube.add_chunk(
            x_layout.assign(x_values), y_layout.assign(y_values), codes
        )
        return cube

    slow, fast = scalar(), vectorized()
    assert np.array_equal(slow.counts, fast.counts), "binner kernels differ"
    assert np.array_equal(slow.totals, fast.totals), "binner kernels differ"
    return {
        "name": "binner",
        "n": n,
        "unit": "tuples",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


def bench_verifier(n: int, trials: int) -> dict:
    """FP/FN counting over 20 repeats of k-of-n sampling."""
    rng = np.random.default_rng(202)
    covered = rng.random(n) < 0.3
    is_target = rng.random(n) < 0.25
    sample_size = max(n // 20, 200)
    repeats = list(range(20))

    def scalar():
        return reference.count_repeat_errors_scalar(
            covered, is_target, sample_size, 7, repeats
        )

    def vectorized():
        return count_repeat_errors(
            covered, is_target, sample_size, 7, repeats
        )

    slow, fast = scalar(), vectorized()
    assert np.array_equal(slow[0], fast[0]), "verifier kernels differ (FP)"
    assert np.array_equal(slow[1], fast[1]), "verifier kernels differ (FN)"
    return {
        "name": "verifier",
        "n": n,
        "unit": "tuples",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


def bench_smoothing(n: int, trials: int) -> dict:
    """Low-pass filter an n*n binary grid at radius 3: shift-and-add vs
    summed-area table."""
    rng = np.random.default_rng(303)
    grid = (rng.random((n, n)) < 0.4).astype(np.float64)
    radius = 3

    def scalar():
        return reference.neighbourhood_mean_scalar(grid, radius=radius)

    def vectorized():
        return neighbourhood_mean(grid, radius=radius)

    assert np.allclose(scalar(), vectorized()), "smoothing kernels differ"
    return {
        "name": "smoothing",
        "n": n,
        "unit": "grid side",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


def bench_bitop_masks(n: int, trials: int) -> dict:
    """Build BitOp's per-row integer masks for an n*n grid: per-cell OR
    vs packbits."""
    rng = np.random.default_rng(404)
    grid = RuleGrid(rng.random((n, n)) < 0.5)

    def scalar():
        return reference.row_bitmaps_scalar(grid.cells)

    def vectorized():
        return grid.row_bitmaps()

    assert scalar() == vectorized(), "bitop mask kernels differ"
    return {
        "name": "bitop_masks",
        "n": n,
        "unit": "grid side",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


def bench_scorer(n: int, trials: int) -> dict:
    """Score n tuples against a 24-rule segmentation: per-rule interval
    loop vs the compiled position-table lookup.

    Compilation happens outside the timed region — the serving path
    compiles once per model (LRU-cached) and scores per request.
    """
    rng = np.random.default_rng(505)
    rules = []
    for index in range(24):
        x_lo, y_lo = rng.uniform(0.0, 80.0, 2)
        rules.append(ClusteredRule(
            "x", "y",
            Interval(x_lo, x_lo + rng.uniform(2.0, 15.0),
                     closed_high=bool(index % 2)),
            Interval(y_lo, y_lo + rng.uniform(2.0, 15.0),
                     closed_high=bool(index % 3 == 0)),
            "group", "A", support=0.1, confidence=0.9,
        ))
    segmentation = Segmentation.from_rules(rules)
    x_values = rng.uniform(-5.0, 105.0, n)
    y_values = rng.uniform(-5.0, 105.0, n)
    scorer = compile_scorer(segmentation)

    def scalar():
        return reference.score_batch_scalar(
            segmentation, x_values, y_values
        )

    def vectorized():
        return scorer.score_batch(x_values, y_values)

    assert np.array_equal(scalar(), vectorized()), "scorer kernels differ"
    return {
        "name": "scorer",
        "n": n,
        "unit": "tuples",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


def bench_incremental(n: int, trials: int) -> dict:
    """Advance an n-tuple sliding window by one chunk (n/20 tuples):
    full re-accumulation of the window vs the streaming delta update
    (add the arriving chunk, remove the expiring one).

    Both sides produce the identical BinArray — the streaming
    invariant — so the ratio is a pure algorithmic win: the delta
    touches 2 chunks of tuples where the rebuild touches the whole
    window.  Here "scalar" means the rebuild (it uses the same
    vectorised scatter), not a per-tuple loop.
    """
    rng = np.random.default_rng(606)
    chunk = max(n // 20, 1)
    x_layout = equi_width_layout("x", 0.0, 100.0, 50)
    y_layout = equi_width_layout("y", 0.0, 100.0, 50)
    encoding = CategoricalEncoding("group", ("A", "other"))
    # The resident window [0, n) plus the arriving chunk [n, n+chunk);
    # the oldest chunk [0, chunk) expires.
    x_bins = rng.integers(0, 50, n + chunk, dtype=np.int64)
    y_bins = rng.integers(0, 50, n + chunk, dtype=np.int64)
    codes = rng.integers(0, 2, n + chunk, dtype=np.int64)
    resident = BinArray(x_layout, y_layout, encoding)
    resident.add_chunk(x_bins[:n], y_bins[:n], codes[:n])

    def scalar() -> BinArray:
        cube = BinArray(x_layout, y_layout, encoding)
        cube.add_chunk(x_bins[chunk:], y_bins[chunk:], codes[chunk:])
        return cube

    def vectorized() -> BinArray:
        cube = BinArray(x_layout, y_layout, encoding)
        cube.counts[:] = resident.counts
        cube.totals[:] = resident.totals
        cube.n_total = resident.n_total
        cube.add_chunk(x_bins[n:], y_bins[n:], codes[n:])
        cube.remove_chunk(
            x_bins[:chunk], y_bins[:chunk], codes[:chunk]
        )
        return cube

    slow, fast = scalar(), vectorized()
    assert np.array_equal(slow.counts, fast.counts), (
        "incremental update diverged from the window rebuild"
    )
    assert np.array_equal(slow.totals, fast.totals), (
        "incremental update diverged from the window rebuild"
    )
    assert slow.n_total == fast.n_total == n
    return {
        "name": "incremental",
        "n": n,
        "unit": "window tuples",
        "scalar_seconds": best_of(scalar, trials=trials),
        "vectorized_seconds": best_of(vectorized, trials=trials),
    }


BENCHMARKS = {
    "binner": bench_binner,
    "verifier": bench_verifier,
    "smoothing": bench_smoothing,
    "bitop_masks": bench_bitop_masks,
    "scorer": bench_scorer,
    "incremental": bench_incremental,
}


# ----------------------------------------------------------------------
# Budget comparison and reporting
# ----------------------------------------------------------------------
def load_budgets(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if payload.get("format") != "arcs-perf-budgets":
        raise SystemExit(f"{path} is not an arcs-perf-budgets file")
    return payload


def apply_budget(result: dict, budget: dict | None,
                 tolerance: float) -> dict:
    """Annotate one measurement with its budget verdict (in place)."""
    result["speedup"] = (
        result["scalar_seconds"] / result["vectorized_seconds"]
    )
    if budget is None:
        result["status"] = "no-budget"
        return result
    floor = budget["min_speedup"] * (1.0 - tolerance)
    result["budget_min_speedup"] = budget["min_speedup"]
    result["budget_floor"] = floor
    result["status"] = "pass" if result["speedup"] >= floor else "fail"
    return result


def render(results: list[dict]) -> str:
    header = (
        f"{'benchmark':<12} {'n':>8} {'scalar':>12} {'vectorized':>12} "
        f"{'speedup':>9} {'budget':>8} {'status':>9}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        budget = result.get("budget_min_speedup")
        lines.append(
            f"{result['name']:<12} {result['n']:>8} "
            f"{result['scalar_seconds']:>11.4f}s "
            f"{result['vectorized_seconds']:>11.4f}s "
            f"{result['speedup']:>8.1f}x "
            f"{('%.1fx' % budget) if budget else '-':>8} "
            f"{result['status']:>9}"
        )
    return "\n".join(lines)


def write_report(path: Path, results: list[dict], mode: str,
                 tolerance: float, status: str,
                 error: str | None = None) -> None:
    payload = {
        "format": "arcs-perf-report",
        "version": 1,
        "generated_at": time.time(),  # wall-clock: ok (artefact stamp)
        "mode": mode,
        "noise_tolerance": tolerance,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "status": status,
        "results": results,
    }
    if error is not None:
        payload["error"] = error
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def rebaseline(results: list[dict], tolerance: float, path: Path) -> None:
    """Rewrite the budget file from fresh measurements.

    Budgeted speedups are set to half the measured speedup (and at least
    1.0), leaving generous room for machine variation on top of the
    noise tolerance; tighten by hand if a kernel's win must be defended
    more aggressively.
    """
    budgets = {
        result["name"]: {
            "min_speedup": round(max(1.0, result["speedup"] / 2.0), 1)
        }
        for result in results
    }
    payload = {
        "format": "arcs-perf-budgets",
        "version": 1,
        "noise_tolerance": tolerance,
        "budgets": budgets,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"rebaselined budgets written to {path}")


def determinism_gate() -> list[str]:
    """The ``determinism`` checker's findings for the pipeline packages.

    Speedup ratios are only comparable when both sides compute the same
    thing on every run, so the harness refuses to time code that draws
    from global or unseeded RNGs (see docs/static_analysis.md).
    """
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    from tools.analyze import run_analysis

    result = run_analysis(select=["determinism"], repo_root=REPO_ROOT)
    return [finding.render() for finding in result.findings]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    parser.add_argument("--budgets", type=Path, default=BUDGETS_PATH,
                        help=f"budget file (default {BUDGETS_PATH})")
    parser.add_argument("--only", action="append", choices=BENCHMARKS,
                        help="run a subset (repeatable)")
    parser.add_argument("--trials", type=int, default=None,
                        help="timing trials per kernel (default 5, "
                             "3 with --quick)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="rewrite the budget file from this run "
                             "instead of gating on it")
    args = parser.parse_args(argv)

    problems = determinism_gate()
    if problems:
        print("determinism gate failed; refusing to time "
              "non-deterministic kernels:")
        for line in problems:
            print(f"  {line}")
        return 1

    budget_payload = load_budgets(args.budgets)
    tolerance = float(budget_payload.get("noise_tolerance", 0.25))
    budgets = budget_payload.get("budgets", {})
    trials = args.trials or (3 if args.quick else 5)
    sizes = _sizes(args.quick)
    names = args.only or list(BENCHMARKS)

    mode = "quick" if args.quick else "full"
    results = []
    try:
        for name in names:
            result = BENCHMARKS[name](sizes[name], trials)
            apply_budget(result, budgets.get(name), tolerance)
            results.append(result)
    except BaseException as error:
        # A crashing benchmark must still leave a report behind — the
        # perf trajectory (one report per commit) treats a missing file
        # as a broken run, and CI fails loudly on it.
        write_report(args.out, results, mode, tolerance, "error",
                     error=f"{type(error).__name__}: {error}")
        print(f"benchmark crashed; partial report written to {args.out}")
        raise

    failed = [r for r in results if r["status"] == "fail"]
    status = "fail" if failed else "pass"
    print(f"perf-budget run ({mode} mode, tolerance {tolerance:.0%}):\n")
    print(render(results))
    write_report(args.out, results, mode, tolerance, status)
    print(f"\nreport written to {args.out}")

    if args.rebaseline:
        rebaseline(results, tolerance, args.budgets)
        return 0
    if failed:
        names = ", ".join(r["name"] for r in failed)
        print(f"\nPERF BUDGET EXCEEDED: {names} (see report). "
              f"If the regression is intentional, re-baseline with "
              f"--rebaseline and commit the budget change.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
