"""A1 — ablation: smoothing and pruning on/off (Sections 3.4 / 3.5).

The design claims: smoothing repairs holes and jags so fewer, larger
clusters cover the rule mass; pruning removes outlier slivers.  The
ablation fits the same noisy data with each stage toggled and reports
rule counts and error; disabling both must inflate the rule count.
"""

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.clusterer import ClustererConfig
from repro.viz.report import format_table

VARIANTS = {
    "full pipeline": ClustererConfig(),
    "no smoothing": ClustererConfig(smoothing=False),
    "no pruning": ClustererConfig(prune_fraction=0.0),
    "no merging": ClustererConfig(merge_clusters=False),
    "bare (none)": ClustererConfig(
        smoothing=False, prune_fraction=0.0, merge_clusters=False
    ),
    "support-weighted smoothing": ClustererConfig(support_weighted=True),
}


def _fit(table, clusterer_config):
    config = ARCSConfig(
        clusterer=clusterer_config,
        optimizer=ARCS_SWEEP_CONFIG.optimizer,
    )
    return ARCS(config).fit(table, "age", "salary", "group", "A")


def test_ablation_smoothing_pruning(benchmark):
    table = generate(15_000, outlier_fraction=0.10, seed=88)
    results = {}
    for name, clusterer_config in VARIANTS.items():
        result = _fit(table, clusterer_config)
        results[name] = result

    rows = [
        [name,
         len(result.segmentation),
         result.best_trial.report.error_rate,
         result.best_trial.mdl_cost]
        for name, result in results.items()
    ]
    emit("a1_ablation_smoothing_pruning",
         "A1: smoothing/pruning/merging ablation (U=10%)",
         format_table(["variant", "rules", "error", "mdl"], rows))

    benchmark.pedantic(
        _fit, args=(table, ClustererConfig()), rounds=1, iterations=1
    )

    full = results["full pipeline"]
    bare = results["bare (none)"]
    no_smoothing = results["no smoothing"]
    # The full pipeline keeps the rule count small AND recovers the
    # regions; stripping the stages leaves a fragmented grid whose
    # largest surviving cover badly under-fits (one band, ~0.40 error
    # on this data).
    assert len(full.segmentation) <= 6
    assert (full.best_trial.report.error_rate
            < bare.best_trial.report.error_rate - 0.05)
    assert (full.best_trial.report.error_rate
            <= no_smoothing.best_trial.report.error_rate)
    # MDL agrees the full pipeline's model is no worse.
    assert full.best_trial.mdl_cost <= bare.best_trial.mdl_cost + 0.5
