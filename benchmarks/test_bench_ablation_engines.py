"""A2 — ablation: the specialised engine and BitOp vs naive baselines.

Two contrasts the paper's design rests on:

* **Re-mining cost** — the specialised engine re-mines new thresholds
  from the resident BinArray ("nearly instantaneous"), while a generic
  Apriori miner pays a data-proportional pass every time.
* **Cover quality** — BitOp's greedy exact-rectangle cover vs the
  connected-component bounding-box cover: boxes over concave rule masses
  include unset cells (false-positive area), which BitOp never does.
"""

import time

from conftest import emit, generate
from repro.binning import bin_table
from repro.core.bitop import (
    BitOpClusterer,
    component_bounding_boxes,
    single_cell_cover,
)
from repro.core.grid import RuleGrid
from repro.core.smoothing import smooth_binary
from repro.mining.apriori import AprioriMiner
from repro.mining.engine import rule_pairs
from repro.viz.report import format_table

THRESHOLD_SCHEDULE = [
    (0.0005, 0.5), (0.001, 0.6), (0.002, 0.7), (0.004, 0.8),
]


def test_remining_cost_engine_vs_apriori(benchmark):
    table = generate(20_000, 0.0, seed=66)
    binner = bin_table(table, "age", "salary", "group", 30, 30)
    code = binner.rhs_encoding.code_of("A")

    # Engine: re-mine the whole schedule from the BinArray.
    def engine_schedule():
        return [
            len(rule_pairs(binner.bin_array, code, s, c))
            for s, c in THRESHOLD_SCHEDULE
        ]

    start = time.perf_counter()
    engine_counts = engine_schedule()
    engine_seconds = time.perf_counter() - start

    # Apriori: every threshold pair pays a fresh pass over the
    # transactions (support counting restarts).
    x_bins, y_bins = binner.assign_points(table)
    transactions = [
        frozenset([("X", int(i)), ("Y", int(j)), ("C", str(g))])
        for i, j, g in zip(x_bins, y_bins, table.column("group"))
    ]
    start = time.perf_counter()
    apriori_counts = []
    for s, c in THRESHOLD_SCHEDULE:
        miner = AprioriMiner.from_transactions(
            transactions, max_itemset_size=3
        )
        rules = [
            rule for rule in miner.mine_for_rhs(("C", "A"), s, c)
            if len(rule.lhs) == 2
        ]
        apriori_counts.append(len(rules))
    apriori_seconds = time.perf_counter() - start

    rows = [
        ["engine (BinArray re-scan)", round(engine_seconds, 4),
         str(engine_counts)],
        ["Apriori (re-count per pair)", round(apriori_seconds, 4),
         str(apriori_counts)],
    ]
    emit("a2_remine_engine_vs_apriori",
         "A2a: re-mining 4 threshold pairs, engine vs Apriori",
         format_table(["miner", "seconds", "rules per pair"], rows))

    benchmark(engine_schedule)

    # Identical rule sets and a large speed gap.
    assert engine_counts == apriori_counts
    assert engine_seconds * 10 < apriori_seconds


def test_cover_quality_bitop_vs_baselines(benchmark):
    table = generate(12_000, outlier_fraction=0.05, seed=67)
    binner = bin_table(table, "age", "salary", "group", 40, 40)
    code = binner.rhs_encoding.code_of("A")
    pairs = rule_pairs(binner.bin_array, code, 0.0004, 0.5)
    grid = smooth_binary(RuleGrid.from_pairs(pairs, 40, 40))

    bitop = benchmark(lambda: BitOpClusterer().cluster(grid))
    boxes = component_bounding_boxes(grid)
    cells = single_cell_cover(grid)

    def overcover(rects):
        claimed = 0
        for rect in rects:
            claimed += rect.area
        return claimed - sum(
            int(grid.cells[r.x_lo:r.x_hi + 1, r.y_lo:r.y_hi + 1].sum())
            for r in rects
        )

    rows = [
        ["BitOp greedy", len(bitop), overcover(bitop)],
        ["component boxes", len(boxes), overcover(boxes)],
        ["single cells", len(cells), overcover(cells)],
    ]
    emit("a2_cover_quality",
         "A2b: cover quality, BitOp vs naive covers",
         format_table(["cover", "clusters", "unset cells claimed"],
                      rows))

    # BitOp never claims an unset cell; boxes can; single cells are
    # exact but need one rule per cell.
    assert overcover(bitop) == 0
    assert overcover(cells) == 0
    assert len(bitop) < len(cells)
