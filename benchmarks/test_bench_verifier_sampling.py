"""A6 — the verifier's sampling design (paper Section 3.6).

"In order to get a good approximation to the actual error we use
repeated k out of n sampling, a stronger statistical technique."

This bench quantifies that claim: for a fixed segmentation whose exact
error is known, compare the estimator error (RMSE against the exact
rate, across many RNG seeds) of a single k-sample against repeated
k-of-n with the same k.  Averaging over repeats must cut the RMSE
roughly by sqrt(repeats).
"""

import numpy as np

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.core.arcs import ARCS
from repro.core.verifier import Verifier
from repro.viz.report import format_table

SAMPLE_SIZE = 400
N_SEEDS = 40


def test_repeated_sampling_beats_single_sample(benchmark):
    table = generate(30_000, 0.0, seed=150)
    result = ARCS(ARCS_SWEEP_CONFIG).fit(
        table, "age", "salary", "group", "A"
    )
    segmentation = result.segmentation
    exact = Verifier(table, "group", "A").exact_error_rate(segmentation)

    def rmse(repeats: int) -> float:
        errors = []
        for seed in range(N_SEEDS):
            verifier = Verifier(
                table, "group", "A", sample_size=SAMPLE_SIZE,
                repeats=repeats, seed=seed,
            )
            estimate = verifier.verify(segmentation).error_rate
            errors.append((estimate - exact) ** 2)
        return float(np.sqrt(np.mean(errors)))

    single = rmse(1)
    repeated = benchmark.pedantic(
        rmse, args=(8,), rounds=1, iterations=1
    )

    rows = [
        ["exact error rate", exact, "-"],
        ["single k-sample", single, "1.00"],
        ["repeated 8x k-of-n", repeated,
         f"{single / repeated:.2f}x" if repeated else "-"],
    ]
    emit("a6_verifier_sampling",
         "A6: estimator RMSE, single sample vs repeated k-of-n",
         format_table(["estimator", "rmse / value", "improvement"],
                      rows))

    # Repeats must help substantially (sqrt(8) ~ 2.8x in theory; demand
    # at least 1.8x to absorb finite-population effects).
    assert repeated < single / 1.8
