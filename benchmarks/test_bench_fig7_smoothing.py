"""E9 — Figure 7: a typical grid before and after smoothing.

The paper shows a real mined grid whose holes and jagged edges disappear
under the low-pass filter.  This bench mines a grid from noisy Function 2
data, renders the before/after pair as ASCII art, and quantifies the
improvement: the smoothed grid needs fewer BitOp clusters to cover.
"""

from conftest import emit, generate
from repro.binning import bin_table
from repro.core.bitop import BitOpClusterer
from repro.core.grid import RuleGrid
from repro.core.smoothing import smooth_binary
from repro.mining.engine import rule_pairs
from repro.viz.ascii import render_side_by_side


def _mine_grid():
    table = generate(8_000, outlier_fraction=0.05, seed=31)
    binner = bin_table(table, "age", "salary", "group", 30, 30)
    code = binner.rhs_encoding.code_of("A")
    pairs = rule_pairs(binner.bin_array, code,
                       min_support=0.0004, min_confidence=0.5)
    return RuleGrid.from_pairs(pairs, 30, 30)


def test_fig7_smoothing(benchmark):
    raw = _mine_grid()
    smoothed = benchmark(lambda: smooth_binary(raw))

    art = render_side_by_side(raw, smoothed,
                              "(a) before smoothing",
                              "(b) after smoothing")
    raw_clusters = BitOpClusterer().cluster(raw)
    smooth_clusters = BitOpClusterer().cluster(smoothed)
    summary = (
        f"set cells: {raw.n_set} -> {smoothed.n_set}; "
        f"BitOp clusters to cover: {len(raw_clusters)} -> "
        f"{len(smooth_clusters)}"
    )
    emit("e9_fig7_smoothing",
         "E9 / Figure 7: grid before/after smoothing",
         art + "\n\n" + summary)

    # Smoothing must consolidate: fewer rectangles needed afterwards.
    assert len(smooth_clusters) < len(raw_clusters)
