"""E1 — the paper's headline result (Section 4.2).

"In every experimental run we performed, ARCS always produced three
clustered association rules, each very similar to the generating rules,
and effectively removed all noise and outliers from the database."

This bench fits ARCS on the paper's exact setting (Function 2, 50k
tuples, 5% perturbation; again with 10% outliers), prints the recovered
rules next to the generating rules, and times one full fit.
"""

import numpy as np

from conftest import ARCS_SWEEP_CONFIG, emit, generate
from repro.analysis.accuracy import exact_region_error
from repro.core.arcs import ARCS
from repro.data.functions import true_regions
from repro.viz.report import format_table


def _fit(table):
    return ARCS(ARCS_SWEEP_CONFIG).fit(
        table, "age", "salary", "group", "A"
    )


def test_rule_recovery(benchmark):
    clean = generate(50_000, outlier_fraction=0.0, seed=42)
    noisy = generate(50_000, outlier_fraction=0.10, seed=43)

    clean_result = benchmark.pedantic(
        _fit, args=(clean,), rounds=1, iterations=1
    )
    noisy_result = _fit(noisy)

    rows = []
    for region in true_regions(2):
        rows.append([
            "generating", f"{region.x_lo:g}..{region.x_hi:g}",
            f"{region.y_lo:g}..{region.y_hi:g}", "-", "-",
        ])
    for label, result in (("U=0%", clean_result), ("U=10%", noisy_result)):
        for rule in result.segmentation:
            rows.append([
                label,
                f"{rule.x_interval.low:g}..{rule.x_interval.high:g}",
                f"{rule.y_interval.low:g}..{rule.y_interval.high:g}",
                f"{rule.support:.4f}", f"{rule.confidence:.3f}",
            ])

    report = exact_region_error(
        clean_result.segmentation, true_regions(2),
        x_range=(20, 80), y_range=(20_000, 150_000),
    )
    table = format_table(
        ["run", "age range", "salary range", "support", "confidence"],
        rows,
    )
    summary = (
        f"clean: {len(clean_result.segmentation)} rules, "
        f"error={clean_result.best_trial.report.error_rate:.4f}, "
        f"exact region error={report.total_error_area:.4f}, "
        f"jaccard={report.jaccard:.3f}\n"
        f"outliers: {len(noisy_result.segmentation)} rules, "
        f"error={noisy_result.best_trial.report.error_rate:.4f}"
    )
    emit("e1_rule_recovery", "E1: rule recovery (paper Section 4.2)",
         table + "\n" + summary)

    # Reproduction assertions: the paper's exactly-three-rules claim.
    assert len(clean_result.segmentation) == 3
    assert len(noisy_result.segmentation) == 3
    assert report.jaccard > 0.8
