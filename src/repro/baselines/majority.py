"""The trivial majority-class baseline.

Not in the paper, but the honest floor for every comparison: a
segmentation or classifier is only informative if it beats predicting
the majority group for everything.  For a one-vs-rest criterion whose
group holds fraction ``p`` of the data, the majority predictor's error
is ``min(p, 1 - p)`` — the benchmarks use this to show both ARCS and
C4.5 are far below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Table


@dataclass
class MajorityClassifier:
    """Predicts the most frequent training label for every row."""

    label: object = None

    def fit(self, table: Table, label_attribute: str) -> "MajorityClassifier":
        """Pick the majority label of the training table."""
        labels = table.column(label_attribute)
        values, counts = np.unique(labels.astype(str), return_counts=True)
        winner = values[int(counts.argmax())]
        for value in labels:
            if str(value) == winner:
                self.label = value
                break
        return self

    def predict(self, table: Table) -> np.ndarray:
        """The majority label, for every row."""
        if self.label is None:
            raise ValueError("classifier is not fitted")
        predictions = np.empty(len(table), dtype=object)
        predictions[:] = self.label
        return predictions


def majority_error_floor(table: Table, label_attribute: str,
                         target_value) -> float:
    """One-vs-rest error of the best constant predictor.

    The better of "everything is the target" and "nothing is the
    target": ``min(p, 1 - p)`` for target fraction ``p``.
    """
    labels = table.column(label_attribute)
    p = float(np.mean(np.asarray(labels == target_value)))
    return min(p, 1.0 - p)
