"""A C4.5-style decision tree learner (comparison baseline).

Implements the parts of Quinlan's C4.5 the paper's comparison depends on:

* splits chosen by **gain ratio** (information gain normalised by split
  information), considering binary ``<= threshold`` splits on quantitative
  attributes and multiway splits on categorical ones;
* candidate thresholds at midpoints between consecutive distinct values,
  evaluated with vectorised prefix-sum class counts;
* **pessimistic-error pruning** by subtree replacement, using the
  Wilson-style upper confidence bound on the leaf error rate that C4.5
  uses (confidence factor CF, default 25%).

Unlike ARCS the learner requires the whole training set (and per-node
sorted copies of it) in memory — the paper's C4.5 runs exhausted virtual
memory beyond 100k tuples, and this implementation has the same
asymptotics even though modern RAM postpones the cliff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.stats import beta

from repro.data.schema import Table


@dataclass(frozen=True)
class TreeConfig:
    """Learner knobs (C4.5's defaults where it has them).

    Parameters
    ----------
    min_leaf:
        Minimum tuples per leaf; a split must leave at least two branches
        with this many (C4.5's ``-m``).
    max_depth:
        Optional depth cap; ``None`` grows until purity or min_leaf.
    confidence_factor:
        CF of the pessimistic pruning bound (C4.5's ``-c``, default 0.25).
    max_thresholds:
        Candidate-threshold cap per quantitative attribute per node;
        midpoints are subsampled evenly above this.  Keeps node cost
        bounded without changing which regions are learnable.
    prune:
        Disable to keep the unpruned tree (for rule-set-size ablations).
    """

    min_leaf: int = 2
    max_depth: int | None = None
    confidence_factor: float = 0.25
    max_thresholds: int = 128
    prune: bool = True

    def __post_init__(self) -> None:
        if self.min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        if not 0.0 < self.confidence_factor < 0.5:
            raise ValueError("confidence_factor must be in (0, 0.5)")
        if self.max_thresholds < 1:
            raise ValueError("max_thresholds must be positive")


@dataclass
class TreeNode:
    """One tree node; a leaf when ``attribute`` is ``None``.

    Quantitative splits carry a ``threshold`` and two children
    (``<= threshold`` first); categorical splits carry ``branch_values``
    and one child per value (unseen values fall back to the majority
    child).  Every node remembers its training class counts for pruning
    and for rule confidence estimates.
    """

    label: object
    counts: dict
    attribute: str | None = None
    threshold: float | None = None
    branch_values: tuple | None = None
    children: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.attribute is None

    @property
    def n_tuples(self) -> int:
        return int(sum(self.counts.values()))

    @property
    def n_errors(self) -> int:
        """Training tuples a majority-label leaf here would misclassify."""
        return self.n_tuples - int(self.counts.get(self.label, 0))

    def subtree_leaves(self) -> int:
        # Iterative: noisy trees grow chains deeper than Python's
        # recursion limit.
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend(node.children)
        return count

    def subtree_depth(self) -> int:
        depth = 0
        stack = [(self, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                depth = max(depth, level)
            else:
                stack.extend(
                    (child, level + 1) for child in node.children
                )
        return depth


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def pessimistic_errors(n: int, errors: int, confidence_factor: float) -> float:
    """C4.5's pessimistic error count: ``n`` times the upper confidence
    limit of the observed error rate at the given CF.

    Uses the exact binomial (Clopper–Pearson) upper limit, which is what
    C4.5 computes; e.g. ``U_25%(0 errors, 1 case) = 0.75``.  The popular
    normal approximation badly underestimates at small leaves and barely
    prunes noisy trees.
    """
    if n == 0:
        return 0.0
    if errors >= n:
        return float(n)
    upper = float(
        beta.ppf(1.0 - confidence_factor, errors + 1, n - errors)
    )
    return float(n * min(1.0, upper))


@dataclass
class C45Tree:
    """The fitted learner.  Build with :meth:`fit`."""

    config: TreeConfig = field(default_factory=TreeConfig)
    root: TreeNode | None = None
    features: tuple[str, ...] = ()
    label_attribute: str = ""

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, table: Table, features: Sequence[str],
            label_attribute: str) -> "C45Tree":
        """Grow (and by default prune) a tree on ``table``.

        ``features`` may mix quantitative and categorical attributes.
        Returns ``self`` for chaining.
        """
        if len(table) == 0:
            raise ValueError("cannot fit a tree on an empty table")
        self.features = tuple(features)
        self.label_attribute = label_attribute
        labels = table.column(label_attribute)
        label_values = list(dict.fromkeys(labels.tolist()))
        label_codes = np.asarray(
            [label_values.index(value) for value in labels], dtype=np.int64
        )
        columns = {}
        kinds = {}
        for name in self.features:
            spec = table.spec(name)
            kinds[name] = spec.kind
            columns[name] = table.column(name)
        self._label_values = label_values
        self._kinds = kinds
        indices = np.arange(len(table))
        self.root = self._grow_tree(columns, label_codes, indices)
        if self.config.prune:
            self._prune(self.root)
        return self

    def _make_node(self, label_codes: np.ndarray,
                   indices: np.ndarray) -> TreeNode:
        counts_vector = np.bincount(
            label_codes[indices], minlength=len(self._label_values)
        )
        majority = int(counts_vector.argmax())
        return TreeNode(
            label=self._label_values[majority],
            counts={
                self._label_values[code]: int(count)
                for code, count in enumerate(counts_vector)
                if count
            },
        )

    def _grow_tree(self, columns: dict, label_codes: np.ndarray,
                   indices: np.ndarray) -> TreeNode:
        """Grow with an explicit work stack — noisy data produces chains
        deeper than Python's recursion limit."""
        root = self._make_node(label_codes, indices)
        stack = [(root, indices, 0)]
        while stack:
            node, node_indices, depth = stack.pop()
            pure = node.counts.get(node.label, 0) == len(node_indices)
            too_deep = (
                self.config.max_depth is not None
                and depth >= self.config.max_depth
            )
            too_small = len(node_indices) < 2 * self.config.min_leaf
            if pure or too_deep or too_small:
                continue
            split = self._best_split(
                columns, label_codes[node_indices], node_indices
            )
            if split is None:
                continue
            attribute, threshold, partitions, branch_values = split
            node.attribute = attribute
            node.threshold = threshold
            node.branch_values = branch_values
            for part in partitions:
                child = self._make_node(label_codes, part)
                node.children.append(child)
                stack.append((child, part, depth + 1))
        return root

    def _best_split(self, columns: dict, node_labels: np.ndarray,
                    indices: np.ndarray):
        base_entropy = _entropy_from_counts(
            np.bincount(node_labels, minlength=len(self._label_values))
        )
        best = None  # (gain_ratio, attribute, threshold, parts, values)
        for attribute in self.features:
            if self._kinds[attribute] == "quantitative":
                candidate = self._quantitative_split(
                    attribute, columns[attribute], node_labels, indices,
                    base_entropy,
                )
            else:
                candidate = self._categorical_split(
                    attribute, columns[attribute], node_labels, indices,
                    base_entropy,
                )
            if candidate is None:
                continue
            if best is None or candidate[0] > best[0]:
                best = candidate
        if best is None:
            return None
        _, attribute, threshold, partitions, branch_values = best
        return attribute, threshold, partitions, branch_values

    def _quantitative_split(self, attribute: str, column: np.ndarray,
                            node_labels: np.ndarray, indices: np.ndarray,
                            base_entropy: float):
        values = column[indices].astype(np.float64)
        order = np.argsort(values, kind="mergesort")
        sorted_values = values[order]
        sorted_labels = node_labels[order]
        n = len(indices)
        n_classes = len(self._label_values)

        # Prefix class counts: prefix[k] = class histogram of rows 0..k.
        one_hot = np.zeros((n, n_classes), dtype=np.int64)
        one_hot[np.arange(n), sorted_labels] = 1
        prefix = one_hot.cumsum(axis=0)

        # Split positions: between distinct consecutive values, honouring
        # min_leaf on both sides.
        distinct = np.flatnonzero(sorted_values[1:] > sorted_values[:-1]) + 1
        distinct = distinct[
            (distinct >= self.config.min_leaf)
            & (distinct <= n - self.config.min_leaf)
        ]
        if distinct.size == 0:
            return None
        if distinct.size > self.config.max_thresholds:
            picks = np.unique(
                np.linspace(
                    0, distinct.size - 1, self.config.max_thresholds
                ).round().astype(int)
            )
            distinct = distinct[picks]

        left_counts = prefix[distinct - 1]
        total_counts = prefix[-1]
        right_counts = total_counts - left_counts
        left_n = distinct.astype(np.float64)
        right_n = n - left_n

        left_entropy = _vector_entropy(left_counts)
        right_entropy = _vector_entropy(right_counts)
        weighted = (left_n * left_entropy + right_n * right_entropy) / n
        gains = base_entropy - weighted

        p_left = left_n / n
        split_info = -(
            p_left * np.log2(p_left) + (1 - p_left) * np.log2(1 - p_left)
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            ratios = np.where(split_info > 0, gains / split_info, 0.0)
        # C4.5 heuristic: only thresholds with at least average gain
        # compete on gain ratio (guards against trivial splits).
        eligible = gains >= max(1e-12, float(gains.mean()))
        if not eligible.any():
            return None
        ratios = np.where(eligible, ratios, -np.inf)
        best_at = int(ratios.argmax())
        if not np.isfinite(ratios[best_at]) or gains[best_at] <= 1e-12:
            return None
        position = int(distinct[best_at])
        threshold = float(
            (sorted_values[position - 1] + sorted_values[position]) / 2.0
        )
        left_part = indices[order[:position]]
        right_part = indices[order[position:]]
        return (
            float(ratios[best_at]), attribute, threshold,
            [left_part, right_part], None,
        )

    def _categorical_split(self, attribute: str, column: np.ndarray,
                           node_labels: np.ndarray, indices: np.ndarray,
                           base_entropy: float):
        values = column[indices]
        unique_values = list(dict.fromkeys(values.tolist()))
        if len(unique_values) < 2:
            return None
        n = len(indices)
        partitions = []
        weighted = 0.0
        split_info = 0.0
        for value in unique_values:
            positional = np.asarray(values == value)
            if positional.sum() < self.config.min_leaf:
                return None
            partitions.append(indices[positional])
            weight = positional.sum() / n
            weighted += weight * _entropy_from_counts(
                np.bincount(
                    node_labels[positional],
                    minlength=len(self._label_values),
                )
            )
            split_info -= weight * np.log2(weight)
        gain = base_entropy - weighted
        if gain <= 1e-12 or split_info <= 0:
            return None
        return (
            gain / split_info, attribute, None,
            partitions, tuple(unique_values),
        )

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def _prune(self, root: TreeNode) -> float:
        """Post-order subtree replacement (iterative); returns the root's
        pessimistic error count after pruning."""
        cf = self.config.confidence_factor
        pruned_errors: dict[int, float] = {}
        stack: list[tuple[TreeNode, bool]] = [(root, False)]
        while stack:
            node, children_done = stack.pop()
            if node.is_leaf:
                pruned_errors[id(node)] = pessimistic_errors(
                    node.n_tuples, node.n_errors, cf
                )
                continue
            if not children_done:
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            subtree_errors = sum(
                pruned_errors[id(child)] for child in node.children
            )
            leaf_errors = pessimistic_errors(
                node.n_tuples, node.n_errors, cf
            )
            if leaf_errors <= subtree_errors + 0.1:
                # Replace the subtree with a leaf (C4.5's tolerance).
                node.attribute = None
                node.threshold = None
                node.branch_values = None
                node.children = []
                pruned_errors[id(node)] = leaf_errors
            else:
                pruned_errors[id(node)] = subtree_errors
        return pruned_errors[id(root)]

    # ------------------------------------------------------------------
    # Prediction and introspection
    # ------------------------------------------------------------------
    def predict(self, table: Table) -> np.ndarray:
        """Predict a label for every row."""
        if self.root is None:
            raise ValueError("tree is not fitted")
        predictions = np.empty(len(table), dtype=object)
        columns = {name: table.column(name) for name in self.features}
        stack = [(self.root, np.arange(len(table)))]
        while stack:
            node, indices = stack.pop()
            if len(indices) == 0:
                continue
            if node.is_leaf:
                predictions[indices] = node.label
                continue
            values = columns[node.attribute][indices]
            if node.threshold is not None:
                mask = values.astype(np.float64) <= node.threshold
                stack.append((node.children[0], indices[mask]))
                stack.append((node.children[1], indices[~mask]))
                continue
            remaining = np.ones(len(indices), dtype=bool)
            for value, child in zip(node.branch_values, node.children):
                mask = np.asarray(values == value) & remaining
                remaining &= ~mask
                stack.append((child, indices[mask]))
            if remaining.any():
                # Unseen categorical values take the majority-label path.
                biggest = max(
                    node.children, key=lambda child: child.n_tuples
                )
                stack.append((biggest, indices[remaining]))
        return predictions

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return self.root.subtree_leaves()

    @property
    def depth(self) -> int:
        if self.root is None:
            return 0
        return self.root.subtree_depth()


def _vector_entropy(counts: np.ndarray) -> np.ndarray:
    """Row-wise entropy of a (rows, classes) count matrix."""
    totals = counts.sum(axis=1, keepdims=True).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        probabilities = np.where(totals > 0, counts / totals, 0.0)
        logs = np.where(probabilities > 0, np.log2(probabilities), 0.0)
    return -(probabilities * logs).sum(axis=1)
