"""C4.5RULES-style rule extraction (comparison baseline).

"C4.5 is well known for building highly accurate decision trees ... and
from these trees a routine called C4.5RULES constructs generalized rules."
This module is that routine's analogue:

1. every root-to-leaf path of a fitted :class:`C45Tree` becomes a
   conjunctive rule ``conditions => label``;
2. each rule is *generalised* by greedily dropping conditions whenever the
   pessimistic error bound of the rule on the training data does not get
   worse (Quinlan's simplification step);
3. duplicate rules are collapsed and, per class, an MDL-guided greedy
   subset selection keeps only the rules that pay for themselves — the
   coding cost of the rules plus the binomially-coded exceptions (false
   positives among covered, false negatives among uncovered) must drop
   when a rule is added.  This is the step that collapses hundreds of leaf
   paths into the dozens of rules the paper reports for C4.5;
4. surviving rules are ordered by (pessimistic) accuracy within class and
   a default class mops up uncovered tuples.

Like the original, the extracted rule set is usually *larger in rule
count* than an ARCS segmentation for the same data (paper Figures 13/14),
and the simplification step is the expensive part (paper Table 2 shows
C4.5+RULES blowing up fastest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import gammaln

from repro.baselines.decision_tree import (
    C45Tree,
    TreeNode,
    pessimistic_errors,
)
from repro.data.schema import Table

#: Condition operators: quantitative paths use ``<=``/``>``, categorical
#: branches use ``==``.
LE, GT, EQ = "<=", ">", "=="


@dataclass(frozen=True)
class Condition:
    """One conjunct of a rule antecedent."""

    attribute: str
    operator: str
    value: object

    def __post_init__(self) -> None:
        if self.operator not in (LE, GT, EQ):
            raise ValueError(f"unknown operator {self.operator!r}")

    def holds(self, table: Table) -> np.ndarray:
        column = table.column(self.attribute)
        if self.operator == LE:
            return column.astype(np.float64) <= float(self.value)
        if self.operator == GT:
            return column.astype(np.float64) > float(self.value)
        return np.asarray(column == self.value)

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator} {self.value}"


@dataclass(frozen=True)
class ExtractedRule:
    """A generalised rule with its training-data quality measures."""

    conditions: tuple[Condition, ...]
    label: object
    coverage: int
    errors: int
    pessimistic: float

    @property
    def accuracy(self) -> float:
        if self.coverage == 0:
            return 0.0
        return 1.0 - self.errors / self.coverage

    def matches(self, table: Table) -> np.ndarray:
        """Vectorised antecedent test over a table."""
        result = np.ones(len(table), dtype=bool)
        for condition in self.conditions:
            result &= condition.holds(table)
        return result

    def __str__(self) -> str:
        if not self.conditions:
            lhs = "TRUE"
        else:
            lhs = " AND ".join(str(c) for c in self.conditions)
        return (
            f"{lhs} => {self.label} "
            f"(coverage={self.coverage}, accuracy={self.accuracy:.3f})"
        )


@dataclass
class C45Rules:
    """The extracted, simplified, ordered rule set plus a default class."""

    rules: tuple[ExtractedRule, ...] = ()
    default_label: object = None
    confidence_factor: float = 0.25

    @classmethod
    def from_tree(cls, tree: C45Tree, table: Table,
                  confidence_factor: float = 0.25) -> "C45Rules":
        """Extract and simplify rules from a fitted tree against its
        training table."""
        if tree.root is None:
            raise ValueError("tree is not fitted")
        labels = table.column(tree.label_attribute)
        raw_paths = _paths_to_leaves(tree.root)
        candidates: list[ExtractedRule] = []
        seen: set[tuple] = set()
        for conditions, label in raw_paths:
            rule = _simplify(
                conditions, label, table, labels, confidence_factor
            )
            key = (frozenset(rule.conditions), rule.label)
            if key not in seen:
                seen.add(key)
                candidates.append(rule)
        # MDL subset selection per class.
        simplified = []
        for label in dict.fromkeys(rule.label for rule in candidates):
            class_rules = [r for r in candidates if r.label == label]
            simplified.extend(
                _select_subset(class_rules, table, labels, label)
            )
        # Order rules by pessimistic accuracy (best first); the paper only
        # needs a deterministic, quality-first ordering.
        simplified.sort(
            key=lambda rule: (rule.pessimistic / max(rule.coverage, 1),
                              -rule.coverage)
        )
        default = _default_label(simplified, table, labels)
        return cls(
            rules=tuple(simplified),
            default_label=default,
            confidence_factor=confidence_factor,
        )

    def __len__(self) -> int:
        return len(self.rules)

    def predict(self, table: Table) -> np.ndarray:
        """First-match prediction with the default class as fallback."""
        predictions = np.empty(len(table), dtype=object)
        predictions[:] = self.default_label
        unassigned = np.ones(len(table), dtype=bool)
        for rule in self.rules:
            hits = rule.matches(table) & unassigned
            predictions[hits] = rule.label
            unassigned &= ~hits
            if not unassigned.any():
                break
        return predictions

    def rules_for(self, label) -> list[ExtractedRule]:
        """The subset of rules predicting one class (for rule-count
        comparisons against an ARCS segmentation of that class)."""
        return [rule for rule in self.rules if rule.label == label]

    def describe(self) -> str:
        lines = [str(rule) for rule in self.rules]
        lines.append(f"DEFAULT => {self.default_label}")
        return "\n".join(lines)


def _paths_to_leaves(root: TreeNode) -> list[tuple[list[Condition], object]]:
    """Collect (conditions, leaf label) for every root-to-leaf path.

    Iterative: noisy trees grow chains deeper than Python's recursion
    limit.
    """
    paths: list[tuple[list[Condition], object]] = []
    stack: list[tuple[TreeNode, list[Condition]]] = [(root, [])]
    while stack:
        node, conditions = stack.pop()
        if node.is_leaf:
            paths.append((conditions, node.label))
            continue
        if node.threshold is not None:
            attribute, threshold = node.attribute, node.threshold
            stack.append((
                node.children[1],
                conditions + [Condition(attribute, GT, threshold)],
            ))
            stack.append((
                node.children[0],
                conditions + [Condition(attribute, LE, threshold)],
            ))
            continue
        for value, child in reversed(
            list(zip(node.branch_values, node.children))
        ):
            stack.append((
                child,
                conditions + [Condition(node.attribute, EQ, value)],
            ))
    return paths


def _masked_stats(masks: Sequence[np.ndarray], wrong: np.ndarray,
                  n_rows: int,
                  confidence_factor: float) -> tuple[int, int, float]:
    """Coverage, errors and pessimistic error count from cached condition
    masks (``wrong`` marks training tuples whose label differs from the
    rule's)."""
    if masks:
        combined = masks[0].copy()
        for mask in masks[1:]:
            combined &= mask
    else:
        combined = np.ones(n_rows, dtype=bool)
    coverage = int(combined.sum())
    errors = int(np.sum(combined & wrong))
    return coverage, errors, pessimistic_errors(
        coverage, errors, confidence_factor
    )


def _simplify(conditions: list[Condition], label, table: Table,
              labels: np.ndarray,
              confidence_factor: float) -> ExtractedRule:
    """Greedy condition dropping (Quinlan's rule generalisation).

    Repeatedly remove the condition whose removal yields the lowest
    pessimistic error *rate*, as long as that is no worse than keeping it
    (comparing rates, not counts, so the wider coverage after a drop is
    not penalised for its larger absolute error count).  Each condition's
    boolean mask over the training table is evaluated once and cached.
    """
    current = list(conditions)
    masks = [condition.holds(table) for condition in current]
    wrong = np.asarray(labels != label)
    n_rows = len(table)
    coverage, errors, pessimistic = _masked_stats(
        masks, wrong, n_rows, confidence_factor
    )
    improved = True
    while improved and current:
        improved = False
        best_drop = None
        best_stats = (coverage, errors, pessimistic)
        best_rate = pessimistic / max(coverage, 1)
        for i in range(len(current)):
            stats = _masked_stats(
                masks[:i] + masks[i + 1:], wrong, n_rows,
                confidence_factor,
            )
            trial_rate = stats[2] / max(stats[0], 1)
            if trial_rate <= best_rate:
                best_drop, best_stats = i, stats
                best_rate = trial_rate
        if best_drop is not None:
            current.pop(best_drop)
            masks.pop(best_drop)
            coverage, errors, pessimistic = best_stats
            improved = True
    return ExtractedRule(
        conditions=tuple(current),
        label=label,
        coverage=coverage,
        errors=errors,
        pessimistic=pessimistic,
    )


def _log2_binomial(n: int, k: int) -> float:
    """``log2 C(n, k)`` — the bits to point out k exceptions among n."""
    if k < 0 or k > n:
        return 0.0
    return float(
        (gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1))
        / np.log(2.0)
    )


def _coding_cost(covered: np.ndarray, positives: np.ndarray,
                 model_bits: float) -> float:
    """MDL cost of a class cover: model bits plus binomially coded
    exceptions (false positives among covered, false negatives among
    uncovered)."""
    n = len(positives)
    n_covered = int(covered.sum())
    false_positives = int(np.sum(covered & ~positives))
    false_negatives = int(np.sum(~covered & positives))
    data_bits = (
        _log2_binomial(n_covered, false_positives)
        + _log2_binomial(n - n_covered, false_negatives)
    )
    return model_bits + data_bits


def _select_subset(class_rules: list[ExtractedRule], table: Table,
                   labels: np.ndarray, label) -> list[ExtractedRule]:
    """Greedy MDL subset selection (C4.5RULES' per-class step).

    Model cost per rule is roughly half a condition-id's bits per
    condition (rule order within a class carries no information, so
    Quinlan credits back ``log2(k!)`` — approximated by the 0.5 factor).
    Forward passes add the rule whose inclusion lowers the total coding
    cost the most; a backward pass then drops any rule whose removal
    lowers it further; repeat until stable.
    """
    if not class_rules:
        return []
    masks = [rule.matches(table) for rule in class_rules]
    positives = np.asarray(labels == label)
    distinct_conditions = {
        condition for rule in class_rules for condition in rule.conditions
    }
    condition_bits = max(1.0, float(np.log2(max(2, len(distinct_conditions)))))
    rule_bits = [
        0.5 * (1 + len(rule.conditions)) * condition_bits
        for rule in class_rules
    ]

    chosen: set[int] = set()
    covered = np.zeros(len(positives), dtype=bool)
    model_bits = 0.0
    cost = _coding_cost(covered, positives, model_bits)
    changed = True
    while changed:
        changed = False
        # Forward: best single addition (incremental OR against the
        # current cover).
        best_index, best_cost = None, cost
        for index in range(len(class_rules)):
            if index in chosen:
                continue
            trial_cost = _coding_cost(
                covered | masks[index], positives,
                model_bits + rule_bits[index],
            )
            if trial_cost < best_cost:
                best_index, best_cost = index, trial_cost
        if best_index is not None:
            chosen.add(best_index)
            covered |= masks[best_index]
            model_bits += rule_bits[best_index]
            cost = best_cost
            changed = True
            continue
        # Backward: best single removal (cover rebuilt without the rule).
        for index in sorted(chosen):
            others = sorted(chosen - {index})
            trial_covered = np.zeros(len(positives), dtype=bool)
            for other in others:
                trial_covered |= masks[other]
            trial_cost = _coding_cost(
                trial_covered, positives, model_bits - rule_bits[index]
            )
            if trial_cost < cost:
                chosen.remove(index)
                covered = trial_covered
                model_bits -= rule_bits[index]
                cost = trial_cost
                changed = True
                break
    return [class_rules[index] for index in sorted(chosen)]


def _default_label(rules: Sequence[ExtractedRule], table: Table,
                   labels: np.ndarray):
    """Majority class among training tuples no rule covers (C4.5RULES'
    default-class choice); overall majority when everything is covered."""
    uncovered = np.ones(len(table), dtype=bool)
    for rule in rules:
        uncovered &= ~rule.matches(table)
    pool = labels[uncovered] if uncovered.any() else labels
    values, counts = np.unique(pool.astype(str), return_counts=True)
    winner = values[int(counts.argmax())]
    # Return the original (non-str-coerced) label object.
    for label in labels:
        if str(label) == winner:
            return label
    return winner
