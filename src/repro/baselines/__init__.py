"""Comparison baselines (paper Section 4.2).

The paper compares ARCS segmentations against rules produced by Quinlan's
C4.5 decision-tree learner and its C4.5RULES post-processor.  Quinlan's
original C code is not available offline, so this subpackage implements a
faithful C4.5-style learner from scratch:

* :mod:`repro.baselines.decision_tree` — gain-ratio splits, binary
  thresholds on continuous attributes, multiway splits on categorical
  ones, pessimistic-error subtree replacement pruning;
* :mod:`repro.baselines.c45_rules` — path-to-rule extraction with greedy
  condition dropping and accuracy ordering, the C4.5RULES analogue;
* :mod:`repro.baselines.metrics` — the error measures shared with ARCS so
  Figures 11–14 compare like with like.

The properties the paper's comparison rests on hold for this
implementation: it needs the whole training set in memory, produces many
more rules than ARCS, reacts badly to label outliers, and its training
time grows super-linearly with the data.
"""

from repro.baselines.c45_rules import C45Rules, ExtractedRule
from repro.baselines.decision_tree import C45Tree, TreeConfig
from repro.baselines.majority import MajorityClassifier, majority_error_floor
from repro.baselines.metrics import (
    classification_error,
    segmentation_error_counts,
)

__all__ = [
    "C45Tree",
    "TreeConfig",
    "C45Rules",
    "ExtractedRule",
    "MajorityClassifier",
    "majority_error_floor",
    "classification_error",
    "segmentation_error_counts",
]
