"""Error metrics shared by ARCS and the C4.5 baseline (Section 4.2).

Figures 11 and 12 plot a single "error rate" for both systems, so both
must be scored the same way: treat each system as a one-vs-rest detector
of the criterion group and count false positives plus false negatives
over a test table.  For ARCS the detector is the segmentation's cluster
cover; for C4.5 it is "predicted label == criterion value".
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Table


def segmentation_error_counts(predicted_in_group: np.ndarray,
                              actual_in_group: np.ndarray
                              ) -> tuple[int, int]:
    """Return ``(false_positives, false_negatives)`` for boolean masks."""
    predicted = np.asarray(predicted_in_group, dtype=bool)
    actual = np.asarray(actual_in_group, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {actual.shape}"
        )
    false_positives = int(np.sum(predicted & ~actual))
    false_negatives = int(np.sum(~predicted & actual))
    return false_positives, false_negatives


def error_rate(predicted_in_group: np.ndarray,
               actual_in_group: np.ndarray) -> float:
    """``(FP + FN) / n`` — the quantity Figures 11/12 plot."""
    false_positives, false_negatives = segmentation_error_counts(
        predicted_in_group, actual_in_group
    )
    n = len(np.asarray(predicted_in_group))
    if n == 0:
        raise ValueError("cannot compute an error rate over no tuples")
    return (false_positives + false_negatives) / n


def classification_error(predicted_labels: np.ndarray, table: Table,
                         label_attribute: str, target_value) -> float:
    """One-vs-rest error of a classifier's label predictions.

    Projects the multi-class predictions onto "in the criterion group or
    not" before counting, so a classifier and a segmentation are measured
    identically.
    """
    actual = np.asarray(
        [label == target_value
         for label in table.column(label_attribute)], dtype=bool
    )
    predicted = np.asarray(
        [label == target_value for label in predicted_labels], dtype=bool
    )
    return error_rate(predicted, actual)
