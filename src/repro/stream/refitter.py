"""The refresh loop: refit the window, publish only real changes.

:class:`StreamRefitter` closes the loop between fitting and serving.
Each due refit re-runs the **full** clustering pass —
engine→smooth→BitOp→prune (:class:`~repro.core.clusterer.GridClusterer`)
— on the window's BinArray rather than merely carrying counts forward:
interestingness-based re-pruning on refresh (Kannan & Bhaskaran,
arXiv:0912.1822) is exactly why a refreshed model must be re-mined, not
patched.

Publishing goes through the persistence layer into a plain model
directory — the same directory a
:class:`~repro.serve.registry.ModelRegistry` watches — so the existing
``maybe_refresh()`` / ``poll_models()`` hot-reload paths (threaded and
multi-process servers alike) pick refreshed segmentations up with zero
new serving code.  Two safeguards keep that cheap and safe:

* **content-hash skip** — the new segmentation's
  :func:`segmentation_content_hash` (rules + attributes only, no
  volatile metadata) is compared against the last published one; an
  unchanged segmentation publishes nothing, so servers never reload a
  byte-identical model;
* **atomic publish** — the artefact is written to a temp file in the
  model directory and :func:`os.replace`'d into place, so a racing
  registry refresh sees either the old artefact or the new one, never
  a torn write (the registry additionally tolerates torn files by
  keeping the previous healthy version).

Every refit emits a ``stream.refresh`` JSONL event (window id, tuple
counts, rule deltas, hashes) through :mod:`repro.obs.events` and the
``stream.*`` metrics catalogued in :mod:`repro.obs.catalogue`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.binning.strategies import BinLayout
from repro.binning.categorical import CategoricalEncoding
from repro.core.clusterer import ClustererConfig, GridClusterer
from repro.core.optimizer import segmentation_from_outcome
from repro.core.segmentation import Segmentation
from repro.data.schema import Table
from repro.obs import events, metrics, trace
from repro.persistence import _rule_to_dict, save_segmentation
from repro.stream.window import StreamWindow

logger = logging.getLogger(__name__)

__all__ = [
    "RefitterConfig",
    "RefreshRecord",
    "StreamRefitter",
    "WatchSummary",
    "run_watch",
    "segmentation_content_hash",
]


def segmentation_content_hash(segmentation: Segmentation) -> str:
    """A 12-hex digest of the segmentation's *semantic* content.

    Hashes the rules and attribute names only — not the artefact bytes,
    which carry a volatile ``created_unix`` stamp — so two refits that
    mine identical rules hash identically and the second publish is
    skipped.  (The registry's model id remains the artefact-byte hash;
    refresh events carry both.)
    """
    payload = {
        "x_attribute": segmentation.x_attribute,
        "y_attribute": segmentation.y_attribute,
        "rhs_attribute": segmentation.rhs_attribute,
        "rhs_value": segmentation.rhs_value,
        "rules": [_rule_to_dict(rule) for rule in segmentation.rules],
    }
    canonical = json.dumps(payload, sort_keys=True, default=str,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class RefitterConfig:
    """Thresholds and guards of the refresh loop.

    The streaming refit runs at *fixed* thresholds (the optimizer's
    MDL search is an offline concern; a refit must be predictable and
    fast), configured here alongside the clustering knobs.
    """

    min_support: float = 0.01
    min_confidence: float = 0.5
    clusterer: ClustererConfig = field(default_factory=ClustererConfig)
    #: Refits over windows smaller than this are skipped outright —
    #: a near-empty window would publish a degenerate segmentation.
    min_window_tuples: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError("min_support must be within [0, 1]")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be within [0, 1]")
        if self.min_window_tuples < 1:
            raise ValueError("min_window_tuples must be >= 1")


@dataclass(frozen=True)
class RefreshRecord:
    """One completed refit, published or skipped."""

    window_id: int
    window_tuples: int
    ingested: int
    expired: int
    n_rules: int
    rules_delta: int
    content_hash: str
    model_id: str | None     # artefact-byte hash; None when skipped
    published: bool
    seconds: float
    path: Path

    def describe(self) -> str:
        action = (
            f"published {self.model_id}" if self.published
            else "unchanged, skipped"
        )
        return (
            f"window {self.window_id}: {self.window_tuples:,} tuples "
            f"(+{self.ingested:,}/-{self.expired:,}), "
            f"{self.n_rules} rules ({self.rules_delta:+d}), "
            f"hash {self.content_hash} -> {action} "
            f"[{self.seconds:.3f}s]"
        )


class StreamRefitter:
    """Source chunks in, refreshed artefacts out.

    Parameters
    ----------
    x_layout, y_layout, rhs_encoding:
        The fixed binning vocabulary (from :meth:`repro.binning.binner.
        Binner.fit` on a reference table or declared domains).  Layouts
        never change mid-stream — changing the grid restarts the
        system, exactly as in the paper.
    window:
        The :class:`~repro.stream.window.StreamWindow` to account into.
    target_value:
        The RHS criterion value the published segmentation segments on.
    publish_dir:
        The model directory a :class:`~repro.serve.registry.ModelRegistry`
        serves from.
    name:
        Artefact stem: refits overwrite ``<publish_dir>/<name>.json``.
    """

    def __init__(self, x_layout: BinLayout, y_layout: BinLayout,
                 rhs_encoding: CategoricalEncoding,
                 window: StreamWindow, target_value,
                 publish_dir: str | Path, name: str,
                 config: RefitterConfig | None = None):
        self.x_layout = x_layout
        self.y_layout = y_layout
        self.rhs_encoding = rhs_encoding
        self.window = window
        self.target_value = target_value
        self.rhs_code = rhs_encoding.code_of(target_value)
        self.publish_dir = Path(publish_dir)
        if not self.publish_dir.is_dir():
            raise NotADirectoryError(
                f"publish directory {self.publish_dir} does not exist"
            )
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid artefact name {name!r}")
        self.name = name
        self.config = config or RefitterConfig()
        self.clusterer = GridClusterer(self.config.clusterer)
        self.published_hash: str | None = None
        self.last_record: RefreshRecord | None = None
        self._last_rules = 0
        self._ingested_since = 0
        self._expired_since = 0

    @property
    def artefact_path(self) -> Path:
        return self.publish_dir / f"{self.name}.json"

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, chunk: Table) -> RefreshRecord | None:
        """Bin one table chunk into the window; refit when due.

        Returns the :class:`RefreshRecord` when this chunk triggered a
        refit, ``None`` otherwise.
        """
        x_bins = self.x_layout.assign(
            chunk.column(self.x_layout.attribute)
        )
        y_bins = self.y_layout.assign(
            chunk.column(self.y_layout.attribute)
        )
        rhs_codes = self.rhs_encoding.encode(
            chunk.column(self.rhs_encoding.attribute)
        )
        delta = self.window.ingest(x_bins, y_bins, rhs_codes)
        metrics.inc("stream.tuples_ingested", delta.ingested)
        if delta.expired:
            metrics.inc("stream.tuples_expired", delta.expired)
        metrics.set_gauge("stream.window_tuples", delta.window_tuples)
        self._ingested_since += delta.ingested
        self._expired_since += delta.expired
        if not delta.refit_due:
            return None
        if delta.window_tuples < self.config.min_window_tuples:
            logger.debug(
                "refit due but window holds %d < %d tuples; deferring",
                delta.window_tuples, self.config.min_window_tuples,
            )
            return None
        return self.refit()

    # ------------------------------------------------------------------
    # Refitting and publishing
    # ------------------------------------------------------------------
    def refit(self) -> RefreshRecord:
        """Run the full clustering pass on the current window.

        Publishes atomically when the segmentation's content hash
        changed; skips the write (and the serving reload it would
        trigger) when it did not.
        """
        started = perf_counter()
        window_id = self.window.window_id
        window_tuples = self.window.window_tuples
        with trace("stream.refit", window=window_id,
                   tuples=window_tuples):
            outcome = self.clusterer.cluster(
                self.window.bin_array, self.rhs_code,
                self.config.min_support, self.config.min_confidence,
            )
            segmentation = segmentation_from_outcome(
                outcome, self.window.bin_array, self.rhs_code
            )
            content_hash = segmentation_content_hash(segmentation)
            published = content_hash != self.published_hash
            model_id = self._publish(segmentation) if published else None
        seconds = perf_counter() - started
        metrics.inc("stream.refits_run")
        metrics.observe("stream.refit_seconds", seconds)
        if published:
            metrics.inc("stream.publishes")
            self.published_hash = content_hash
        else:
            metrics.inc("stream.refits_skipped")
        record = RefreshRecord(
            window_id=window_id,
            window_tuples=window_tuples,
            ingested=self._ingested_since,
            expired=self._expired_since,
            n_rules=len(segmentation),
            rules_delta=len(segmentation) - self._last_rules,
            content_hash=content_hash,
            model_id=model_id,
            published=published,
            seconds=seconds,
            path=self.artefact_path,
        )
        events.emit(
            "stream.refresh",
            window=record.window_id,
            window_tuples=record.window_tuples,
            ingested=record.ingested,
            expired=record.expired,
            rules=record.n_rules,
            rules_delta=record.rules_delta,
            content_hash=record.content_hash,
            model_id=record.model_id,
            published=record.published,
            seconds=round(record.seconds, 6),
            path=str(record.path),
        )
        logger.info("stream refresh: %s", record.describe())
        self._last_rules = len(segmentation)
        self._ingested_since = 0
        self._expired_since = 0
        self.last_record = record
        closed = self.window.mark_refit()
        if closed:
            metrics.inc("stream.tuples_expired", closed)
            metrics.set_gauge("stream.window_tuples",
                              self.window.window_tuples)
        return record

    def _publish(self, segmentation: Segmentation) -> str:
        """Atomically (re)write the artefact; returns its model id.

        The model id is the sha256 of the artefact bytes truncated to
        12 hex chars — the same scheme
        :class:`~repro.serve.registry.ModelRegistry` derives ids with,
        so the id in a refresh event matches what ``/models`` reports
        after the hot reload.
        """
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=self.publish_dir,
            prefix=f".{self.name}.", suffix=".tmp", delete=False,
        )
        tmp_path = Path(handle.name)
        try:
            handle.close()
            # Embed the window's occupancy so served drift (`/stats`)
            # is scored against this exact window, not a stale fit.
            save_segmentation(segmentation, tmp_path,
                              bin_array=self.window.bin_array)
            model_id = hashlib.sha256(
                tmp_path.read_bytes()
            ).hexdigest()[:12]
            os.replace(tmp_path, self.artefact_path)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        return model_id


@dataclass(frozen=True)
class WatchSummary:
    """What one bounded watch run did, for reporting and tests."""

    chunks: int
    tuples: int
    refits: int
    publishes: int
    records: tuple[RefreshRecord, ...]


def run_watch(source, refitter: StreamRefitter,
              max_refits: int | None = None,
              flush: bool = True,
              on_refresh=None) -> WatchSummary:
    """Drive source → window → refitter until the source ends.

    ``source`` is anything with a ``chunks()`` iterator of
    :class:`~repro.data.schema.Table` chunks.  ``max_refits`` bounds the
    run (useful against unbounded tail sources); ``flush`` runs one
    final refit over the residual window when the stream ends mid-window
    with unrefitted tuples, so a bounded replay always publishes its
    tail.  ``on_refresh`` is called with every
    :class:`RefreshRecord` as it completes (progress reporting).
    """
    if max_refits is not None and max_refits < 1:
        raise ValueError("max_refits must be >= 1 (or None)")
    chunks = 0
    tuples = 0
    records: list[RefreshRecord] = []

    def _note(record: RefreshRecord) -> None:
        records.append(record)
        if on_refresh is not None:
            on_refresh(record)

    for chunk in source.chunks():
        chunks += 1
        tuples += len(chunk)
        record = refitter.ingest(chunk)
        if record is not None:
            _note(record)
            if max_refits is not None and len(records) >= max_refits:
                break
    else:
        window = refitter.window
        if (flush and window.tuples_since_refit > 0
                and window.window_tuples
                >= refitter.config.min_window_tuples
                and (max_refits is None or len(records) < max_refits)):
            _note(refitter.refit())
    return WatchSummary(
        chunks=chunks,
        tuples=tuples,
        refits=len(records),
        publishes=sum(1 for record in records if record.published),
        records=tuple(records),
    )
