"""Event sources for the streaming pipeline.

A *source* is anything with a ``chunks()`` method yielding
:class:`~repro.data.schema.Table` chunks; the refit loop
(:func:`repro.stream.refitter.run_watch`) consumes them one at a time,
so only one chunk is ever resident — the paper's constant-memory
streaming profile carries over unchanged.

Three sources cover the replay-to-live spectrum:

* :class:`TableReplaySource` — a bounded replay of an in-memory table
  (tests, benchmarks);
* :class:`CSVReplaySource` — a bounded replay of a CSV file through the
  constant-memory :func:`repro.data.io.stream_csv` reader (smoke tests,
  backfills);
* :class:`JSONLTailSource` — a tail over an append-only JSONL file
  (one JSON object per line, column name → value), polling for new
  lines until the stream goes idle.

Time never comes from the wall clock here: pacing and polling go
through an injected :class:`SystemClock` / :class:`ManualClock`, so a
replayed stream is deterministic under test (the static-analysis
``no-wall-time`` checker enforces the discipline repo-wide).
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.data.io import stream_csv
from repro.data.schema import AttributeSpec, Table

logger = logging.getLogger(__name__)

__all__ = [
    "CSVReplaySource",
    "JSONLTailSource",
    "ManualClock",
    "SystemClock",
    "TableReplaySource",
]

DEFAULT_CHUNK_ROWS = 1024


class SystemClock:
    """The real clock: monotonic reads, real sleeps."""

    def now(self) -> float:
        """Monotonic seconds (never wall-clock; see ``no-wall-time``)."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """A deterministic clock for tests: sleeps advance a counter.

    ``now()`` returns the sum of all requested sleeps, so a replay paced
    through a ManualClock runs instantly yet observes exactly the same
    sequence of clock reads as a real run.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self.elapsed

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self.elapsed += seconds


class TableReplaySource:
    """Bounded replay of an in-memory table in fixed-size chunks."""

    def __init__(self, table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 pace_seconds: float = 0.0,
                 clock: SystemClock | ManualClock | None = None):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if pace_seconds < 0:
            raise ValueError("pace_seconds cannot be negative")
        self.table = table
        self.chunk_rows = chunk_rows
        self.pace_seconds = pace_seconds
        self.clock = clock or SystemClock()

    def chunks(self) -> Iterator[Table]:
        for index, chunk in enumerate(
            self.table.iter_chunks(self.chunk_rows)
        ):
            if index and self.pace_seconds:
                self.clock.sleep(self.pace_seconds)
            yield chunk


class CSVReplaySource:
    """Bounded replay of a CSV file, one constant-memory chunk at a time.

    ``pace_seconds`` optionally spaces the chunks out (through the
    injected clock) to simulate live arrival rates.
    """

    def __init__(self, path: str | Path, specs: Sequence[AttributeSpec],
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 pace_seconds: float = 0.0,
                 clock: SystemClock | ManualClock | None = None):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if pace_seconds < 0:
            raise ValueError("pace_seconds cannot be negative")
        self.path = Path(path)
        self.specs = list(specs)
        self.chunk_rows = chunk_rows
        self.pace_seconds = pace_seconds
        self.clock = clock or SystemClock()

    def chunks(self) -> Iterator[Table]:
        for index, chunk in enumerate(
            stream_csv(self.path, self.specs, chunk_rows=self.chunk_rows)
        ):
            if index and self.pace_seconds:
                self.clock.sleep(self.pace_seconds)
            yield chunk


class JSONLTailSource:
    """Tail an append-only JSONL file as a stream of table chunks.

    Each line is one JSON object mapping column names to values; lines
    are batched into chunks of at most ``chunk_rows``.  When the file
    runs dry the source flushes any partial chunk, then polls every
    ``poll_seconds`` through the injected clock; after ``idle_polls``
    consecutive empty polls it terminates (pass ``None`` to tail
    forever).  Partial trailing lines (a writer mid-append) are left in
    the file until the newline arrives, so a torn write is never parsed.
    """

    def __init__(self, path: str | Path, specs: Sequence[AttributeSpec],
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 poll_seconds: float = 0.2,
                 idle_polls: int | None = 25,
                 clock: SystemClock | ManualClock | None = None):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if poll_seconds < 0:
            raise ValueError("poll_seconds cannot be negative")
        if idle_polls is not None and idle_polls < 1:
            raise ValueError("idle_polls must be >= 1 (or None)")
        self.path = Path(path)
        self.specs = list(specs)
        self.chunk_rows = chunk_rows
        self.poll_seconds = poll_seconds
        self.idle_polls = idle_polls
        self.clock = clock or SystemClock()

    def _parse_line(self, line: str, line_number: int) -> dict:
        try:
            record = json.loads(line)
        except ValueError as error:
            raise ValueError(
                f"{self.path}:{line_number} is not valid JSON: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ValueError(
                f"{self.path}:{line_number} is not a JSON object"
            )
        missing = [
            spec.name for spec in self.specs if spec.name not in record
        ]
        if missing:
            raise ValueError(
                f"{self.path}:{line_number} is missing columns {missing}"
            )
        return record

    def _as_chunk(self, records: list[dict]) -> Table:
        return Table.from_columns(self.specs, {
            spec.name: [record[spec.name] for record in records]
            for spec in self.specs
        })

    def chunks(self) -> Iterator[Table]:
        buffer: list[dict] = []
        idle = 0
        line_number = 0
        with open(self.path, encoding="utf-8") as handle:
            while True:
                position = handle.tell()
                line = handle.readline()
                if line.endswith("\n"):
                    idle = 0
                    line_number += 1
                    stripped = line.strip()
                    if stripped:
                        buffer.append(
                            self._parse_line(stripped, line_number)
                        )
                    if len(buffer) >= self.chunk_rows:
                        yield self._as_chunk(buffer)
                        buffer = []
                    continue
                # No complete line: rewind past any torn tail, flush
                # what we have, then wait for the writer.
                handle.seek(position)
                if buffer:
                    yield self._as_chunk(buffer)
                    buffer = []
                idle += 1
                if self.idle_polls is not None and idle > self.idle_polls:
                    logger.info(
                        "jsonl tail %s idle for %d polls; stopping",
                        self.path, idle - 1,
                    )
                    return
                self.clock.sleep(self.poll_seconds)
