"""Streaming/incremental ARCS: windowed refits over a live tuple stream.

The paper's central systems property — re-mining at new thresholds never
re-reads the data — extends to the data itself: the
:class:`~repro.binning.bin_array.BinArray` is an additive counter grid,
so appends *and expiries* are pure deltas
(:meth:`~repro.binning.bin_array.BinArray.add_chunk` /
:meth:`~repro.binning.bin_array.BinArray.remove_chunk`).  This package
turns that observation into a continuously-learning pipeline:

* :mod:`repro.stream.source` — bounded and tailing event sources that
  yield :class:`~repro.data.schema.Table` chunks (CSV replay, JSONL
  tail, in-memory replay) with an injectable clock so pacing is
  deterministic under test;
* :mod:`repro.stream.window` — tumbling (``every_n``) and sliding
  (``last_n``) tuple windows with chunked delta accounting over one
  resident BinArray;
* :mod:`repro.stream.refitter` — the refresh loop: re-run the full
  engine→smooth→BitOp→prune pass on the current window, skip publishes
  whose segmentation content hash is unchanged, and atomically publish
  refreshed artefacts into a :class:`~repro.serve.registry.ModelRegistry`
  directory so running servers hot-reload them with zero new serving
  code.

``arcs watch`` (see ``docs/streaming.md``) wires the three together.
"""

from repro.stream.refitter import (
    RefitterConfig,
    RefreshRecord,
    StreamRefitter,
    WatchSummary,
    run_watch,
    segmentation_content_hash,
)
from repro.stream.source import (
    CSVReplaySource,
    JSONLTailSource,
    ManualClock,
    SystemClock,
    TableReplaySource,
)
from repro.stream.window import (
    SLIDING,
    TUMBLING,
    StreamWindow,
    WindowConfig,
    WindowDelta,
)

__all__ = [
    "CSVReplaySource",
    "JSONLTailSource",
    "ManualClock",
    "RefitterConfig",
    "RefreshRecord",
    "SLIDING",
    "StreamRefitter",
    "StreamWindow",
    "SystemClock",
    "TUMBLING",
    "TableReplaySource",
    "WatchSummary",
    "WindowConfig",
    "WindowDelta",
    "run_watch",
    "segmentation_content_hash",
]
