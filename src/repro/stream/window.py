"""Tuple windows over a resident BinArray with chunked delta accounting.

A :class:`StreamWindow` owns one
:class:`~repro.binning.bin_array.BinArray` plus the queue of binned
chunks whose tuples it currently contains.  Arriving chunks are added
as deltas (:meth:`~repro.binning.bin_array.BinArray.add_chunk`);
expiring tuples are subtracted
(:meth:`~repro.binning.bin_array.BinArray.remove_chunk`).  Because the
counters are integers and both operations use identical scatter grids,
the windowed array is **bit-identical** to a fresh array accumulated
from exactly the window's surviving tuples — the invariant the
streaming tests assert after arbitrary event interleavings.

Two window shapes:

* **tumbling** (``every_n``) — the window holds everything since the
  last refit; once at least ``size`` tuples arrived a refit is due, and
  :meth:`StreamWindow.mark_refit` then expires the whole window;
* **sliding** (``last_n``) — the window always holds the most recent
  ``size`` tuples; overflow expires from the oldest chunk (splitting it
  when the boundary lands mid-chunk), and refits are due every
  ``refit_every`` tuples (default: on every ingested chunk).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import BinLayout

logger = logging.getLogger(__name__)

__all__ = [
    "SLIDING",
    "TUMBLING",
    "StreamWindow",
    "WindowConfig",
    "WindowDelta",
]

TUMBLING = "tumbling"
SLIDING = "sliding"
_MODES = (TUMBLING, SLIDING)


@dataclass(frozen=True)
class WindowConfig:
    """Shape and cadence of the stream window.

    Parameters
    ----------
    mode:
        ``"tumbling"`` or ``"sliding"``.
    size:
        Tuples per window: the refit period for tumbling windows
        (``every_n``), the retained history for sliding ones
        (``last_n``).
    refit_every:
        Sliding windows only: tuples between refit triggers.  ``None``
        refits after every ingested chunk (tumbling windows always
        refit once ``size`` tuples accumulated).
    """

    mode: str = TUMBLING
    size: int = 10_000
    refit_every: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"window mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.size <= 0:
            raise ValueError("window size must be positive")
        if self.refit_every is not None and self.refit_every <= 0:
            raise ValueError("refit_every must be positive (or None)")


@dataclass(frozen=True)
class WindowDelta:
    """What one ingested chunk did to the window."""

    window_id: int
    ingested: int
    expired: int
    window_tuples: int
    refit_due: bool


@dataclass
class _BinnedChunk:
    """One chunk's binned arrays, queued for eventual expiry."""

    x_bins: np.ndarray
    y_bins: np.ndarray
    rhs_codes: np.ndarray

    def __len__(self) -> int:
        return len(self.x_bins)

    def split(self, n: int) -> tuple["_BinnedChunk", "_BinnedChunk"]:
        """The first ``n`` tuples and the rest, as two chunks."""
        head = _BinnedChunk(
            self.x_bins[:n], self.y_bins[:n], self.rhs_codes[:n]
        )
        tail = _BinnedChunk(
            self.x_bins[n:], self.y_bins[n:], self.rhs_codes[n:]
        )
        return head, tail


@dataclass
class StreamWindow:
    """The current window's BinArray plus its chunk queue.

    ``window_id`` names the refit generation: it starts at 0 and
    increments on every :meth:`mark_refit`, so refresh events and
    artefact provenance can reference a specific window.
    """

    x_layout: BinLayout
    y_layout: BinLayout
    rhs_encoding: CategoricalEncoding
    config: WindowConfig = field(default_factory=WindowConfig)
    target_code: int | None = None
    bin_array: BinArray = field(init=False, repr=False)
    window_id: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.bin_array = BinArray(
            self.x_layout, self.y_layout, self.rhs_encoding,
            target_code=self.target_code,
        )
        self._chunks: deque[_BinnedChunk] = deque()
        self._window_tuples = 0
        self._since_refit = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def window_tuples(self) -> int:
        """Tuples currently contributing to the BinArray."""
        return self._window_tuples

    @property
    def tuples_since_refit(self) -> int:
        return self._since_refit

    def surviving(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The window's current tuples as concatenated binned arrays.

        This is the oracle side of the streaming invariant: a fresh
        BinArray accumulated from exactly these arrays must equal
        :attr:`bin_array` bit for bit.
        """
        if not self._chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate([c.x_bins for c in self._chunks]),
            np.concatenate([c.y_bins for c in self._chunks]),
            np.concatenate([c.rhs_codes for c in self._chunks]),
        )

    # ------------------------------------------------------------------
    # Delta accounting
    # ------------------------------------------------------------------
    def ingest(self, x_bins: np.ndarray, y_bins: np.ndarray,
               rhs_codes: np.ndarray) -> WindowDelta:
        """Add one binned chunk; expire overflow; report what changed."""
        x_bins = np.asarray(x_bins, dtype=np.int64)
        y_bins = np.asarray(y_bins, dtype=np.int64)
        rhs_codes = np.asarray(rhs_codes, dtype=np.int64)
        self.bin_array.add_chunk(x_bins, y_bins, rhs_codes)
        ingested = len(x_bins)
        if ingested:
            self._chunks.append(_BinnedChunk(x_bins, y_bins, rhs_codes))
            self._window_tuples += ingested
            self._since_refit += ingested
        expired = 0
        if self.config.mode == SLIDING:
            expired = self._expire_overflow()
        return WindowDelta(
            window_id=self.window_id,
            ingested=ingested,
            expired=expired,
            window_tuples=self._window_tuples,
            refit_due=self._refit_due(ingested),
        )

    def _refit_due(self, ingested: int) -> bool:
        if self.config.mode == TUMBLING:
            return self._since_refit >= self.config.size
        if self.config.refit_every is None:
            return ingested > 0
        return self._since_refit >= self.config.refit_every

    def _expire_overflow(self) -> int:
        """Sliding mode: drop the oldest tuples beyond ``last_n``."""
        expired = 0
        while self._window_tuples > self.config.size:
            over = self._window_tuples - self.config.size
            oldest = self._chunks[0]
            if len(oldest) <= over:
                victim = self._chunks.popleft()
            else:
                victim, tail = oldest.split(over)
                self._chunks[0] = tail
            self.bin_array.remove_chunk(
                victim.x_bins, victim.y_bins, victim.rhs_codes
            )
            self._window_tuples -= len(victim)
            expired += len(victim)
        return expired

    def mark_refit(self) -> int:
        """Close the current window after a refit ran.

        Returns the number of tuples expired by the close: the whole
        window for tumbling mode (the next window starts empty), zero
        for sliding mode (history is governed by ``last_n`` alone).
        """
        self._since_refit = 0
        self.window_id += 1
        expired = 0
        if self.config.mode == TUMBLING:
            while self._chunks:
                victim = self._chunks.popleft()
                self.bin_array.remove_chunk(
                    victim.x_bins, victim.y_bins, victim.rhs_codes
                )
                self._window_tuples -= len(victim)
                expired += len(victim)
        return expired
