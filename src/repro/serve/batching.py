"""Request batching: coalescing concurrent predictions into one gather.

The compiled scorer's batch path costs two ``searchsorted`` calls and a
2-D gather regardless of how many tuples ride along — scoring 64 points
in one call is barely slower than scoring one.  A busy server receiving
many concurrent single-point ``/predict`` calls therefore wastes almost
all of its scoring time on per-call overhead.  :class:`BatchQueue`
recovers that waste: handler threads *submit* their points and block; a
single collector thread coalesces everything waiting for the same
scorer into one ``score_batch`` gather and distributes the per-point
results back.  Results are bit-identical to unbatched scoring because a
gather is elementwise — concatenation order cannot change any answer.

Two knobs bound the added latency and memory:

* ``max_delay_seconds`` — the batching *window*: a submission never
  waits longer than this for co-travellers (the CLI exposes it in
  milliseconds as ``--batch-window``);
* ``max_batch`` — a flush fires early once this many *points* are
  waiting for one scorer, so a burst cannot build an unbounded gather.

Back-pressure is explicit: once ``max_depth`` submissions are queued,
:meth:`submit` raises :class:`QueueFullError` — the service maps it to
HTTP 429 (load shedding) and counts it in ``serve.shed_total{endpoint}``.
The current depth is exported continuously as the ``serve.queue_depth``
gauge.  :meth:`close` drains gracefully: new submissions are refused
with :class:`DrainingError` (HTTP 503) while everything already queued
is flushed and answered before the collector thread exits.

Concurrency discipline (machine-checked by the ``concurrency`` pass of
``tools.analyze``): every mutable attribute is guarded by
``self._lock``; per-submission state is handed across threads through a
:class:`threading.Event` per submission, set only after its result
fields are written.
"""

from __future__ import annotations

import logging
import threading
from time import perf_counter

import numpy as np

from repro.obs import events, metrics
from repro.serve.scorer import CompiledScorer, ScoringError

logger = logging.getLogger(__name__)

__all__ = [
    "BatchQueue",
    "BatchingError",
    "DrainingError",
    "QueueFullError",
]

#: Default batching window, seconds (2 ms — far below human-visible
#: latency, long enough to coalesce genuinely concurrent requests).
DEFAULT_MAX_DELAY_SECONDS = 0.002

#: Default early-flush bound, in points waiting for one scorer.
DEFAULT_MAX_BATCH = 1024

#: Default shedding bound, in queued submissions across all scorers.
DEFAULT_MAX_DEPTH = 256


class BatchingError(RuntimeError):
    """Base type for batching failures (library exception policy)."""


class QueueFullError(BatchingError):
    """The queue is at ``max_depth``; the request should be shed (429)."""


class DrainingError(BatchingError):
    """The queue is closed or closing; new work is refused (503)."""


class _Submission:
    """One blocked caller's points and its result hand-off slot.

    The submitting thread parks on ``done``; the collector writes
    ``result`` *or* ``error`` and then sets the event — the event is the
    publication barrier, so these fields need no lock of their own.

    ``request_id`` carries the submitting request's correlation id
    across the thread hand-off: the collector runs outside the
    handler's context, so the id is captured at submit time and names
    the victims when a coalesced flush fails.
    """

    __slots__ = ("x_values", "y_values", "request_id", "done", "result",
                 "error")

    def __init__(self, x_values: np.ndarray, y_values: np.ndarray):
        self.x_values = x_values
        self.y_values = y_values
        self.request_id = events.current_request_id()
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None

    def __len__(self) -> int:
        return len(self.x_values)


class _Group:
    """The submissions waiting for one scorer, oldest first."""

    __slots__ = ("items", "points", "opened_at")

    def __init__(self, opened_at: float):
        self.items: list[_Submission] = []
        self.points = 0
        self.opened_at = opened_at


def _checked_arrays(scorer: CompiledScorer, x_values,
                    y_values) -> tuple[np.ndarray, np.ndarray]:
    """Validate one submission up front, before it can join a batch.

    A NaN (or a shape mismatch) must fail *this* request with the same
    error unbatched scoring would raise — never the innocent requests
    coalesced alongside it.
    """
    x_values = np.asarray(x_values, dtype=np.float64)
    y_values = np.asarray(y_values, dtype=np.float64)
    if x_values.shape != y_values.shape:
        raise ScoringError(
            f"x and y batches differ in shape: "
            f"{x_values.shape} vs {y_values.shape}"
        )
    segmentation = scorer.segmentation
    for attribute, values in ((segmentation.x_attribute, x_values),
                              (segmentation.y_attribute, y_values)):
        if np.isnan(values).any():
            raise ScoringError(
                f"column {attribute!r} contains NaN; clean the data "
                "before scoring"
            )
    return x_values, y_values


class BatchQueue:
    """Coalesces concurrent scoring requests into single batch gathers.

    One collector thread serves every scorer; submissions for the same
    :class:`CompiledScorer` object (scorers are cached per model
    version, so object identity *is* model identity) are concatenated
    into one ``score_batch`` call per window.
    """

    def __init__(self, *,
                 max_delay_seconds: float = DEFAULT_MAX_DELAY_SECONDS,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_depth: int = DEFAULT_MAX_DEPTH):
        if max_delay_seconds < 0:
            raise BatchingError("max_delay_seconds must be >= 0")
        if max_batch < 1:
            raise BatchingError("max_batch must be at least 1")
        if max_depth < 1:
            raise BatchingError("max_depth must be at least 1")
        self.max_delay_seconds = float(max_delay_seconds)
        self.max_batch = int(max_batch)
        self.max_depth = int(max_depth)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._groups: dict[CompiledScorer, _Group] = {}
        self._depth = 0
        self._closing = False
        metrics.set_gauge("serve.queue_depth", 0)
        self._collector = threading.Thread(
            target=self._collect_forever, name="arcs-batcher", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Producer side (handler threads)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Submissions currently queued (the shed gauge's source)."""
        with self._lock:
            return self._depth

    def submit(self, scorer: CompiledScorer, x_values,
               y_values) -> np.ndarray:
        """Score through the queue; blocks until the batch flushes.

        Raises :class:`QueueFullError` at ``max_depth`` (shed),
        :class:`DrainingError` once closed, and :class:`ScoringError`
        for invalid input — exactly as direct scoring would.
        """
        x_values, y_values = _checked_arrays(scorer, x_values, y_values)
        item = _Submission(x_values, y_values)
        with self._lock:
            if self._closing:
                raise DrainingError(
                    "batch queue is draining; not accepting new work"
                )
            if self._depth >= self.max_depth:
                raise QueueFullError(
                    f"batch queue is full ({self._depth} submissions "
                    f"queued, bound {self.max_depth})"
                )
            group = self._groups.get(scorer)
            if group is None:
                group = _Group(opened_at=perf_counter())
                self._groups[scorer] = group
            group.items.append(item)
            group.points += len(item)
            self._depth += 1
            metrics.set_gauge("serve.queue_depth", self._depth)
            self._work.notify()
        item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    # ------------------------------------------------------------------
    # Collector side (one daemon thread)
    # ------------------------------------------------------------------
    def _collect_forever(self) -> None:
        # The batch-pick logic lives inline under the with-block (not in
        # a helper) so the lock discipline stays visible to the
        # ``concurrency`` checker.
        while True:
            with self._lock:
                while not self._groups and not self._closing:
                    self._work.wait()
                if not self._groups and self._closing:
                    return
                # Wait out the oldest group's window: until its deadline
                # passes, its point count crosses max_batch, or the
                # queue starts draining.  Only this thread ever removes
                # groups, so the chosen group survives the waits.
                while True:
                    scorer = min(
                        self._groups,
                        key=lambda s: self._groups[s].opened_at,
                    )
                    group = self._groups[scorer]
                    if self._closing or group.points >= self.max_batch:
                        break
                    remaining = (group.opened_at + self.max_delay_seconds
                                 - perf_counter())
                    if remaining <= 0:
                        break
                    self._work.wait(remaining)
                # Pop whole submissions until the next would cross
                # max_batch; always take at least one so an oversized
                # predict_batch still passes through as its own gather.
                items: list[_Submission] = []
                points = 0
                while group.items:
                    item = group.items[0]
                    if items and points + len(item) > self.max_batch:
                        break
                    items.append(group.items.pop(0))
                    points += len(item)
                    group.points -= len(item)
                if not group.items:
                    del self._groups[scorer]
                else:
                    group.opened_at = perf_counter()
                self._depth -= len(items)
                metrics.set_gauge("serve.queue_depth", self._depth)
            if items:
                self._flush(scorer, items)

    def _flush(self, scorer: CompiledScorer,
               items: list[_Submission]) -> None:
        """Score one coalesced batch and answer every submission."""
        try:
            if len(items) == 1:
                results = [scorer.score_batch(items[0].x_values,
                                              items[0].y_values)]
            else:
                x_all = np.concatenate([i.x_values for i in items])
                y_all = np.concatenate([i.y_values for i in items])
                merged = scorer.score_batch(x_all, y_all)
                bounds = np.cumsum([len(i) for i in items])
                results = np.split(merged, bounds[:-1])
            for item, result in zip(items, results):
                item.result = result
                item.done.set()
        except BaseException as error:  # answer waiters, never hang them
            logger.exception(
                "batch flush failed (%d submissions; request ids %s)",
                len(items),
                [item.request_id for item in items],
            )
            for item in items:
                if not item.done.is_set():
                    item.error = error
                    item.done.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain: refuse new work, flush what's queued, join the thread.

        Idempotent; safe to call from any thread but the collector.
        """
        with self._lock:
            if self._closing:
                already = True
            else:
                already = False
                self._closing = True
            self._work.notify_all()
        if not already:
            self._collector.join()
            metrics.set_gauge("serve.queue_depth", 0)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closing
