"""Multi-process serving: pre-fork workers over shared-memory scorers.

The threaded server in :mod:`repro.serve.service` is one process behind
the GIL; this module scales it across cores, gunicorn-style:

* the **parent** binds the listening socket, validates the model
  directory, compiles every scorer once and *publishes* the compiled
  position tables into ``multiprocessing.shared_memory`` blocks keyed
  by model content hash (:class:`ScorerPublisher`);
* N **workers** are forked with the listening socket and each run the
  full request stack — :class:`~repro.serve.service.PredictionService`
  with a :class:`~repro.serve.batching.BatchQueue` — accepting
  connections directly from the shared socket (the kernel load-balances
  ``accept`` across processes).  Their scorers come from
  :class:`SharedScorerCache`, which attaches the parent's tables
  zero-copy (read-only numpy views over the shared buffer) and falls
  back to a local compile when a block is missing;
* the parent then supervises: a refresh loop re-scans the model
  directory (hot reload), publishes new blocks, and broadcasts a
  ``sync`` to every worker; a watchdog restarts crashed workers
  (``serve.worker_restarts``); :meth:`MultiProcessServer.drain` stops
  everything gracefully.

**Shared-memory lifecycle on hot reload**: blocks are content-hash
keyed, so an edited artefact publishes a *new* block under a new name —
never a mutation of a mapped one.  Every publication bumps a
*generation*; every spawned worker counts against the unlink floor from
the moment it forks, workers acknowledge each generation after
re-attaching, and a replaced block is unlinked only once every live
worker has acknowledged a generation at or past its retirement.  An
in-flight request keeps its mapping valid regardless: ``shm_unlink``
removes the name, not existing mappings, and the worker side never
*closes* a mapping while a scorer view over it is alive —
``SharedMemory.close`` unmaps immediately even under live numpy views,
so each attach defers the close to a finalizer on the last view
(:func:`_close_mapping_when_views_die`) and the
:class:`SharedScorerCache` only ever drops references.

**Fork safety**: the watchdog forks replacement workers from a
supervision thread while the refresh and ack loops keep running, so a
freshly forked child re-arms the metrics-registry and event-sink locks
via ``os.register_at_fork`` hooks (the stdlib ``logging`` module
guards its own handler locks the same way) before
:func:`_reset_child_observability` swaps in per-process instances; the
inherited event sink is forgotten, never closed, so a fork-copied
partial buffer cannot be flushed into the parent's log.

**Fleet telemetry**: per-process registries used to mean a ``/metrics``
scrape reflected only the worker that answered it.  Each worker now
runs a telemetry thread that periodically (and finally, on drain) ships
its registry snapshot plus event-sink counts to the parent over the
ack queue; the parent's :class:`~repro.obs.fleet.FleetAggregator`
merges them kind-aware (counters/histograms sum, gauges re-label as
``{worker="N"}``) and atomically re-publishes the fleet document to a
JSON file every worker re-reads — so any worker's ``/metrics`` serves
the fleet-wide view and ``GET /fleet`` exposes the per-worker
lifecycle surface (pid, uptime, spawn generation, restarts, ack
latency, snapshot age, drain state).

**Graceful drain** (SIGTERM via the CLI, or :meth:`drain` directly):
the parent broadcasts ``drain``; each worker stops accepting, answers
new scoring requests with 503, flushes its batch queue so blocked
callers complete, joins its handler threads, and exits; the parent
joins every worker, then unlinks all shared blocks and closes the
socket.

Results are bit-identical to the single-process scorer: an attached
scorer is a :class:`~repro.serve.scorer.CompiledScorer` over byte-exact
copies of the parent's tables, scoring through the same code path —
held to the scalar oracle by ``tests/test_serve_workers.py``.

Requires a platform with the ``fork`` start method (Linux, macOS);
:class:`MultiProcessServer` refuses to build elsewhere — the threaded
``--workers 0`` path remains available everywhere.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import shutil
import signal
import struct
import tempfile
import threading
import weakref
from dataclasses import dataclass, replace
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from queue import Empty
from time import perf_counter

import numpy as np

from repro.core.segmentation import Segmentation
from http.server import ThreadingHTTPServer

from repro.obs import events, metrics, tracing
from repro.obs.fleet import FleetAggregator, FleetView
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_SECONDS,
    DEFAULT_MAX_DEPTH,
    BatchQueue,
)
from repro.serve.monitor import (
    DEFAULT_WINDOW_COUNT,
    DEFAULT_WINDOW_SECONDS,
    TrafficMonitors,
)
from repro.serve.registry import ModelRegistry, ServedModel
from repro.serve.scorer import CompiledScorer, compile_scorer
from repro.serve.service import (
    PredictionHandler,
    PredictionServer,
    PredictionService,
)

logger = logging.getLogger(__name__)

__all__ = [
    "MultiProcessServer",
    "ScorerPublisher",
    "SharedScorerCache",
    "WorkerConfig",
    "WorkerError",
    "attach_scorer",
    "block_name",
    "publish_tables",
]


class WorkerError(RuntimeError):
    """A worker-pool failure (startup, platform, or shutdown)."""


#: Shared-memory block layout: an 8-byte little-endian header length,
#: the JSON header describing each array (dtype, shape, offset), then
#: the raw array bytes, each 16-byte aligned.
_LENGTH = struct.Struct("<Q")
_ALIGN = 16

#: The arrays a compiled scorer is made of, in layout order.
_TABLE_FIELDS = ("x_edges", "y_edges", "table")


def block_name(prefix: str, model_id: str) -> str:
    """The deterministic shared-memory name for one model's tables."""
    return f"{prefix}_{model_id}"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_tables(scorer: CompiledScorer, name: str) -> SharedMemory:
    """Copy a compiled scorer's tables into a new shared-memory block.

    A stale block under the same name (a previous server instance that
    crashed before unlinking) is removed first; content-hash keyed
    names make an *in-use* collision impossible.
    """
    arrays = {field: getattr(scorer, field) for field in _TABLE_FIELDS}
    header: dict = {}
    for field, array in arrays.items():
        header[field] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": 0,
        }
    # The header's own encoded size shifts the array offsets, and the
    # offsets' digit count feeds back into the header text, so iterate
    # to a fixpoint: a header must never be stored with offsets
    # computed from a shorter encoding than the one written (its tail
    # would overlap the first array).  Offsets only grow with header
    # length and their digit count is bounded, so this settles fast.
    while True:
        encoded = json.dumps(header, sort_keys=True).encode("ascii")
        offset = _aligned(_LENGTH.size + len(encoded))
        changed = False
        for field, array in arrays.items():
            if header[field]["offset"] != offset:
                header[field]["offset"] = offset
                changed = True
            offset = _aligned(offset + array.nbytes)
        if not changed:
            break
    total = offset
    try:
        shm = SharedMemory(create=True, name=name, size=total)
    except FileExistsError:
        stale = SharedMemory(name=name)
        stale.close()
        stale.unlink()
        logger.warning("removed stale shared-memory block %s", name)
        shm = SharedMemory(create=True, name=name, size=total)
    shm.buf[:_LENGTH.size] = _LENGTH.pack(len(encoded))
    shm.buf[_LENGTH.size:_LENGTH.size + len(encoded)] = encoded
    for field, array in arrays.items():
        spec = header[field]
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=shm.buf, offset=spec["offset"])
        view[...] = array
    metrics.inc("serve.shm_published")
    logger.debug("published %s (%d bytes)", name, total)
    return shm


def _release_block(shm: SharedMemory, model_id: str) -> None:
    """Close and unlink, tolerating external removal of the file.

    A tmpfs cleaner or an operator ``rm`` under ``/dev/shm`` must not
    wedge the ack loop or leave :meth:`MultiProcessServer.drain`
    half-finished — attached mappings survive the unlink either way.
    """
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        logger.warning("shared block for %s was already removed "
                       "externally", model_id)


def _close_mapping_when_views_die(shm: SharedMemory,
                                  views: tuple[np.ndarray, ...]) -> None:
    """Close ``shm`` only once every view over it has been collected.

    ``SharedMemory.close`` unmaps immediately — numpy views built over
    ``shm.buf`` hold no buffer export that would make it fail, and the
    object's ``__del__`` calls it too — so a close (or a plain garbage
    collection of the handle) racing an in-flight ``score_batch`` turns
    the scorer's arrays into dangling pointers: a segfault, not an
    exception.  Registering a finalizer per view makes *dropping
    references* the only cleanup a holder ever needs: the finalizer
    registry keeps ``shm`` alive exactly as long as the last view, then
    the mapping is closed once.
    """
    # Each mapping needs its own countdown lock, shared by that
    # mapping's view finalizers via the closure.
    lock = threading.Lock()
    remaining = [len(views)]

    def _view_collected() -> None:
        with lock:
            remaining[0] -= 1
            last = remaining[0] == 0
        if last:
            shm.close()

    for view in views:
        weakref.finalize(view, _view_collected)


def attach_scorer(name: str,
                  segmentation: Segmentation,
                  ) -> tuple[CompiledScorer, SharedMemory]:
    """Attach published tables as a zero-copy :class:`CompiledScorer`.

    The returned arrays are read-only views over the shared buffer.
    The mapping outlives them automatically: a finalizer on each view
    defers ``close`` until the last one is collected
    (:func:`_close_mapping_when_views_die`), so callers simply drop
    references when done — closing the returned :class:`SharedMemory`
    by hand while the scorer may still be scoring is unsafe.  Raises
    :class:`FileNotFoundError` when the block does not exist (callers
    fall back to a local compile).
    """
    shm = SharedMemory(name=name)
    (length,) = _LENGTH.unpack_from(shm.buf, 0)
    header = json.loads(bytes(shm.buf[_LENGTH.size:_LENGTH.size + length]))
    arrays = {}
    for field in _TABLE_FIELDS:
        spec = header[field]
        view = np.ndarray(tuple(spec["shape"]),
                          dtype=np.dtype(spec["dtype"]),
                          buffer=shm.buf, offset=spec["offset"])
        view.setflags(write=False)
        arrays[field] = view
    _close_mapping_when_views_die(shm, tuple(arrays.values()))
    scorer = CompiledScorer(segmentation=segmentation, **arrays)
    return scorer, shm


# ----------------------------------------------------------------------
# Parent side: publication and retirement
# ----------------------------------------------------------------------
class ScorerPublisher:
    """Owns the shared-memory blocks for every served model (parent).

    Thread-safe; :meth:`sync` is called from the refresh loop,
    :meth:`note_ack` from the ack loop, and both race the watchdog's
    :meth:`reset_worker` — all state is guarded by ``self._lock``.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._lock = threading.Lock()
        self._generation = 0
        self._blocks: dict[str, SharedMemory] = {}
        #: Blocks replaced or dropped, kept mapped until every live
        #: worker acknowledges the generation that retired them.
        self._retired: list[tuple[int, str, SharedMemory]] = []
        self._acked: dict[int, int] = {}  # worker index -> generation

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def block_for(self, model_id: str) -> str:
        return block_name(self.prefix, model_id)

    def sync(self, models: list[ServedModel]) -> int:
        """Publish blocks for new models, retire removed ones.

        Returns the new generation to broadcast to workers.
        """
        with self._lock:
            self._generation += 1
            current = {model.model_id: model for model in models}
            for model_id, model in current.items():
                if model_id not in self._blocks:
                    scorer = compile_scorer(model.segmentation)
                    self._blocks[model_id] = publish_tables(
                        scorer, block_name(self.prefix, model_id)
                    )
            for model_id in list(self._blocks):
                if model_id not in current:
                    self._retired.append((
                        self._generation, model_id,
                        self._blocks.pop(model_id),
                    ))
                    logger.info(
                        "retiring shared block for %s at generation %d",
                        model_id, self._generation,
                    )
            return self._generation

    def register_worker(self, worker_index: int) -> None:
        """Count a spawned worker against the unlink floor immediately.

        Seeding generation 0 at spawn time keeps the documented "every
        live worker has acknowledged" invariant through the startup
        window: a block retired before a fresh worker delivers its
        first ack stays mapped until that worker actually re-attaches.
        ``setdefault`` so an ack racing the registration is kept.
        """
        with self._lock:
            self._acked.setdefault(worker_index, 0)

    def note_ack(self, worker_index: int, generation: int) -> None:
        """Record a worker's re-attach ack; unlink fully-acked blocks.

        The floor is the minimum over every *registered* worker
        (:meth:`register_worker` seeds each at spawn), so a worker that
        has never acked holds every retirement back until it does.
        """
        with self._lock:
            previous = self._acked.get(worker_index, 0)
            self._acked[worker_index] = max(previous, generation)
            if not self._acked:
                return
            floor = min(self._acked.values())
            keep = []
            for retired_at, model_id, shm in self._retired:
                if retired_at <= floor:
                    _release_block(shm, model_id)
                    metrics.inc("serve.shm_retired")
                    logger.debug("unlinked retired block for %s",
                                 model_id)
                else:
                    keep.append((retired_at, model_id, shm))
            self._retired = keep

    def reset_worker(self, worker_index: int) -> None:
        """A worker died: its acks no longer count until it re-attaches."""
        with self._lock:
            self._acked[worker_index] = 0

    def close(self) -> None:
        """Unlink every block (server shutdown)."""
        with self._lock:
            for model_id, shm in self._blocks.items():
                _release_block(shm, model_id)
            for _, model_id, shm in self._retired:
                _release_block(shm, model_id)
            self._blocks = {}
            self._retired = []


# ----------------------------------------------------------------------
# Worker side: attachment
# ----------------------------------------------------------------------
class SharedScorerCache:
    """Resolves models to scorers, preferring shared tables (worker).

    Drop-in ``scorer_provider`` for
    :class:`~repro.serve.service.PredictionService`: attaches the
    parent's block for the model's content hash, falling back to an
    in-process compile when no block exists (e.g. the parent has not
    published a just-reloaded artefact yet) or when its header is
    unreadable (a torn write from a crashed publisher).  ``sync`` drops
    entries for models no longer served and retries fallbacks, so a
    worker converges onto shared tables at the next generation.

    The cache never closes a shared mapping: a handler thread may be
    mid-request through the attached numpy views, and
    ``SharedMemory.close`` would unmap the buffer under it.  Every
    method only drops references; the mapping closes itself once the
    last view is collected (:func:`_close_mapping_when_views_die`).
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._lock = threading.Lock()
        #: model_id -> (scorer, shm | None); the shm handle marks the
        #: entry as shared (``None`` = local-compile fallback).
        self._entries: dict[str, tuple[CompiledScorer,
                                       SharedMemory | None]] = {}

    def resolve(self, model: ServedModel) -> CompiledScorer:
        with self._lock:
            entry = self._entries.get(model.model_id)
        if entry is not None:
            return entry[0]
        built = self._build(model)
        with self._lock:
            raced = self._entries.get(model.model_id)
            if raced is not None:
                # Another thread attached first; drop ours — its
                # mapping closes once its views are collected.
                return raced[0]
            self._entries[model.model_id] = built
        return built[0]

    def _build(self,
               model: ServedModel) -> tuple[CompiledScorer,
                                            SharedMemory | None]:
        name = block_name(self.prefix, model.model_id)
        try:
            scorer, shm = attach_scorer(name, model.segmentation)
        except FileNotFoundError:
            logger.info(
                "no shared block %s; compiling %s locally",
                name, model.name,
            )
            metrics.inc("serve.shm_attach_fallbacks")
            return compile_scorer(model.segmentation), None
        except (ValueError, KeyError, struct.error) as error:
            # A block exists but its header does not parse: degrade to
            # a local compile rather than turning every request for
            # the model into a 500.
            logger.warning(
                "shared block %s is unreadable (%s: %s); compiling %s "
                "locally", name, type(error).__name__, error, model.name,
            )
            metrics.inc("serve.shm_attach_fallbacks")
            return compile_scorer(model.segmentation), None
        metrics.inc("serve.shm_attached")
        return scorer, shm

    def sync(self, served_ids: set[str]) -> None:
        """Drop stale entries; re-attach fallbacks next time they score.

        Dropped shared entries are released, never closed here — a
        request racing a model removal keeps its views valid, and the
        mapping closes once the last of them is collected.
        """
        with self._lock:
            self._entries = {
                model_id: entry
                for model_id, entry in self._entries.items()
                if model_id in served_ids and entry[1] is not None
            }

    def close(self) -> None:
        """Drop every entry; mappings close as their views die."""
        with self._lock:
            self._entries = {}


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker serving knobs, shared by the parent and the CLI."""

    #: Batching window in seconds; 0 disables the queue entirely.
    batch_window_seconds: float = DEFAULT_MAX_DELAY_SECONDS
    max_batch: int = DEFAULT_MAX_BATCH
    queue_depth: int = DEFAULT_MAX_DEPTH
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    window_count: int = DEFAULT_WINDOW_COUNT
    #: Re-enabled per worker (fork does not share the JSONL sink).
    events_out: str | None = None
    trace_spans: bool = False
    #: Seconds between telemetry snapshots shipped to the parent; 0
    #: disables the periodic thread (the final on-drain snapshot is
    #: always shipped).
    telemetry_interval: float = 2.0
    #: Where the parent publishes the merged fleet document.  ``None``
    #: (the default) lets :class:`MultiProcessServer` place it in a
    #: private temp directory it cleans up on drain; a caller-pinned
    #: path survives the drain (CI uploads it as an artifact).
    fleet_path: str | None = None

    def build_batcher(self) -> BatchQueue | None:
        if self.batch_window_seconds <= 0:
            return None
        return BatchQueue(
            max_delay_seconds=self.batch_window_seconds,
            max_batch=self.max_batch,
            max_depth=self.queue_depth,
        )


class _AdoptedSocketServer(PredictionServer):
    """A :class:`PredictionServer` over an inherited, listening socket.

    The parent bound and listens; workers must not bind again, so the
    stdlib constructor runs with ``bind_and_activate=False`` and the
    fresh unbound socket it makes is swapped for the shared one.

    Handler threads are non-daemon (unlike the threaded
    :class:`PredictionServer`): ``ThreadingMixIn`` only tracks — and
    ``server_close`` only joins — non-daemon threads, and the drain
    protocol relies on that join to finish in-flight requests before
    the worker process exits.
    """

    daemon_threads = False

    def __init__(self, listen_socket, service: PredictionService):
        ThreadingHTTPServer.__init__(
            self, listen_socket.getsockname()[:2], PredictionHandler,
            bind_and_activate=False,
        )
        self.socket.close()
        self.socket = listen_socket
        host, port = listen_socket.getsockname()[:2]
        self.server_name = host
        self.server_port = port
        self.service = service


_fork_hooks_installed = False


def _install_fork_hooks() -> None:
    """Re-arm obs locks in every forked child (``os.register_at_fork``).

    The watchdog forks replacement workers from a supervision thread
    while the refresh and ack loops keep running; whatever lock one of
    them holds at that instant — the metrics registry's, the event
    sink's — is copied into the child in the locked state with no
    owning thread, and the child's first emit would deadlock forever.
    The stdlib ``logging`` module re-inits its own handler locks the
    same way (3.7.4+); these hooks cover the obs state, running before
    any child code so even the window ahead of
    :func:`_reset_child_observability` is safe.  Registration cannot be
    undone, so it happens on first :class:`MultiProcessServer`
    construction rather than at import.
    """
    global _fork_hooks_installed
    if _fork_hooks_installed:
        return
    _fork_hooks_installed = True
    os.register_at_fork(after_in_child=metrics.reinit_after_fork)
    os.register_at_fork(after_in_child=events.reinit_after_fork)


def _reset_child_observability(index: int,
                               config: WorkerConfig) -> None:
    """Give a freshly forked worker its own observability state.

    ``fork`` copies the parent's registries — including buffered sinks —
    mid-flight; a worker must own fresh instances, and metrics become
    per-process from here on (the telemetry thread ships them to the
    parent for fleet aggregation).  The inherited event sink is
    *forgotten*, never closed: closing would flush a fork-copied
    partial buffer into the parent's log through the shared descriptor,
    and its lock may have been held by a parent thread that does not
    exist here (the ``os.register_at_fork`` hooks re-armed it already —
    see :func:`_install_fork_hooks`).  The worker identity is recorded
    before the sink opens, so every event this process ever writes
    carries its ``pid``/``worker`` fields — N workers appending to one
    ``--events-out`` path stay disentangleable.
    """
    metrics.enable(metrics.MetricsRegistry())
    if config.trace_spans:
        tracing.enable()
    events.forget_events()
    events.set_worker_identity(index)
    if config.events_out:
        events.enable_events(config.events_out)


def _telemetry_payload(incarnation: int, started: float,
                       draining: bool) -> dict:
    """One worker telemetry message: identity + metrics + event counts."""
    registry = metrics.active()
    sink = events.active_sink()
    return {
        "pid": os.getpid(),
        "incarnation": incarnation,
        "uptime_seconds": perf_counter() - started,
        "draining": draining,
        "snapshot": registry.snapshot() if registry is not None else {},
        "events": sink.counts() if sink is not None else None,
    }


def _worker_main(index: int, worker_count: int, listen_socket,
                 model_dir, prefix: str, spawn_generation: int,
                 incarnation: int, config: WorkerConfig, control,
                 acks) -> None:
    """One scoring worker: serve the shared socket until told to drain."""
    # The parent owns terminal signals; workers drain on its command
    # (or on parent death, seen as EOF on the control pipe).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    started = perf_counter()
    _reset_child_observability(index, config)
    registry = ModelRegistry(model_dir, refresh_interval=-1).load()
    cache = SharedScorerCache(prefix)
    batcher = config.build_batcher()
    fleet_view = (
        FleetView(config.fleet_path) if config.fleet_path else None
    )
    service = PredictionService(
        registry,
        monitors=TrafficMonitors(window_seconds=config.window_seconds,
                                 window_count=config.window_count),
        batcher=batcher,
        scorer_provider=cache.resolve,
        fleet_view=fleet_view.read if fleet_view is not None else None,
    )
    service.health_extra = {
        "worker": index,
        "workers": worker_count,
        "pid": os.getpid(),
        "spawn_generation": incarnation,
    }
    server = _AdoptedSocketServer(listen_socket, service)
    server.serve_in_background()
    logger.info("worker %d serving (pid %d)", index, os.getpid())
    acks.put(("ready", index, spawn_generation))

    def _ship_telemetry(draining: bool = False) -> None:
        try:
            acks.put(("telemetry", index,
                      _telemetry_payload(incarnation, started,
                                         draining)))
        except (OSError, ValueError):
            pass  # parent gone; telemetry is best-effort

    telemetry_stop = threading.Event()
    telemetry_thread: threading.Thread | None = None
    if config.telemetry_interval > 0:
        def _telemetry_loop() -> None:
            while not telemetry_stop.wait(config.telemetry_interval):
                _ship_telemetry()

        telemetry_thread = threading.Thread(
            target=_telemetry_loop, name=f"arcs-telemetry-{index}",
            daemon=True,
        )
        telemetry_thread.start()
    try:
        while True:
            try:
                if not control.poll(0.25):
                    continue
                message = control.recv()
            except (EOFError, OSError):
                logger.warning(
                    "worker %d lost the control channel; draining", index
                )
                break
            if message[0] == "sync":
                generation = message[1]
                registry.refresh()
                cache.sync({
                    model.model_id for model in registry.models()
                })
                acks.put(("synced", index, generation))
            elif message[0] == "drain":
                break
    finally:
        service.begin_drain()
        if batcher is not None:
            batcher.close()
        server.shutdown()
        # server_close joins the in-flight handler threads
        # (block_on_close), completing the graceful drain.
        server.server_close()
        cache.close()
        telemetry_stop.set()
        if telemetry_thread is not None:
            telemetry_thread.join(timeout=5.0)
        # The final snapshot: every request this worker ever served is
        # now in the registry (handler threads are joined), so the
        # parent's last publish covers the complete totals.
        _ship_telemetry(draining=True)
        try:
            acks.put(("stopped", index))
        except (OSError, ValueError):
            pass  # parent gone
        logger.info("worker %d drained (pid %d)", index, os.getpid())


# ----------------------------------------------------------------------
# Parent: the pre-fork front end
# ----------------------------------------------------------------------
class MultiProcessServer:
    """N forked scoring workers behind one shared listening socket.

    Construction binds the socket, strictly loads the model directory
    and publishes every compiled scorer to shared memory;
    :meth:`start` forks the workers and the supervision threads;
    :meth:`drain` (or SIGTERM via the CLI) shuts everything down
    gracefully.  ``port=0`` picks a free port — read it back from
    :attr:`url`.
    """

    #: How often the watchdog checks worker liveness, seconds.
    WATCHDOG_INTERVAL = 0.5

    def __init__(self, model_dir: str | Path, host: str = "127.0.0.1",
                 port: int = 8799, workers: int = 2,
                 refresh_interval: float = 1.0,
                 config: WorkerConfig | None = None,
                 start_timeout: float = 30.0):
        if workers < 1:
            raise WorkerError("workers must be at least 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerError(
                "multi-process serving needs the 'fork' start method "
                "(Linux/macOS); use the threaded server (--workers 0) "
                "on this platform"
            )
        _install_fork_hooks()
        import socket as socket_module

        self.worker_count = int(workers)
        self.refresh_interval = float(refresh_interval)
        self.config = config if config is not None else WorkerConfig()
        self.start_timeout = float(start_timeout)
        self._context = multiprocessing.get_context("fork")
        self.registry = ModelRegistry(
            model_dir, refresh_interval=-1
        ).load()
        self.prefix = f"arcs{os.getpid():x}"
        self.publisher = ScorerPublisher(self.prefix)
        self.fleet = FleetAggregator()
        # The fleet document's home: a caller-pinned path survives the
        # drain (CI uploads it); otherwise a private temp directory is
        # created now and removed at the end of drain().
        if self.config.fleet_path:
            self.fleet_path = Path(self.config.fleet_path)
            self._fleet_dir: Path | None = None
        else:
            self._fleet_dir = Path(
                tempfile.mkdtemp(prefix="arcs-fleet-")
            )
            self.fleet_path = self._fleet_dir / "fleet.json"
            self.config = replace(
                self.config, fleet_path=str(self.fleet_path)
            )
        self._socket = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        self._socket.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        self._socket.bind((host, port))
        self._socket.listen(128)
        self._lock = threading.Lock()
        self._processes: dict[int, multiprocessing.process.BaseProcess]
        self._processes = {}
        self._controls: dict[int, object] = {}
        #: Per-slot spawn generation: 1 at first fork, +1 per watchdog
        #: respawn — the fleet's monotone-counter fold key.
        self._incarnations: dict[int, int] = {}
        self._acks = self._context.Queue()
        self._ready = threading.Semaphore(0)
        self._stopping = threading.Event()
        #: Set only after every worker is joined: the ack loop must
        #: keep consuming through the drain, or a worker's final
        #: telemetry snapshot could fill the queue's pipe and block its
        #: exit against the parent's join.
        self._acks_done = threading.Event()
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self.publisher.sync(self.registry.models())
        metrics.set_gauge("serve.workers", self.worker_count)
        logger.info(
            "multi-process server bound to %s: %d worker(s), "
            "%d model(s), prefix %s",
            self.url, self.worker_count, len(self.registry), self.prefix,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._socket.getsockname()[:2]
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._stopping.is_set()

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [
                process.pid for process in self._processes.values()
                if process.pid is not None
            ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MultiProcessServer":
        """Fork the workers and start supervision; returns when ready."""
        if self._started:
            raise WorkerError("server already started")
        self._started = True
        # The parent is the fleet-telemetry owner: its registry feeds
        # the `fleet.*` instruments and rides along in the published
        # aggregate under `{worker="parent"}`.  Workers enable their
        # own registries unconditionally after the fork (see
        # _reset_child_observability); the parent does the same here so
        # aggregation overhead is measured whether or not the embedding
        # process opted into obs.
        if metrics.active() is None:
            metrics.enable(metrics.MetricsRegistry())
        # Fork outside self._lock: the child inherits every lock in
        # its at-fork state, so a fork under a held lock wedges the
        # child the first time it touches that lock.  No supervision
        # thread exists yet, but the recording still happens under the
        # lock so the invariant is uniform with the watchdog's.
        for index in range(self.worker_count):
            process, control = self._spawn(index)
            with self._lock:
                self._processes[index] = process
                self._controls[index] = control
        for thread_target in (self._ack_loop, self._refresh_loop,
                              self._watchdog_loop):
            thread = threading.Thread(
                target=thread_target, daemon=True,
                name=f"arcs-{thread_target.__name__.strip('_')}",
            )
            thread.start()
            self._threads.append(thread)
        deadline = perf_counter() + self.start_timeout
        for _ in range(self.worker_count):
            remaining = deadline - perf_counter()
            if remaining <= 0 or not self._ready.acquire(
                    timeout=max(remaining, 0.001)):
                self.drain(timeout=5.0)
                raise WorkerError(
                    f"workers failed to become ready within "
                    f"{self.start_timeout:.0f}s"
                )
        logger.info("all %d worker(s) ready", self.worker_count)
        return self

    def _spawn(self, index: int):
        """Fork worker ``index``; the caller records the returned
        (process, control pipe) pair under ``self._lock``."""
        parent_end, child_end = self._context.Pipe()
        # Before the fork: the new worker must hold back retirements
        # from its very first moment, not from its first ack.
        self.publisher.register_worker(index)
        with self._lock:
            incarnation = self._incarnations.get(index, 0) + 1
            self._incarnations[index] = incarnation
        generation = self.publisher.generation
        # Stamp the spawn so the worker's "ready" ack reports its
        # fork-to-ready latency on the fleet surface.
        self.fleet.note_sync_sent(generation)
        process = self._context.Process(
            target=_worker_main,
            name=f"arcs-worker-{index}",
            args=(index, self.worker_count, self._socket,
                  self.registry.directory, self.prefix,
                  generation, incarnation, self.config,
                  child_end, self._acks),
            # Daemonic: if the parent dies without draining, workers
            # must not keep the exit hanging — they notice the control
            # pipe EOF and drain themselves anyway.
            daemon=True,
        )
        process.start()
        self.fleet.register_worker(index, process.pid, incarnation)
        child_end.close()
        return process, parent_end

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain workers, join them, release blocks."""
        if self._stopped.is_set():
            return
        self._stopping.set()
        logger.info("drain: asking %d worker(s) to finish",
                    self.worker_count)
        with self._lock:
            processes = dict(self._processes)
            controls = dict(self._controls)
        for index, control in controls.items():
            try:
                control.send(("drain",))
            except (OSError, ValueError):
                logger.warning("worker %d control channel already gone",
                               index)
        deadline = perf_counter() + timeout
        for index, process in processes.items():
            process.join(timeout=max(deadline - perf_counter(), 0.1))
            if process.is_alive():
                logger.warning(
                    "worker %d did not drain within %.0fs; terminating",
                    index, timeout,
                )
                process.terminate()
                process.join(timeout=5.0)
        for control in controls.values():
            try:
                control.close()
            except OSError:
                logger.debug("control pipe already closed")
        # Workers are joined; now the ack loop may stop.  Absorb
        # whatever it had not yet consumed — every worker ships one
        # final telemetry snapshot on its way out, and the last
        # published fleet document must cover those complete totals.
        self._acks_done.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        while True:
            try:
                message = self._acks.get_nowait()
            except (Empty, OSError, ValueError):
                break
            self._handle_ack(message)
        self._acks.close()
        self.publisher.close()
        self._socket.close()
        metrics.set_gauge("serve.workers", 0)
        if self._fleet_dir is not None:
            # Server-owned temp home for the fleet document; a
            # caller-pinned fleet_path is left in place instead.
            shutil.rmtree(self._fleet_dir, ignore_errors=True)
        self._stopped.set()
        logger.info("drain complete")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully stopped."""
        return self._stopped.wait(timeout)

    # ------------------------------------------------------------------
    # Supervision threads
    # ------------------------------------------------------------------
    def _ack_loop(self) -> None:
        while not self._acks_done.is_set():
            try:
                message = self._acks.get(timeout=0.25)
            except (Empty, OSError, ValueError):
                continue
            self._handle_ack(message)

    def _handle_ack(self, message) -> None:
        """Process one worker message (ack loop, and drain's catch-up)."""
        kind, index, *rest = message
        try:
            if kind == "ready":
                self.publisher.note_ack(index, rest[0])
                self.fleet.note_sync_ack(index, rest[0])
                self._ready.release()
            elif kind == "synced":
                self.publisher.note_ack(index, rest[0])
                self.fleet.note_sync_ack(index, rest[0])
            elif kind == "telemetry":
                self.fleet.absorb(index, rest[0])
                self._publish_fleet()
        except Exception:
            # The ack loop is supervision: a bookkeeping failure
            # must not stop future acks from being processed.
            logger.exception("processing %s ack from worker %d "
                             "failed", kind, index)

    def _publish_fleet(self) -> None:
        """Re-publish the merged fleet document for workers to serve.

        The parent's own registry (publisher counters, restart totals,
        the ``fleet.*`` instruments) rides along labeled
        ``{worker="parent"}`` so nothing the parent observes is
        invisible fleet-wide.
        """
        registry = metrics.active()
        self.fleet.publish(
            self.fleet_path,
            registry.snapshot() if registry is not None else None,
        )

    def _refresh_loop(self) -> None:
        if self.refresh_interval <= 0:
            return
        while not self._stopping.wait(self.refresh_interval):
            try:
                self.poll_models()
            except Exception:
                logger.exception("model refresh failed; will retry")

    def poll_models(self) -> bool:
        """One hot-reload step: re-scan, publish, broadcast ``sync``.

        Returns whether anything changed.  Called by the refresh loop;
        public so tests (and callers embedding the server) can drive
        reloads deterministically.
        """
        if not self.registry.refresh():
            return False
        generation = self.publisher.sync(self.registry.models())
        self.fleet.note_sync_sent(generation)
        with self._lock:
            controls = dict(self._controls)
        for index, control in controls.items():
            try:
                control.send(("sync", generation))
            except (OSError, ValueError):
                logger.warning(
                    "cannot send sync to worker %d; it will restart",
                    index,
                )
        logger.info("hot reload: generation %d broadcast to %d workers",
                    generation, len(controls))
        return True

    def _watchdog_loop(self) -> None:
        while not self._stopping.wait(self.WATCHDOG_INTERVAL):
            with self._lock:
                dead = [
                    (index, self._processes[index].exitcode,
                     self._controls.get(index))
                    for index, process in self._processes.items()
                    if not process.is_alive()
                ]
            for index, exitcode, old_control in dead:
                if self._stopping.is_set():
                    break
                logger.warning(
                    "worker %d died (exit %s); restarting",
                    index, exitcode,
                )
                metrics.inc("serve.worker_restarts")
                self.publisher.reset_worker(index)
                self.fleet.note_restart(index)
                try:
                    if old_control is not None:
                        old_control.close()
                except OSError:
                    logger.debug("dead worker pipe already closed")
                # Fork outside self._lock (see start()): the child
                # must never inherit a held registry lock.
                process, control = self._spawn(index)
                with self._lock:
                    self._processes[index] = process
                    self._controls[index] = control
                if self._stopping.is_set():
                    # drain() may have snapshotted the control table
                    # before this respawn was recorded; closing the
                    # fresh pipe makes the worker see EOF and drain
                    # itself (it is daemonic either way).
                    try:
                        control.close()
                    except OSError:
                        pass
