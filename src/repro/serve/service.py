"""The prediction service: endpoint logic plus the HTTP layer.

Two halves, separable for testing:

* :class:`PredictionService` — the transport-free endpoint logic.  Each
  method takes/returns plain dicts, raises :class:`ServiceError` with
  an HTTP status for bad requests, and is instrumented with the
  ``serve.*`` counters and histograms (catalogue in
  ``docs/observability.md``).  Unit tests drive this directly.
* :class:`PredictionServer` / :class:`PredictionHandler` — a
  stdlib-only threaded HTTP front (``http.server.ThreadingHTTPServer``)
  that parses JSON bodies, maps :class:`ServiceError` to status codes
  and logs through the module logger instead of printing.

Endpoints::

    GET  /healthz        liveness + model count + worker identity
    GET  /models         registry listing with artefact metadata
    GET  /metrics        metrics (JSON, or Prometheus text via
                         ?format=prometheus / an Accept: text/plain);
                         under the multi-process server this serves the
                         published *fleet* aggregate by default —
                         ?scope=local forces this process's own view
    GET  /fleet          fleet lifecycle surface: per-worker pid,
                         uptime, spawn generation, restart count, ack
                         latency, snapshot age and drain state
    GET  /stats          model observability: windowed traffic drift
                         (PSI + JS per attribute), segment coverage and
                         out-of-range fractions per model
    GET  /debug/profile  sample the process for ?seconds=N, return
                         collapsed (flamegraph) stacks
    POST /predict        {"model", "x", "y"} -> segment membership
    POST /predict_batch  {"model", "x": [...], "y": [...]} -> arrays
    POST /explain        {"model", "x", "y"} -> the rule that fired

Every successfully scored input is also fed to the per-model
:class:`~repro.serve.monitor.TrafficMonitor`, which re-bins it into the
model's training grid and maintains the drift/coverage state behind
``/stats`` (see ``docs/observability.md``).  Monitor bookkeeping never
fails a prediction: recording errors are logged and swallowed.

Models resolve by content-hash id or by name; resolution triggers the
registry's rate-limited hot-reload check, and an in-flight request
keeps the :class:`~repro.serve.registry.ServedModel` it resolved even
if a reload swaps the snapshot mid-request.  When tracing is enabled
(``repro.obs``), every request is bracketed by a ``serve.<endpoint>``
span; handler threads have no ambient run capture, so these are
recorded as self-contained root spans in a bounded ring buffer
(:attr:`PredictionService.recent_spans`).
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
import uuid
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs

import numpy as np

from repro.obs import events, metrics, tracing
from repro.obs.profiler import profile_for
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus, render_registry
from repro.obs.tracing import Span
from repro.serve.batching import (
    BatchQueue,
    DrainingError,
    QueueFullError,
)
from repro.serve.monitor import TrafficMonitors
from repro.serve.registry import ModelRegistry, ServedModel
from repro.serve.scorer import (
    CompiledScorer,
    ScoringError,
    compile_scorer,
)

logger = logging.getLogger(__name__)

__all__ = [
    "PredictionHandler",
    "PredictionServer",
    "PredictionService",
    "REQUEST_ID_HEADER",
    "ServiceError",
    "TextResponse",
]

#: Upper bound on one ``/debug/profile`` sampling window; keeps a typo'd
#: ``seconds=`` from parking a handler thread for an hour.
MAX_PROFILE_SECONDS = 30.0

#: The request-id correlation header: echoed on every response, and the
#: same value lands in the request's access-log/``drift_alert``/``shed``
#: events (see :mod:`repro.obs.events`).
REQUEST_ID_HEADER = "X-Arcs-Request-Id"

#: Client-supplied request ids are honoured only in this shape — one
#: log-safe token, so a header cannot smuggle newlines or JSON into the
#: event stream.
_REQUEST_ID_RE = re.compile(r"\A[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


def _request_id_for(inbound: str | None) -> str:
    """The request id to use: a sane client-supplied one, else fresh.

    Ids are random (uuid4), not derived from the request: serving sits
    outside the pipeline's determinism boundary, and collision-free
    uniqueness across N workers is the property correlation needs.
    """
    if inbound and _REQUEST_ID_RE.match(inbound):
        return inbound
    return uuid.uuid4().hex[:16]


class ServiceError(Exception):
    """A client-visible failure with its HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class TextResponse:
    """A plain-text endpoint body carrying its own content type.

    Endpoints normally return dicts that the HTTP layer serializes as
    JSON; the Prometheus exposition and the profiler's collapsed stacks
    are text formats, so those endpoints return one of these instead.
    """

    __slots__ = ("text", "content_type")

    def __init__(self, text: str,
                 content_type: str = "text/plain; charset=utf-8"):
        self.text = text
        self.content_type = content_type


def _require(payload: dict, key: str):
    if not isinstance(payload, dict) or key not in payload:
        raise ServiceError(400, f"missing required field {key!r}")
    return payload[key]


def _number(payload: dict, key: str) -> float:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(400, f"field {key!r} must be a number")
    return float(value)


def _number_array(payload: dict, key: str) -> np.ndarray:
    value = _require(payload, key)
    if not isinstance(value, list):
        raise ServiceError(400, f"field {key!r} must be a list of numbers")
    try:
        array = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError):
        raise ServiceError(
            400, f"field {key!r} must be a list of numbers"
        ) from None
    if array.ndim != 1:
        raise ServiceError(400, f"field {key!r} must be one-dimensional")
    return array


def _interval_dict(interval) -> dict:
    return {
        "low": interval.low,
        "high": interval.high,
        "closed_high": interval.closed_high,
    }


def _compile_for(model: ServedModel) -> CompiledScorer:
    """The default scorer provider: the in-process LRU-cached compile."""
    return compile_scorer(model.segmentation)


class PredictionService:
    """Endpoint logic over a :class:`ModelRegistry` (transport-free).

    ``batcher`` (a :class:`~repro.serve.batching.BatchQueue`) routes all
    scoring through the coalescing queue — shed (429) and drain (503)
    semantics come with it.  ``scorer_provider`` swaps where compiled
    scorers come from: the default compiles in process; worker processes
    inject a provider that attaches to the parent's shared-memory
    tables (:mod:`repro.serve.workers`).
    """

    def __init__(self, registry: ModelRegistry,
                 recent_span_limit: int = 64,
                 monitors: TrafficMonitors | None = None,
                 batcher: BatchQueue | None = None,
                 scorer_provider=None,
                 fleet_view=None):
        self.registry = registry
        self.started = perf_counter()
        #: Per-request root spans when tracing is enabled (ring buffer).
        self.recent_spans: deque[Span] = deque(maxlen=recent_span_limit)
        #: Per-model traffic monitors behind /stats (injectable for
        #: tests that need a fake clock or tighter windows).
        self.monitors = (
            monitors if monitors is not None else TrafficMonitors()
        )
        #: Optional request-coalescing queue (None scores inline).
        self.batcher = batcher
        self.scorer_for = (
            scorer_provider if scorer_provider is not None
            else _compile_for
        )
        #: Extra keys merged into /healthz (worker identity etc.); set
        #: once before serving starts, read-only afterwards.
        self.health_extra: dict = {}
        #: Zero-argument callable returning the latest published fleet
        #: document (or ``None``); serve workers plug in
        #: :meth:`repro.obs.fleet.FleetView.read`.  ``None`` means this
        #: process *is* the whole fleet (threaded server).
        self.fleet_view = fleet_view
        self._draining = threading.Event()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting scoring work; in-flight requests complete.

        New ``/predict``/``/predict_batch``/``/explain`` calls are
        refused with 503 from this point on; read-only endpoints keep
        answering so orchestrators can watch the drain.  Idempotent.
        """
        if not self._draining.is_set():
            logger.info("drain started: scoring endpoints now return 503")
        self._draining.set()

    # ------------------------------------------------------------------
    # Model resolution
    # ------------------------------------------------------------------
    def _resolve(self, payload: dict) -> ServedModel:
        key = _require(payload, "model")
        if not isinstance(key, str):
            raise ServiceError(400, "field 'model' must be a string")
        self.registry.maybe_refresh()
        try:
            return self.registry.resolve(key)
        except KeyError as error:
            raise ServiceError(404, str(error.args[0])) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self, payload: dict | None = None) -> dict:
        self.registry.maybe_refresh()
        return {
            "status": "draining" if self.draining else "ok",
            "models": len(self.registry),
            "uptime_seconds": perf_counter() - self.started,
            **self.health_extra,
        }

    def models(self, payload: dict | None = None) -> dict:
        self.registry.maybe_refresh()
        return {
            "models": [
                model.describe() for model in self.registry.models()
            ],
        }

    def metrics_snapshot(
            self, payload: dict | None = None) -> dict | TextResponse:
        fmt = (payload or {}).get("format", "json")
        if fmt not in ("json", "prometheus"):
            raise ServiceError(
                400, f"unknown metrics format {fmt!r}; "
                     "expected 'json' or 'prometheus'"
            )
        scope = (payload or {}).get("scope", "fleet")
        if scope not in ("fleet", "local"):
            raise ServiceError(
                400, f"unknown metrics scope {scope!r}; "
                     "expected 'fleet' or 'local'"
            )
        # Under the multi-process server every worker serves the
        # parent's published aggregate, so a scrape reports the same
        # fleet-wide totals no matter which worker answered it.  Falls
        # back to the process-local registry before the first publish
        # (and always under the threaded server, where this process is
        # the whole fleet).
        document = (
            self.fleet_view() if scope == "fleet"
            and self.fleet_view is not None else None
        )
        if document is not None:
            snapshot = document.get("aggregate", {})
            if fmt == "prometheus":
                return TextResponse(render_prometheus(snapshot),
                                    PROMETHEUS_CONTENT_TYPE)
            return {
                "enabled": True,
                "scope": "fleet",
                "generation": document.get("generation"),
                "metrics": snapshot,
            }
        if fmt == "prometheus":
            return TextResponse(render_registry(),
                                PROMETHEUS_CONTENT_TYPE)
        registry = metrics.active()
        return {
            "enabled": registry is not None,
            "scope": "local",
            "metrics": registry.snapshot() if registry is not None
            else {},
        }

    def profile(self, payload: dict | None = None) -> TextResponse:
        """Sample the whole process and return collapsed stacks."""
        raw = (payload or {}).get("seconds", 1.0)
        try:
            seconds = float(raw)
        except (TypeError, ValueError):
            raise ServiceError(
                400, f"field 'seconds' must be a number, got {raw!r}"
            ) from None
        if seconds <= 0:
            raise ServiceError(400, "field 'seconds' must be positive")
        collapsed = profile_for(min(seconds, MAX_PROFILE_SECONDS))
        return TextResponse(collapsed or "# no samples collected\n")

    def stats(self, payload: dict | None = None) -> dict:
        """Model observability: drift, coverage and out-of-range state
        per served model over the monitor's tumbling windows."""
        self.registry.maybe_refresh()
        served = self.registry.models()
        self.monitors.prune({model.model_id for model in served})
        return {
            "uptime_seconds": perf_counter() - self.started,
            "models": {
                model.name: self.monitors.for_model(model).stats()
                for model in served
            },
        }

    def fleet(self, payload: dict | None = None) -> dict:
        """The fleet lifecycle surface (parent-published document).

        Under the multi-process server this is the parent's last
        published document — per-worker pid, uptime, spawn generation,
        restart count, ack latency, drain state and counter totals —
        with snapshot/publish ages computed at read time.  The threaded
        server (and a worker before the first publish) reports itself
        as a single-member fleet in ``mode: "process"``.
        """
        document = (
            self.fleet_view() if self.fleet_view is not None else None
        )
        if document is None:
            return {
                "mode": "process",
                "status": "draining" if self.draining else "ok",
                "workers": {
                    "0": {
                        "pid": os.getpid(),
                        "worker": events.worker_identity(),
                        "spawn_generation": 0,
                        "restarts": 0,
                        "uptime_seconds": perf_counter() - self.started,
                        "draining": self.draining,
                    },
                },
            }
        now = time.time()  # wall-clock: ok (age of published telemetry)
        workers = {}
        for index, entry in document.get("workers", {}).items():
            entry = dict(entry)
            shipped = entry.get("last_snapshot_unix")
            entry["last_snapshot_age_seconds"] = (
                max(now - shipped, 0.0) if shipped is not None else None
            )
            workers[index] = entry
        published = document.get("published_unix")
        return {
            "mode": "fleet",
            "generation": document.get("generation"),
            "published_unix": published,
            "published_age_seconds": (
                max(now - published, 0.0) if published is not None
                else None
            ),
            "last_publish_seconds": document.get("last_publish_seconds"),
            "snapshots_absorbed": document.get("snapshots_absorbed"),
            "workers": workers,
        }

    def predict(self, payload: dict) -> dict:
        model = self._resolve(payload)
        x, y = _number(payload, "x"), _number(payload, "y")
        index = self._score_one(model, x, y, "predict")
        self._record_traffic(model, (x,), (y,), (index,))
        return self._prediction(model, index)

    @staticmethod
    def _prediction(model: ServedModel, index: int) -> dict:
        return {
            "model": model.model_id,
            "name": model.name,
            "in_segment": index >= 0,
            "segment": (
                model.segmentation.rhs_value if index >= 0 else None
            ),
            "rule": index if index >= 0 else None,
        }

    def predict_batch(self, payload: dict) -> dict:
        model = self._resolve(payload)
        x = _number_array(payload, "x")
        y = _number_array(payload, "y")
        if len(x) != len(y):
            raise ServiceError(
                400, f"x and y batches differ in length: "
                     f"{len(x)} vs {len(y)}"
            )
        indices = self._score_arrays(model, x, y, "predict_batch")
        self._record_traffic(model, x, y, indices)
        return {
            "model": model.model_id,
            "name": model.name,
            "count": len(x),
            "in_segment": (indices >= 0).tolist(),
            "rule": indices.tolist(),
        }

    def explain(self, payload: dict) -> dict:
        model = self._resolve(payload)
        x, y = _number(payload, "x"), _number(payload, "y")
        index = self._score_one(model, x, y, "explain")
        self._record_traffic(model, (x,), (y,), (index,))
        response = self._prediction(model, index)
        if index >= 0:
            rule = model.segmentation.rules[index]
            response["explanation"] = {
                "index": index,
                "text": str(rule),
                "x_attribute": rule.x_attribute,
                "y_attribute": rule.y_attribute,
                "x_interval": _interval_dict(rule.x_interval),
                "y_interval": _interval_dict(rule.y_interval),
                "support": rule.support,
                "confidence": rule.confidence,
            }
        else:
            response["explanation"] = None
        return response

    def _score_one(self, model: ServedModel, x: float, y: float,
                   endpoint: str) -> int:
        indices = self._score_arrays(
            model,
            np.asarray([x], dtype=np.float64),
            np.asarray([y], dtype=np.float64),
            endpoint,
        )
        return int(indices[0])

    def _score_arrays(self, model: ServedModel, x_values: np.ndarray,
                      y_values: np.ndarray,
                      endpoint: str) -> np.ndarray:
        """Score a batch directly or through the coalescing queue.

        Maps the scoring-path failure modes to their HTTP statuses:
        invalid input 400, queue full 429 (counted in
        ``serve.shed_total{endpoint}``), draining 503.
        """
        scorer = self.scorer_for(model)
        try:
            if self.batcher is None:
                return scorer.score_batch(x_values, y_values)
            return self.batcher.submit(scorer, x_values, y_values)
        except ScoringError as error:  # NaN input
            raise ServiceError(400, str(error)) from None
        except QueueFullError as error:
            metrics.inc("serve.shed_total", labels={"endpoint": endpoint})
            events.emit("shed", endpoint=endpoint, model=model.name)
            raise ServiceError(429, str(error)) from None
        except DrainingError as error:
            raise ServiceError(503, str(error)) from None

    def _record_traffic(self, model: ServedModel, x_values, y_values,
                        rule_indices) -> None:
        """Feed a scored request to the model's traffic monitor.

        Monitoring is bookkeeping: a failure here is logged and
        swallowed so it can never turn a served prediction into a 500.
        """
        try:
            self.monitors.for_model(model).record(
                x_values, y_values, rule_indices
            )
        except Exception:
            logger.exception(
                "traffic monitor recording failed for %s", model.name
            )

    # ------------------------------------------------------------------
    # Instrumented dispatch (shared by HTTP and tests)
    # ------------------------------------------------------------------
    def dispatch(self, endpoint: str, payload: dict | None,
                 ) -> tuple[int, dict | TextResponse]:
        """Run one endpoint with metrics + an optional request span.

        Returns ``(status, body)``; service errors become their status
        with an ``{"error": ...}`` body, unexpected errors a 500.

        The request latency and error metrics are emitted from the
        innermost ``finally`` so that a failure in the *bookkeeping*
        itself (span ring buffer, event sink) can never lose the
        observation — they are logged and swallowed instead.
        """
        handler = _ENDPOINTS.get(endpoint)
        if handler is None:
            return 404, {"error": f"no such endpoint {endpoint!r}"}
        metrics.inc("serve.requests")
        metrics.inc(f"serve.requests_{endpoint}")
        started = perf_counter()
        span = (
            Span(f"serve.{endpoint}") if tracing.enabled() else None
        )
        if span is not None:
            span.__enter__()
        status = 500
        try:
            if (endpoint in _SCORING_ENDPOINTS
                    and self._draining.is_set()):
                raise ServiceError(
                    503, "server is draining; no new scoring work "
                         "accepted"
                )
            body = handler(self, payload)
            status = 200
            return status, body
        except ServiceError as error:
            status = error.status
            return status, {"error": error.message}
        except Exception:
            logger.exception("serve.%s failed", endpoint)
            return 500, {"error": "internal server error"}
        finally:
            elapsed = perf_counter() - started
            try:
                if span is not None:
                    span.set("status", status)
                    span.__exit__(None, None, None)
                    self.recent_spans.append(span)
                events.emit("request", endpoint=endpoint,
                            status=status, seconds=elapsed)
            except Exception:
                logger.exception(
                    "request bookkeeping failed for serve.%s", endpoint
                )
            finally:
                if status >= 400:
                    metrics.inc("serve.request_errors",
                                labels={"endpoint": endpoint})
                metrics.observe("serve.request_seconds", elapsed,
                                labels={"endpoint": endpoint})


#: The endpoints refused with 503 while draining (read-only endpoints
#: keep answering so orchestrators can watch the drain finish).
_SCORING_ENDPOINTS = frozenset({"predict", "predict_batch", "explain"})

#: Endpoint name -> bound-method dispatch table (GET entries take an
#: ignored payload so the dispatch signature is uniform).
_ENDPOINTS = {
    "healthz": PredictionService.healthz,
    "models": PredictionService.models,
    "metrics": PredictionService.metrics_snapshot,
    "stats": PredictionService.stats,
    "fleet": PredictionService.fleet,
    "profile": PredictionService.profile,
    "predict": PredictionService.predict,
    "predict_batch": PredictionService.predict_batch,
    "explain": PredictionService.explain,
}

_GET_ROUTES = {
    "/healthz": "healthz",
    "/models": "models",
    "/metrics": "metrics",
    "/stats": "stats",
    "/fleet": "fleet",
    "/debug/profile": "profile",
}

_POST_ROUTES = {
    "/predict": "predict",
    "/predict_batch": "predict_batch",
    "/explain": "explain",
}


class PredictionHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front for a :class:`PredictionService`."""

    # Responses go out as two small sends (header block, then body);
    # with Nagle on, the second waits for the first's ACK — a ~40ms
    # stall per request on keep-alive connections.
    disable_nagle_algorithm = True

    server: "PredictionServer"
    protocol_version = "HTTP/1.1"

    #: Set per request before routing; echoed by :meth:`_send`.
    _request_id: str | None = None

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        token = self._begin_request()
        try:
            path, _, query = self.path.partition("?")
            endpoint = _GET_ROUTES.get(path)
            if endpoint is None:
                self._send(404, {"error": f"no such path {path!r}"})
                return
            payload = {
                key: values[-1]
                for key, values in parse_qs(query).items()
            } if query else {}
            if endpoint == "metrics" and "format" not in payload:
                # Content negotiation: a Prometheus scraper asks for
                # the text format; JSON stays the default otherwise.
                accept = self.headers.get("Accept", "")
                if "text/plain" in accept or "openmetrics" in accept:
                    payload["format"] = "prometheus"
            status, body = self.server.service.dispatch(
                endpoint, payload or None
            )
            self._send(status, body)
        finally:
            events.reset_request_id(token)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        token = self._begin_request()
        try:
            endpoint = _POST_ROUTES.get(self.path)
            if endpoint is None:
                self._send(404,
                           {"error": f"no such path {self.path!r}"})
                return
            try:
                payload = self._read_json()
            except ServiceError as error:
                self._send(error.status, {"error": error.message})
                return
            status, body = self.server.service.dispatch(
                endpoint, payload
            )
            self._send(status, body)
        finally:
            events.reset_request_id(token)

    def _begin_request(self):
        """Assign this request's id and bind it to the handler context.

        An inbound ``X-Arcs-Request-Id`` (one log-safe token) is
        honoured so upstream proxies can thread their own ids; anything
        else gets a fresh random id.  Binding through
        :func:`repro.obs.events.set_request_id` is what stamps the same
        id onto every event the request emits (access log, drift
        alerts, sheds); the caller resets the returned token in its
        ``finally``.
        """
        self._request_id = _request_id_for(
            self.headers.get(REQUEST_ID_HEADER)
        )
        return events.set_request_id(self._request_id)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "empty request body; send JSON")
        try:
            payload = json.loads(raw)
        except ValueError:
            raise ServiceError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def _send(self, status: int, body: dict | TextResponse) -> None:
        if isinstance(body, TextResponse):
            data = body.text.encode("utf-8")
            content_type = body.content_type
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self._request_id is not None:
            self.send_header(REQUEST_ID_HEADER, self._request_id)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # BaseHTTPRequestHandler prints to stderr; route through the
        # library's logging convention instead.
        logger.info("%s %s", self.address_string(), format % args)


class PredictionServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`PredictionService`.

    Thread-per-connection with daemon threads: an in-flight request
    finishes against the model snapshot it resolved, while
    ``shutdown()`` stops accepting new work.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: PredictionService):
        super().__init__(address, PredictionHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, CLI)."""
        thread = threading.Thread(
            target=self.serve_forever, name="arcs-serve", daemon=True
        )
        thread.start()
        return thread
