"""Compiling segmentations into O(1)-per-tuple prediction tables.

A fitted :class:`~repro.core.segmentation.Segmentation` is a handful of
axis-aligned value-space rectangles.  Answering "which segment is this
tuple in?" by testing every rule per request is fine for one query but
wasteful for serving: the rectangles never change between queries, so
the rule set can be *compiled* once into a dense lookup table and every
prediction becomes two ``searchsorted`` calls plus one 2-D gather.

The compilation follows the same convention as
:meth:`repro.binning.strategies.BinLayout.assign` (``searchsorted``
side-``right`` over a monotone edge array), with one refinement so
interval closedness matches :attr:`~repro.core.rules.Interval.closed_high`
*exactly*: every distinct interval endpoint becomes both a zero-width
**boundary position** and a bound of the **open cells** around it.  For
``m`` distinct x-endpoints there are ``2m + 1`` x-positions::

    position 2k     — the boundary value ``edges[k]`` itself
    position 2k + 1 — the open cell ``(edges[k], edges[k+1])``
    positions 2m-1, 2m — padding for out-of-range values (no rule)

Within an open cell no interval starts or ends, so whether a rule
covers the cell is decided by edge comparisons alone — no floating-point
midpoints anywhere.  A boundary value belongs to ``[low, high)`` or
``[low, high]`` per the rule's own ``closed_high``.  The compiled table
stores, per (x-position, y-position), the index of the **first matching
rule** (segmentation order), or ``-1`` for "outside every rule" — which
is what ``/explain`` reports as the rule that fired.

Compilation is cached (:func:`compile_scorer`) so a server re-resolving
the same model per request compiles once; cache hits/misses land in the
``serve.scorer_cache_*`` counters.  The scalar twin lives in
:func:`repro.perf.reference.score_batch_scalar` and the two are held
bit-identical by ``tests/test_serve_properties.py`` and the ``scorer``
perf budget.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter

import numpy as np

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.obs import metrics

logger = logging.getLogger(__name__)

__all__ = [
    "CompiledScorer",
    "ScoringError",
    "compile_scorer",
    "scorer_cache_clear",
]


class ScoringError(ValueError):
    """A batch that cannot be scored (NaN input, mismatched shapes).

    Subclasses :class:`ValueError` so existing callers — the prediction
    service maps it to HTTP 400 — keep working; raising the library
    type is the serving layer's exception policy.
    """


def _endpoint_edges(intervals: list[Interval]) -> np.ndarray:
    """The sorted distinct endpoints of the intervals (may be empty)."""
    points = [iv.low for iv in intervals] + [iv.high for iv in intervals]
    return np.unique(np.asarray(points, dtype=np.float64))


def _position_cover(edges: np.ndarray,
                    intervals: list[Interval]) -> np.ndarray:
    """``(n_rules, 2m+1)`` booleans: rule r covers position p.

    Endpoints are drawn from the intervals themselves, so the
    ``searchsorted`` lookups below hit exact floats — cell coverage is
    decided purely by edge comparisons.
    """
    m = len(edges)
    cover = np.zeros((len(intervals), 2 * m + 1), dtype=bool)
    for r, interval in enumerate(intervals):
        lo = int(np.searchsorted(edges, interval.low))
        hi = int(np.searchsorted(edges, interval.high))
        # Boundary values edges[lo..hi-1] satisfy low <= v < high; the
        # high endpoint itself belongs only to a closed interval.
        cover[r, 2 * lo:2 * hi:2] = True
        if interval.closed_high:
            cover[r, 2 * hi] = True
        # Open cells (edges[k], edges[k+1]) for k in lo..hi-1 lie
        # strictly inside [low, high) regardless of closedness.
        cover[r, 2 * lo + 1:2 * hi:2] = True
    return cover


def _positions(edges: np.ndarray, values: np.ndarray,
               attribute: str) -> np.ndarray:
    """Map values to position indices (see the module docstring).

    Mirrors :meth:`BinLayout.assign`'s side-``right`` convention and its
    NaN policy: a NaN would otherwise land silently in a padding slot.
    """
    values = np.asarray(values, dtype=np.float64)
    if np.isnan(values).any():
        raise ScoringError(
            f"column {attribute!r} contains NaN; clean the data "
            "before scoring"
        )
    m = len(edges)
    if m == 0:  # empty segmentation: the single padding position
        return np.zeros(values.shape, dtype=np.int64)
    j = np.searchsorted(edges, values, side="right") - 1
    clamped = np.clip(j, 0, m - 1)
    on_edge = edges[clamped] == values
    positions = np.where(on_edge, 2 * clamped, 2 * clamped + 1)
    # Below edges[0] -> padding slot 2m; above edges[-1] falls out as
    # position 2m-1 (also padding) because the top value is not an edge.
    return np.where(j < 0, 2 * m, positions)


@dataclass(frozen=True, eq=False)  # eq=False: arrays compare by identity
class CompiledScorer:
    """An immutable, thread-safe prediction table for one segmentation.

    Built by :func:`compile_scorer`; every array is read-only after
    construction, so one instance can serve concurrent requests.
    """

    segmentation: Segmentation
    x_edges: np.ndarray
    y_edges: np.ndarray
    table: np.ndarray  # (2m+1, 2n+1) int32 of first-rule indices, -1 none

    @property
    def n_rules(self) -> int:
        return len(self.segmentation.rules)

    def score_batch(self, x_values, y_values) -> np.ndarray:
        """First-matching-rule index per point (``-1`` = no rule).

        Vectorised: two ``searchsorted`` calls and one gather, O(log m)
        per tuple with tiny constants — the serving hot path.
        """
        x_positions = _positions(
            self.x_edges, x_values, self.segmentation.x_attribute
        )
        y_positions = _positions(
            self.y_edges, y_values, self.segmentation.y_attribute
        )
        if x_positions.shape != y_positions.shape:
            raise ScoringError(
                f"x and y batches differ in shape: "
                f"{x_positions.shape} vs {y_positions.shape}"
            )
        result = self.table[x_positions, y_positions]
        metrics.inc("serve.tuples_scored", int(result.size))
        metrics.observe("serve.batch_size", int(result.size))
        return result

    def score(self, x: float, y: float) -> int:
        """Single-tuple prediction: the rule index or ``-1``."""
        return int(self.score_batch(
            np.asarray([x], dtype=np.float64),
            np.asarray([y], dtype=np.float64),
        )[0])

    def in_segment(self, x_values, y_values) -> np.ndarray:
        """Boolean membership — ``Segmentation.covers``, compiled."""
        return self.score_batch(x_values, y_values) >= 0

    def explain(self, x: float, y: float) -> ClusteredRule | None:
        """The rule that fired for the point, or ``None``."""
        index = self.score(x, y)
        return None if index < 0 else self.segmentation.rules[index]


def _compile(segmentation: Segmentation) -> CompiledScorer:
    started = perf_counter()
    rules = list(segmentation.rules)
    x_edges = _endpoint_edges([rule.x_interval for rule in rules])
    y_edges = _endpoint_edges([rule.y_interval for rule in rules])
    table = np.full(
        (2 * len(x_edges) + 1, 2 * len(y_edges) + 1), -1, dtype=np.int32
    )
    x_cover = _position_cover(x_edges, [r.x_interval for r in rules])
    y_cover = _position_cover(y_edges, [r.y_interval for r in rules])
    # Paint in reverse so the lowest (first-matching) rule index wins
    # wherever rules overlap.
    for r in range(len(rules) - 1, -1, -1):
        table[np.ix_(x_cover[r], y_cover[r])] = r
    for array in (x_edges, y_edges, table):
        array.setflags(write=False)
    duration = perf_counter() - started
    metrics.observe("serve.compile_seconds", duration)
    logger.debug(
        "compiled scorer: %d rules -> %s table in %.4fs",
        len(rules), table.shape, duration,
    )
    return CompiledScorer(
        segmentation=segmentation, x_edges=x_edges, y_edges=y_edges,
        table=table,
    )


_compile_cached = lru_cache(maxsize=128)(_compile)


def compile_scorer(segmentation: Segmentation) -> CompiledScorer:
    """The cached compile step: same segmentation, same scorer object.

    ``Segmentation`` is a frozen dataclass of frozen parts, so it keys
    the LRU cache directly; a registry hot-reload produces a *new*
    segmentation object and therefore a fresh compile.
    """
    before = _compile_cached.cache_info().hits
    scorer = _compile_cached(segmentation)
    if _compile_cached.cache_info().hits > before:
        metrics.inc("serve.scorer_cache_hits")
    else:
        metrics.inc("serve.scorer_cache_misses")
    return scorer


def scorer_cache_clear() -> None:
    """Drop every compiled scorer (tests, long-lived processes)."""
    _compile_cached.cache_clear()
