"""The model registry: persisted segmentations, served by id or name.

A *model directory* is a flat directory of segmentation JSON artefacts
written by :func:`repro.persistence.save_segmentation` — the layout a
``fit --save-segmentation models/groupA.json`` workflow produces
naturally.  The registry:

* loads every ``*.json`` in the directory through the persistence
  layer, so format versioning is enforced in exactly one place;
* assigns each model a **content-hash id** (sha256 of the artefact
  bytes, truncated to 12 hex chars) — two directories holding the same
  bytes serve the same ids, and an edited artefact is a *different*
  model, never a silent mutation of an existing one;
* supports **atomic hot reload**: :meth:`refresh` re-stats the
  directory and swaps in a freshly built snapshot in a single reference
  assignment.  In-flight requests that already resolved a
  :class:`ServedModel` keep scoring against the object they hold; only
  *new* resolutions see the new snapshot.  Requests are never dropped
  mid-flight by a reload.

Startup is strict — an invalid artefact fails :meth:`load` loudly, per
the persistence layer's reject-unknown-formats policy.  Once serving,
:meth:`refresh` degrades per file: a freshly corrupted artefact is
logged, counted (``serve.reload_errors``) and its previous healthy
version kept, so one bad deploy cannot take down every model.
"""

from __future__ import annotations

import hashlib
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.core.segmentation import Segmentation
from repro.data.summary import ReferenceProfile
from repro.obs import metrics
from repro.persistence import (
    PersistenceError,
    load_segmentation,
    segmentation_metadata,
    segmentation_reference,
)

logger = logging.getLogger(__name__)

__all__ = [
    "ModelDirectoryError",
    "ModelNotFoundError",
    "ModelRegistry",
    "ServedModel",
]


class ModelDirectoryError(NotADirectoryError):
    """The configured model directory does not exist.

    Subclasses :class:`NotADirectoryError` so callers catching the
    builtin (or generic :class:`OSError`) keep working; raising the
    library type is the serving layer's exception policy (enforced by
    the ``exception-policy`` checker of ``tools.analyze``).
    """


class ModelNotFoundError(KeyError):
    """No served model under the requested id or name.

    Subclasses :class:`KeyError` for compatibility with callers of
    :meth:`ModelRegistry.resolve` that treat the registry as a mapping.
    """


@dataclass(frozen=True, eq=False)
class ServedModel:
    """One loaded segmentation plus its serving identity and provenance."""

    model_id: str           # content hash, the canonical identity
    name: str               # file stem, the human-friendly alias
    path: Path
    segmentation: Segmentation
    metadata: dict          # {"library_version", "created_unix"} if saved
    loaded_at: float        # wall-clock, for /models display
    fingerprint: tuple = field(repr=False)  # (mtime_ns, size) staleness key
    #: Training occupancy for drift scoring; None for artefacts saved
    #: before reference profiles existed (drift then reads unavailable).
    reference: ReferenceProfile | None = field(default=None, repr=False)

    def describe(self) -> dict:
        """The JSON-ready ``/models`` entry for this model."""
        segmentation = self.segmentation
        return {
            "id": self.model_id,
            "name": self.name,
            "path": str(self.path),
            "x_attribute": segmentation.x_attribute,
            "y_attribute": segmentation.y_attribute,
            "rhs_attribute": segmentation.rhs_attribute,
            "rhs_value": segmentation.rhs_value,
            "n_rules": len(segmentation),
            "loaded_at": self.loaded_at,
            "metadata": dict(self.metadata),
            "reference_profile": self.reference is not None,
        }


def _content_id(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()[:12]


def _load_model(path: Path) -> ServedModel:
    raw = path.read_bytes()
    segmentation = load_segmentation(path)
    return ServedModel(
        model_id=_content_id(raw),
        name=path.stem,
        path=path,
        segmentation=segmentation,
        metadata=segmentation_metadata(path),
        loaded_at=time.time(),  # wall-clock: ok (display timestamp)
        fingerprint=_fingerprint(path),
        reference=segmentation_reference(path),
    )


def _fingerprint(path: Path) -> tuple:
    stat = path.stat()
    return (stat.st_mtime_ns, stat.st_size)


class ModelRegistry:
    """Thread-safe registry over a directory of segmentation artefacts.

    Readers resolve against an immutable snapshot dict; :meth:`refresh`
    builds a replacement and installs it with one assignment (atomic
    under the GIL), so lookups never see a half-built registry and no
    read path takes a lock.
    """

    def __init__(self, directory: str | Path,
                 refresh_interval: float = 1.0):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise ModelDirectoryError(
                f"model directory {self.directory} does not exist"
            )
        #: Seconds between directory re-stats on the request path; 0
        #: re-checks on every request (tests), negative disables.
        self.refresh_interval = refresh_interval
        self._models: dict[Path, ServedModel] = {}
        self._by_key: dict[str, ServedModel] = {}
        self._last_check = float("-inf")

    # ------------------------------------------------------------------
    # Loading and refreshing
    # ------------------------------------------------------------------
    def load(self) -> "ModelRegistry":
        """Strict initial load: any invalid artefact raises."""
        models = {
            path: _load_model(path) for path in self._artefact_paths()
        }
        self._install(models)
        self._last_check = perf_counter()
        logger.info(
            "registry loaded %d model(s) from %s",
            len(models), self.directory,
        )
        return self

    def refresh(self) -> bool:
        """Re-scan the directory; returns whether anything changed.

        New and changed files are (re)loaded, deleted files dropped.  A
        file that fails to load keeps its previous healthy version (if
        any) and is counted in ``serve.reload_errors``.
        """
        changed = False
        next_models: dict[Path, ServedModel] = {}
        for path in self._artefact_paths():
            current = self._models.get(path)
            try:
                fingerprint = _fingerprint(path)
                if current is not None and (
                    current.fingerprint == fingerprint
                ):
                    next_models[path] = current
                    continue
                next_models[path] = _load_model(path)
                changed = True
                logger.info(
                    "registry %s %s as %s",
                    "reloaded" if current is not None else "loaded",
                    path.name, next_models[path].model_id,
                )
            except (OSError, PersistenceError) as error:
                metrics.inc("serve.reload_errors")
                logger.warning(
                    "registry: cannot (re)load %s (%s); %s",
                    path, error,
                    "keeping previous version" if current is not None
                    else "skipping",
                )
                if current is not None:
                    next_models[path] = current
        if set(next_models) != set(self._models):
            changed = True
        if changed:
            self._install(next_models)
            metrics.inc("serve.reloads")
        return changed

    def maybe_refresh(self) -> bool:
        """Rate-limited :meth:`refresh` for the request path."""
        if self.refresh_interval < 0:
            return False
        now = perf_counter()
        if now - self._last_check < self.refresh_interval:
            return False
        self._last_check = now
        return self.refresh()

    def _artefact_paths(self) -> list[Path]:
        return sorted(self.directory.glob("*.json"))

    def _install(self, models: dict[Path, ServedModel]) -> None:
        by_key: dict[str, ServedModel] = {}
        for model in models.values():
            by_key[model.model_id] = model
            # Names alias ids; a duplicated stem cannot occur within one
            # flat directory, so last-wins here is unreachable in
            # practice but harmless.
            by_key[model.name] = model
        # Two plain assignments; each is atomic and readers only use
        # _by_key, so a torn pair is never observable on the read path.
        self._models = models
        self._by_key = by_key
        metrics.set_gauge("serve.models_loaded", len(models))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def resolve(self, key: str) -> ServedModel:
        """A model by content-hash id or by file-stem name."""
        model = self._by_key.get(key)
        if model is None:
            raise ModelNotFoundError(
                f"no model {key!r}; serving "
                f"{sorted(m.name for m in self._models.values())}"
            )
        return model

    def models(self) -> list[ServedModel]:
        """The current snapshot, sorted by name."""
        return sorted(
            self._models.values(), key=lambda model: model.name
        )

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key
