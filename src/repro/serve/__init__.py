"""Serving: the consumption side of ARCS.

The pipeline's end product is a small set of clustered rules meant to be
*applied* — the paper's merchandising analyst wants "which segment is
this customer in?" answered per tuple, at traffic.  This subpackage is
that missing half, in three layers:

* :mod:`repro.serve.registry` — a :class:`ModelRegistry` over a
  directory of persisted segmentation artefacts: format validation via
  :mod:`repro.persistence`, content-hash model ids, atomic hot reload;
* :mod:`repro.serve.scorer` — :func:`compile_scorer` turns a
  segmentation into an immutable position-table
  (:class:`CompiledScorer`) with O(1)-per-tuple ``score`` and a
  vectorised ``score_batch``, bit-identical to the scalar reference in
  :mod:`repro.perf.reference`;
* :mod:`repro.serve.service` / :mod:`repro.serve.app` — a stdlib-only
  threaded HTTP service (``/predict``, ``/predict_batch``, ``/explain``,
  ``/models``, ``/healthz``, ``/metrics``, ``/stats``) instrumented
  through :mod:`repro.obs`;
* :mod:`repro.serve.monitor` — per-model :class:`TrafficMonitor` s that
  re-bin scored traffic into the training grid and score drift
  (PSI / Jensen-Shannon) against the artefact's reference profile,
  surfaced via ``GET /stats``, drift gauges and threshold events;
* :mod:`repro.serve.batching` — a :class:`BatchQueue` coalescing
  concurrent scoring calls into single ``score_batch`` gathers, with
  429 load shedding and a graceful drain;
* :mod:`repro.serve.workers` — the pre-fork
  :class:`MultiProcessServer`: N forked workers sharing one listening
  socket and attaching compiled scorer tables zero-copy from
  ``multiprocessing.shared_memory`` (``arcs serve --workers N``).

CLI: ``arcs serve <model-dir>`` and ``arcs score <model> --input csv``.
Full reference: ``docs/serving.md``.
"""

from repro.serve.app import (
    create_multiprocess_server,
    create_server,
    drain_server,
    run_multiprocess_server,
    run_server,
)
from repro.serve.batching import (
    BatchingError,
    BatchQueue,
    DrainingError,
    QueueFullError,
)
from repro.serve.monitor import TrafficMonitor, TrafficMonitors
from repro.serve.registry import (
    ModelDirectoryError,
    ModelNotFoundError,
    ModelRegistry,
    ServedModel,
)
from repro.serve.scorer import (
    CompiledScorer,
    ScoringError,
    compile_scorer,
    scorer_cache_clear,
)
from repro.serve.service import (
    PredictionServer,
    PredictionService,
    ServiceError,
)
from repro.serve.workers import (
    MultiProcessServer,
    SharedScorerCache,
    WorkerConfig,
    WorkerError,
)

__all__ = [
    "BatchQueue",
    "BatchingError",
    "CompiledScorer",
    "DrainingError",
    "ModelDirectoryError",
    "ModelNotFoundError",
    "ModelRegistry",
    "MultiProcessServer",
    "PredictionServer",
    "PredictionService",
    "QueueFullError",
    "ScoringError",
    "ServedModel",
    "ServiceError",
    "SharedScorerCache",
    "TrafficMonitor",
    "TrafficMonitors",
    "WorkerConfig",
    "WorkerError",
    "compile_scorer",
    "create_multiprocess_server",
    "create_server",
    "drain_server",
    "run_multiprocess_server",
    "run_server",
    "scorer_cache_clear",
]
