"""Assembling and running a prediction server (the ``arcs serve`` glue).

:func:`create_server` wires directory -> registry -> service -> HTTP
server and returns the bound (but not yet serving) server, so callers
control the serving loop: the CLI blocks in :func:`run_server`, tests
call :meth:`~repro.serve.service.PredictionServer.serve_in_background`
and tear down with ``shutdown()``/``server_close()``.

:func:`create_multiprocess_server` is the ``--workers N`` counterpart:
it builds a :class:`~repro.serve.workers.MultiProcessServer` (pre-fork
workers over shared-memory scorers) from the same knobs plus a
:class:`~repro.serve.workers.WorkerConfig`; the CLI blocks in
:func:`run_multiprocess_server`, which installs SIGTERM/SIGINT handlers
that trigger a graceful drain.

Binding to port ``0`` asks the OS for a free port — the bound address is
on ``server.server_address`` (and ``server.url``), which is how the
test-suite and smoke jobs avoid port collisions.
"""

from __future__ import annotations

import logging
import signal
import threading
from pathlib import Path

from repro.serve.batching import BatchQueue
from repro.serve.monitor import (
    DEFAULT_WINDOW_COUNT,
    DEFAULT_WINDOW_SECONDS,
    TrafficMonitors,
)
from repro.serve.registry import ModelRegistry
from repro.serve.service import PredictionServer, PredictionService
from repro.serve.workers import MultiProcessServer, WorkerConfig

logger = logging.getLogger(__name__)

__all__ = [
    "create_multiprocess_server",
    "create_server",
    "drain_server",
    "run_multiprocess_server",
    "run_server",
]


def create_server(model_dir: str | Path, host: str = "127.0.0.1",
                  port: int = 8799,
                  refresh_interval: float = 1.0,
                  window_seconds: float = DEFAULT_WINDOW_SECONDS,
                  window_count: int = DEFAULT_WINDOW_COUNT,
                  batch_window_seconds: float = 0.0,
                  max_batch: int | None = None,
                  queue_depth: int | None = None,
                  ) -> PredictionServer:
    """Build a ready-to-serve :class:`PredictionServer`.

    The registry load is strict: an invalid artefact in ``model_dir``
    fails startup loudly rather than serving a partial catalogue.
    ``window_seconds``/``window_count`` configure the traffic monitor's
    tumbling drift windows behind ``GET /stats``.  A positive
    ``batch_window_seconds`` routes scoring through a
    :class:`~repro.serve.batching.BatchQueue` (coalesced gathers, 429
    load shedding at ``queue_depth``); zero keeps the direct path.
    """
    registry = ModelRegistry(
        model_dir, refresh_interval=refresh_interval
    ).load()
    batcher = None
    if batch_window_seconds > 0:
        kwargs: dict = {"max_delay_seconds": batch_window_seconds}
        if max_batch is not None:
            kwargs["max_batch"] = max_batch
        if queue_depth is not None:
            kwargs["max_depth"] = queue_depth
        batcher = BatchQueue(**kwargs)
    service = PredictionService(
        registry,
        monitors=TrafficMonitors(window_seconds=window_seconds,
                                 window_count=window_count),
        batcher=batcher,
    )
    server = PredictionServer((host, port), service)
    logger.info(
        "prediction server bound to %s serving %d model(s) from %s",
        server.url, len(registry), model_dir,
    )
    return server


def create_multiprocess_server(model_dir: str | Path,
                               host: str = "127.0.0.1",
                               port: int = 8799,
                               workers: int = 2,
                               refresh_interval: float = 1.0,
                               config: WorkerConfig | None = None,
                               ) -> MultiProcessServer:
    """Build (but don't start) the pre-fork multi-worker server."""
    return MultiProcessServer(
        model_dir, host=host, port=port, workers=workers,
        refresh_interval=refresh_interval, config=config,
    )


def drain_server(server: PredictionServer,
                 timeout: float = 30.0) -> None:
    """Gracefully drain a threaded server: 503 new work, finish old.

    Blocks until the serving loop has stopped (or ``timeout``), so it
    must run on a thread that is *not* inside ``serve_forever`` —
    ``shutdown()`` only returns once that loop notices the request.
    :func:`run_server`'s signal handler therefore dispatches this to a
    helper thread; Python delivers signals to the main thread, which
    is exactly the one blocked in ``serve_forever``.
    """
    service = server.service
    service.begin_drain()
    if service.batcher is not None:
        service.batcher.close()
    stopper = threading.Thread(target=server.shutdown,
                               name="arcs-drain", daemon=True)
    stopper.start()
    stopper.join(timeout)


def run_server(server: PredictionServer) -> None:
    """Serve until interrupted or SIGTERMed; always releases the socket.

    SIGTERM triggers a graceful drain: in-flight requests complete, new
    scoring work is refused with 503, the batch queue (if any) flushes,
    and ``server_close()`` joins the handler threads.
    """
    def _drain_async(signum: int, frame: object) -> None:
        logger.info("signal %d received; draining", signum)
        threading.Thread(target=drain_server, args=(server,),
                         name="arcs-drain", daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _drain_async)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt received, shutting down")
        drain_server(server)
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()


def run_multiprocess_server(server: MultiProcessServer) -> None:
    """Start the worker pool and block until drained.

    SIGTERM and SIGINT both trigger :meth:`MultiProcessServer.drain`
    (run on a helper thread so the signal handler returns immediately).
    """
    def _drain_async(signum: int, frame: object) -> None:
        logger.info("signal %d received; draining worker pool", signum)
        threading.Thread(target=server.drain, name="arcs-drain",
                         daemon=True).start()

    previous_term = signal.signal(signal.SIGTERM, _drain_async)
    previous_int = signal.signal(signal.SIGINT, _drain_async)
    try:
        server.start()
        server.wait()
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        server.drain()
