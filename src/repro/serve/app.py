"""Assembling and running a prediction server (the ``arcs serve`` glue).

:func:`create_server` wires directory -> registry -> service -> HTTP
server and returns the bound (but not yet serving) server, so callers
control the serving loop: the CLI blocks in :func:`run_server`, tests
call :meth:`~repro.serve.service.PredictionServer.serve_in_background`
and tear down with ``shutdown()``/``server_close()``.

Binding to port ``0`` asks the OS for a free port — the bound address is
on ``server.server_address`` (and ``server.url``), which is how the
test-suite and smoke jobs avoid port collisions.
"""

from __future__ import annotations

import logging
from pathlib import Path

from repro.serve.monitor import (
    DEFAULT_WINDOW_COUNT,
    DEFAULT_WINDOW_SECONDS,
    TrafficMonitors,
)
from repro.serve.registry import ModelRegistry
from repro.serve.service import PredictionServer, PredictionService

logger = logging.getLogger(__name__)

__all__ = ["create_server", "run_server"]


def create_server(model_dir: str | Path, host: str = "127.0.0.1",
                  port: int = 8799,
                  refresh_interval: float = 1.0,
                  window_seconds: float = DEFAULT_WINDOW_SECONDS,
                  window_count: int = DEFAULT_WINDOW_COUNT,
                  ) -> PredictionServer:
    """Build a ready-to-serve :class:`PredictionServer`.

    The registry load is strict: an invalid artefact in ``model_dir``
    fails startup loudly rather than serving a partial catalogue.
    ``window_seconds``/``window_count`` configure the traffic monitor's
    tumbling drift windows behind ``GET /stats``.
    """
    registry = ModelRegistry(
        model_dir, refresh_interval=refresh_interval
    ).load()
    service = PredictionService(
        registry,
        monitors=TrafficMonitors(window_seconds=window_seconds,
                                 window_count=window_count),
    )
    server = PredictionServer((host, port), service)
    logger.info(
        "prediction server bound to %s serving %d model(s) from %s",
        server.url, len(registry), model_dir,
    )
    return server


def run_server(server: PredictionServer) -> None:
    """Serve until interrupted; always releases the socket."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt received, shutting down")
    finally:
        server.server_close()
