"""Live traffic monitoring: drift, coverage and out-of-range tracking.

The serving layer's *model* observability (as opposed to the process
telemetry in :mod:`repro.obs`): every successfully scored
``/predict``/``/predict_batch``/``/explain`` input is re-binned into
the model's **training** grid — the exact bin edges persisted in the
artefact's reference profile — and accumulated into a ring of tumbling
:class:`~repro.obs.drift.TrafficWindow` s.  Each window snapshot is
scored against the training occupancy with PSI and Jensen-Shannon
divergence (:mod:`repro.obs.drift`), per LHS attribute and for the
joint grid.

Window semantics: the *current* window accumulates until
``window_seconds`` have elapsed since it opened, then the first event
after expiry (a scored request or a ``/stats`` read) closes it into the
ring and opens a fresh one; the ring keeps the last ``window_count``
closed windows, and ``recent`` aggregates ring plus current.  Idle gaps
do not synthesise empty windows.  Gauges
(``serve.drift_psi{attr,model}`` etc.) and drift-threshold events are
refreshed whenever stats are computed — on every ``/stats`` read and at
each window rotation — so a Prometheus-only consumer still sees drift
move without ever touching ``/stats``.

Concurrency: handler threads share one :class:`TrafficMonitor` per
model.  All mutable state (the current window, the ring, the alert
map) is guarded by ``self._lock``; readers get deep copies and compute
divergences outside the lock.  Models resolve to monitors by content
hash, so a hot reload that changes an artefact starts a fresh monitor
— mixing windows across two different models would make drift
meaningless.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from time import perf_counter

import numpy as np

from repro.binning.strategies import BinLayout
from repro.data.summary import ReferenceProfile
from repro.obs import events, metrics
from repro.obs.drift import (
    DEFAULT_PSI_ALERT,
    TrafficWindow,
    js_divergence,
    psi,
)
from repro.serve.registry import ServedModel

logger = logging.getLogger(__name__)

__all__ = [
    "MonitorConfigError",
    "TrafficMonitor",
    "TrafficMonitors",
]


class MonitorConfigError(ValueError):
    """Invalid monitor configuration (window length or count).

    Subclasses :class:`ValueError` per the serving layer's exception
    policy, so callers validating configuration generically keep
    working.
    """

#: Default tumbling-window length, seconds.
DEFAULT_WINDOW_SECONDS = 60.0

#: Default number of closed windows retained in the ring.
DEFAULT_WINDOW_COUNT = 4


class TrafficMonitor:
    """Windowed traffic statistics for one served model (thread-safe)."""

    def __init__(self, *, model_id: str, name: str, x_attribute: str,
                 y_attribute: str, n_rules: int,
                 reference: ReferenceProfile | None = None,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 window_count: int = DEFAULT_WINDOW_COUNT,
                 psi_alert: float = DEFAULT_PSI_ALERT,
                 clock=perf_counter):
        if window_seconds <= 0:
            raise MonitorConfigError("window_seconds must be positive")
        if window_count < 1:
            raise MonitorConfigError("window_count must be at least 1")
        self.model_id = model_id
        self.name = name
        self.x_attribute = x_attribute
        self.y_attribute = y_attribute
        self.n_rules = int(n_rules)
        self.reference = reference
        self.window_seconds = float(window_seconds)
        self.window_count = int(window_count)
        self.psi_alert = float(psi_alert)
        self._clock = clock
        if reference is not None and reference.n_total > 0:
            self._x_layout = BinLayout(x_attribute, reference.x_edges)
            self._y_layout = BinLayout(y_attribute, reference.y_edges)
            self._n_x, self._n_y = reference.n_x, reference.n_y
        else:  # old artefact without a reference: coverage only
            self._x_layout = self._y_layout = None
            self._n_x = self._n_y = 0
        self._lock = threading.Lock()
        self._ring: deque[TrafficWindow] = deque(maxlen=self.window_count)
        self._current = TrafficWindow(
            self._n_x, self._n_y, self.n_rules, opened=clock()
        )
        self._alerts: dict[str, bool] = {}

    @property
    def has_reference(self) -> bool:
        return self._x_layout is not None

    # ------------------------------------------------------------------
    # Recording (request path)
    # ------------------------------------------------------------------
    def record(self, x_values, y_values, rule_indices) -> None:
        """Accumulate one successfully scored request.

        ``x_values``/``y_values`` are the (NaN-free — the scorer already
        rejected NaN) input coordinates, ``rule_indices`` the per-point
        rule indices the scorer returned (``-1`` for the fallback).
        """
        x_bins = y_bins = None
        out_x = out_y = 0
        if self.has_reference:
            x = np.asarray(x_values, dtype=np.float64)
            y = np.asarray(y_values, dtype=np.float64)
            x_edges = self._x_layout.edges
            y_edges = self._y_layout.edges
            # Out-of-range is detected before assignment: .assign()
            # clamps, which is what we want for the drift comparison,
            # but the clamp must not hide range escapes.
            out_x = int(np.count_nonzero(
                (x < x_edges[0]) | (x > x_edges[-1])
            ))
            out_y = int(np.count_nonzero(
                (y < y_edges[0]) | (y > y_edges[-1])
            ))
            x_bins = self._x_layout.assign(x)
            y_bins = self._y_layout.assign(y)
        now = self._clock()
        rotated = False
        with self._lock:
            if now - self._current.opened >= self.window_seconds:
                self._ring.append(self._current)
                self._current = TrafficWindow(
                    self._n_x, self._n_y, self.n_rules, opened=now
                )
                rotated = True
            self._current.add(x_bins, y_bins, rule_indices, out_x, out_y)
        if rotated:
            # Refresh gauges and alert state at the window boundary so
            # metrics-only consumers see drift move without /stats.
            self.stats()

    # ------------------------------------------------------------------
    # Reading (/stats path)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The JSON-ready monitoring block for this model.

        Also publishes the drift/coverage gauges and emits
        ``drift_alert`` events on PSI threshold crossings.
        """
        now = self._clock()
        with self._lock:
            if now - self._current.opened >= self.window_seconds:
                self._ring.append(self._current)
                self._current = TrafficWindow(
                    self._n_x, self._n_y, self.n_rules, opened=now
                )
            current = self._current.copy()
            retained = [window.copy() for window in self._ring]
        recent = TrafficWindow.merged(retained + [current])
        payload = {
            "model": self.name,
            "id": self.model_id,
            "x_attribute": self.x_attribute,
            "y_attribute": self.y_attribute,
            "window_seconds": self.window_seconds,
            "window_count": self.window_count,
            "windows_retained": len(retained),
            "psi_alert_threshold": self.psi_alert,
            "reference": self._reference_block(),
            "current": self._window_stats(current),
            "recent": self._window_stats(recent, include_counts=True),
        }
        self._publish(payload["recent"])
        return payload

    def _reference_block(self) -> dict:
        if not self.has_reference:
            return {"available": False}
        reference = self.reference
        return {
            "available": True,
            "n_total": reference.n_total,
            "grid": [reference.n_x, reference.n_y],
            "x_edges": reference.x_edges.tolist(),
            "y_edges": reference.y_edges.tolist(),
        }

    def _window_stats(self, window: TrafficWindow,
                      include_counts: bool = False) -> dict:
        stats = {
            "requests": window.requests,
            "points": window.points,
            "fallback_points": window.fallback_points,
            "coverage_fraction": window.coverage_fraction,
            "rule_hits": window.rule_hits[1:].tolist(),
            "out_of_range": None,
            "drift_psi": None,
            "drift_js": None,
        }
        if self.has_reference and window.points > 0:
            reference = self.reference
            stats["out_of_range"] = {
                self.x_attribute: window.out_of_range_x / window.points,
                self.y_attribute: window.out_of_range_y / window.points,
            }
            stats["drift_psi"] = {
                self.x_attribute: psi(reference.x_counts,
                                      window.x_counts),
                self.y_attribute: psi(reference.y_counts,
                                      window.y_counts),
                "joint": psi(reference.totals, window.totals),
            }
            stats["drift_js"] = {
                self.x_attribute: js_divergence(reference.x_counts,
                                                window.x_counts),
                self.y_attribute: js_divergence(reference.y_counts,
                                                window.y_counts),
                "joint": js_divergence(reference.totals, window.totals),
            }
        if include_counts and window.has_grid:
            stats["x_counts"] = window.x_counts.tolist()
            stats["y_counts"] = window.y_counts.tolist()
            stats["totals"] = window.totals.tolist()
        return stats

    def _publish(self, recent: dict) -> None:
        """Update gauges from a ``recent`` stats block and emit alert
        transitions."""
        coverage = recent["coverage_fraction"]
        if coverage is not None:
            metrics.set_gauge("serve.coverage_fraction", coverage,
                              labels={"model": self.name})
        drift_psi = recent["drift_psi"]
        if drift_psi is None:
            return
        for attr, value in drift_psi.items():
            metrics.set_gauge("serve.drift_psi", value,
                              labels={"attr": attr, "model": self.name})
        for attr, value in recent["drift_js"].items():
            metrics.set_gauge("serve.drift_js", value,
                              labels={"attr": attr, "model": self.name})
        for attr, fraction in recent["out_of_range"].items():
            metrics.set_gauge("serve.out_of_range", fraction,
                              labels={"attr": attr, "model": self.name})
        alerts = {
            attr: value >= self.psi_alert
            for attr, value in drift_psi.items()
        }
        with self._lock:
            previous = self._alerts
            self._alerts = alerts
        for attr, alerting in alerts.items():
            if alerting == previous.get(attr, False):
                continue
            events.emit(
                "drift_alert",
                model=self.name,
                model_id=self.model_id,
                attribute=attr,
                psi=drift_psi[attr],
                threshold=self.psi_alert,
                state="alert" if alerting else "cleared",
            )
            logger.warning(
                "drift %s for %s attribute %r: PSI %.4f (threshold %g)",
                "alert" if alerting else "cleared",
                self.name, attr, drift_psi[attr], self.psi_alert,
            )


class TrafficMonitors:
    """Per-model monitors keyed by content hash (thread-safe).

    A hot reload that changes an artefact changes its content hash, so
    the changed model transparently gets a fresh monitor; monitors for
    models no longer served are dropped by :meth:`prune`.
    """

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 window_count: int = DEFAULT_WINDOW_COUNT,
                 psi_alert: float = DEFAULT_PSI_ALERT,
                 clock=perf_counter):
        self.window_seconds = float(window_seconds)
        self.window_count = int(window_count)
        self.psi_alert = float(psi_alert)
        self._clock = clock
        self._lock = threading.Lock()
        self._monitors: dict[str, TrafficMonitor] = {}

    def for_model(self, model: ServedModel) -> TrafficMonitor:
        """The monitor for ``model``, created on first sight."""
        monitor = self._monitors.get(model.model_id)
        if monitor is not None:
            return monitor
        with self._lock:
            monitor = self._monitors.get(model.model_id)
            if monitor is None:
                segmentation = model.segmentation
                monitor = TrafficMonitor(
                    model_id=model.model_id,
                    name=model.name,
                    x_attribute=segmentation.x_attribute,
                    y_attribute=segmentation.y_attribute,
                    n_rules=len(segmentation),
                    reference=model.reference,
                    window_seconds=self.window_seconds,
                    window_count=self.window_count,
                    psi_alert=self.psi_alert,
                    clock=self._clock,
                )
                self._monitors[model.model_id] = monitor
            return monitor

    def prune(self, active_ids: set[str]) -> None:
        """Drop monitors for models no longer in the registry."""
        with self._lock:
            if set(self._monitors) <= active_ids:
                return
            self._monitors = {
                model_id: monitor
                for model_id, monitor in self._monitors.items()
                if model_id in active_ids
            }

    def __len__(self) -> int:
        return len(self._monitors)
