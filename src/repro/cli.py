"""Command-line interface to the ARCS system.

Subcommands mirror the library workflow:

* ``arcs generate`` — write a synthetic demographic data set (the
  paper's Table 1 generator) to CSV;
* ``arcs fit`` — run the full ARCS pipeline on a CSV and print (and
  optionally save) the segmentation;
* ``arcs remine`` — re-mine a saved BinArray at explicit thresholds
  (the paper's instantaneous threshold change, across processes);
* ``arcs inspect`` — pretty-print a saved segmentation and optionally
  evaluate it against a CSV;
* ``arcs serve`` — serve a directory of saved segmentations over HTTP
  (``/predict``, ``/predict_batch``, ``/explain``, ``/models``,
  ``/healthz``, ``/metrics``, ``/stats``, ``/fleet`` — see
  ``docs/serving.md``);
* ``arcs fleet`` — query a running server's ``GET /fleet`` lifecycle
  surface and print the per-worker status table;
* ``arcs watch`` — stream a CSV replay or tailed JSONL file through a
  tumbling/sliding tuple window, refit on cadence, and atomically
  publish refreshed artefacts into a ``serve`` models directory (see
  ``docs/streaming.md``);
* ``arcs score`` — apply a saved segmentation to a CSV offline;
* ``arcs drift`` — compare two occupancy snapshots (training BinArray,
  segmentation artefact with an embedded reference profile, or a
  captured ``/stats`` payload) with PSI / Jensen-Shannon scores and an
  ASCII delta grid.

Every command is driven by :func:`main`, which takes an argv list so
tests can invoke it without a subprocess.

Observability flags (``fit``, ``fit-all``, ``remine``, ``describe``,
``inspect``) expose the :mod:`repro.obs` layer without code changes:

* ``--log-level LEVEL`` — configure :mod:`logging` for the process (the
  library logs at DEBUG/INFO through module loggers);
* ``--trace`` — collect a span tree + metrics for the run and print the
  ASCII summary after the command's normal output;
* ``--metrics-out PATH`` — write the run's machine-readable
  :class:`~repro.obs.report.RunReport` JSON to ``PATH``;
* ``--trace-out PATH`` — export the run's span tree as Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``);
* ``--events-out PATH`` — append structured JSONL events (one per run,
  stage, and served request) to ``PATH``;
* ``--profile-out PATH`` — run the stdlib sampling profiler for the
  whole command and write collapsed (flamegraph) stacks to ``PATH``.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path

import repro
from repro import obs
from repro.obs import trace
from repro.binning.binner import record_occupancy
from repro.binning.strategies import STRATEGIES
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.clusterer import GridClusterer
from repro.core.optimizer import OptimizerConfig, segmentation_from_outcome
from repro.core.verifier import Verifier
from repro.data.io import read_csv, write_csv
from repro.data.schema import AttributeSpec, categorical, quantitative
from repro.data.synthetic import DEMOGRAPHIC_ATTRIBUTES, GROUP_ATTRIBUTE
from repro.data.summary import format_occupancy, profile_bin_array
from repro.obs.report import RunCapture, RunReport
from repro.persistence import (
    load_bin_array,
    load_segmentation,
    save_bin_array,
    save_segmentation,
    segmentation_metadata,
)

logger = logging.getLogger(__name__)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (see the module docstring)."""
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="configure logging for the run (library loggers emit at "
             "DEBUG/INFO)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="collect spans + metrics and print the run summary",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="write the machine-readable run report JSON to PATH",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="write the run's span tree as Chrome trace-event JSON "
             "(loadable in Perfetto)",
    )
    parser.add_argument(
        "--events-out", type=Path, default=None, metavar="PATH",
        help="append structured JSONL events (runs, stages, requests) "
             "to PATH",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None, metavar="PATH",
        help="sample the whole command and write collapsed flamegraph "
             "stacks to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="arcs",
        description="Association Rule Clustering System "
                    "(Lent, Swami, Widom — ICDE 1997)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    # required=True makes a missing or unknown subcommand an argparse
    # usage error: message on stderr, exit status 2 — consistently.
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic demographic data set"
    )
    generate.add_argument("output", type=Path, help="CSV to write")
    generate.add_argument("--tuples", type=int, default=50_000)
    generate.add_argument("--function", type=int, default=2,
                          choices=range(1, 11), metavar="1..10")
    generate.add_argument("--perturbation", type=float, default=0.05)
    generate.add_argument("--outliers", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=0)

    fit = commands.add_parser(
        "fit", help="run ARCS on a CSV and print the segmentation"
    )
    fit.add_argument("data", type=Path, help="input CSV")
    fit.add_argument("--x", required=True, help="first LHS attribute")
    fit.add_argument("--y", required=True, help="second LHS attribute")
    fit.add_argument("--rhs", required=True,
                     help="segmentation (criterion) attribute")
    fit.add_argument("--target", required=True,
                     help="criterion value to segment on")
    fit.add_argument("--bins", type=int, default=50,
                     help="bins per LHS attribute (paper default 50)")
    fit.add_argument("--strategy", default="equi-width",
                     choices=STRATEGIES)
    fit.add_argument("--save-segmentation", type=Path, default=None,
                     help="write the result as JSON")
    fit.add_argument("--save-binarray", type=Path, default=None,
                     help="persist the BinArray for later re-mining")
    fit.add_argument("--support-levels", type=int, default=16)
    fit.add_argument("--confidence-levels", type=int, default=8)
    fit.add_argument("--time-budget", type=float, default=None,
                     help="optimizer wall-clock budget in seconds")
    fit.add_argument("--verbose", action="store_true",
                     help="print every optimizer trial as it completes")
    _add_obs_flags(fit)

    fit_all = commands.add_parser(
        "fit-all",
        help="one segmentation per criterion value, from one binning "
             "pass",
    )
    fit_all.add_argument("data", type=Path, help="input CSV")
    fit_all.add_argument("--x", required=True)
    fit_all.add_argument("--y", required=True)
    fit_all.add_argument("--rhs", required=True)
    fit_all.add_argument("--bins", type=int, default=50)
    fit_all.add_argument("--support-levels", type=int, default=16)
    fit_all.add_argument("--confidence-levels", type=int, default=8)
    _add_obs_flags(fit_all)

    remine = commands.add_parser(
        "remine",
        help="re-mine a saved BinArray at explicit thresholds",
    )
    remine.add_argument("binarray", type=Path, help="saved .npz")
    remine.add_argument("--target", required=True)
    remine.add_argument("--min-support", type=float, required=True)
    remine.add_argument("--min-confidence", type=float, required=True)
    remine.add_argument("--save-segmentation", type=Path, default=None)
    _add_obs_flags(remine)

    describe = commands.add_parser(
        "describe", help="profile a CSV's attributes"
    )
    describe.add_argument("data", type=Path, help="input CSV")
    describe.add_argument("--top", type=int, default=5,
                          help="top categorical values to list")
    _add_obs_flags(describe)

    inspect = commands.add_parser(
        "inspect", help="print a saved segmentation"
    )
    inspect.add_argument("segmentation", type=Path, help="saved JSON")
    inspect.add_argument("--evaluate", type=Path, default=None,
                         help="CSV to measure the error rate against")
    _add_obs_flags(inspect)

    serve = commands.add_parser(
        "serve",
        help="serve a directory of saved segmentations over HTTP",
    )
    serve.add_argument("models", type=Path,
                       help="directory of segmentation JSON artefacts")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8799,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--refresh-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="how often the model directory is re-checked "
                            "for hot reload (negative disables)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="scoring worker processes sharing the "
                            "listening socket and shared-memory scorer "
                            "tables (0 = single threaded process)")
    serve.add_argument("--batch-window", type=float, default=None,
                       metavar="MS",
                       help="coalesce concurrent scoring calls for up "
                            "to MS milliseconds into one batch gather "
                            "(default: 2 with --workers, off without; "
                            "an explicit 0 disables batching in "
                            "either mode)")
    serve.add_argument("--max-batch", type=int, default=None,
                       metavar="POINTS",
                       help="flush a batch early once this many points "
                            "wait for one model (default 1024)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       metavar="N",
                       help="shed requests with HTTP 429 once N "
                            "submissions are queued (default 256)")
    serve.add_argument("--fleet-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="with --workers: how often each worker "
                            "ships its metrics snapshot to the parent "
                            "for fleet aggregation (default 2; 0 "
                            "disables periodic telemetry)")
    serve.add_argument("--fleet-path", type=Path, default=None,
                       metavar="PATH",
                       help="with --workers: publish the merged fleet "
                            "telemetry document to PATH instead of a "
                            "private temp file (the file survives "
                            "shutdown)")
    _add_obs_flags(serve)

    fleet = commands.add_parser(
        "fleet",
        help="show a running server's fleet status (GET /fleet)",
    )
    fleet.add_argument("url",
                       help="server base URL, e.g. "
                            "http://127.0.0.1:8799")
    fleet.add_argument("--timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="HTTP timeout (default 5)")
    fleet.add_argument("--json", action="store_true", dest="raw_json",
                       help="print the raw /fleet payload instead of "
                            "the status table")
    _add_obs_flags(fleet)

    watch = commands.add_parser(
        "watch",
        help="continuously refit a tuple stream and publish refreshed "
             "segmentations into a served model directory",
    )
    watch.add_argument(
        "data", type=Path,
        help="CSV to replay (bounded), or JSONL file to tail with "
             "--follow",
    )
    watch.add_argument("--x", required=True, help="first LHS attribute")
    watch.add_argument("--y", required=True, help="second LHS attribute")
    watch.add_argument("--rhs", required=True,
                       help="segmentation (criterion) attribute")
    watch.add_argument("--target", required=True,
                       help="criterion value to segment on")
    watch.add_argument(
        "--models", type=Path, required=True,
        help="model directory to publish refreshed artefacts into "
             "(the directory `arcs serve` hot-reloads from)",
    )
    watch.add_argument(
        "--name", default=None,
        help="artefact stem; refits overwrite <models>/<name>.json "
             "(default watch_<target>)",
    )
    watch.add_argument("--mode", default="tumbling",
                       choices=("tumbling", "sliding"),
                       help="window shape (default tumbling)")
    watch.add_argument(
        "--window", type=int, default=5000, metavar="N",
        help="tuples per window: the refit period for tumbling "
             "windows, the retained history for sliding ones",
    )
    watch.add_argument(
        "--refit-every", type=int, default=None, metavar="N",
        help="sliding mode: tuples between refits (default: refit "
             "after every ingested chunk)",
    )
    watch.add_argument("--bins", type=int, default=50,
                       help="bins per LHS attribute (paper default 50)")
    watch.add_argument("--strategy", default="equi-width",
                       choices=STRATEGIES)
    watch.add_argument("--chunk-rows", type=int, default=1024,
                       help="tuples per ingested chunk")
    watch.add_argument("--min-support", type=float, default=0.01)
    watch.add_argument("--min-confidence", type=float, default=0.5)
    watch.add_argument(
        "--follow", action="store_true",
        help="tail DATA as append-only JSONL (one object per line) "
             "instead of replaying it as CSV",
    )
    watch.add_argument("--poll-interval", type=float, default=0.2,
                       metavar="SECONDS",
                       help="tail polling interval with --follow")
    watch.add_argument(
        "--idle-polls", type=int, default=25, metavar="N",
        help="stop tailing after N consecutive empty polls with "
             "--follow (0 tails forever)",
    )
    watch.add_argument("--max-refits", type=int, default=None,
                       metavar="N",
                       help="stop after N refits")
    watch.add_argument("--pace", type=float, default=0.0,
                       metavar="SECONDS",
                       help="seconds between replayed chunks")
    _add_obs_flags(watch)

    score = commands.add_parser(
        "score",
        help="apply a saved segmentation to a CSV offline",
    )
    score.add_argument("model", type=Path,
                       help="saved segmentation JSON")
    score.add_argument("--input", type=Path, required=True,
                       help="CSV with the segmentation's LHS columns")
    score.add_argument("--output", type=Path, default=None,
                       help="write per-row predictions as CSV")
    _add_obs_flags(score)

    drift = commands.add_parser(
        "drift",
        help="compare two occupancy snapshots "
             "(PSI / Jensen-Shannon + ASCII delta grid)",
    )
    drift.add_argument(
        "reference", type=Path,
        help="baseline snapshot: a BinArray .npz, a segmentation JSON "
             "with an embedded reference profile, or a captured /stats "
             "payload",
    )
    drift.add_argument("observed", type=Path,
                       help="comparison snapshot (same formats)")
    drift.add_argument(
        "--model", default=None,
        help="model entry to read when a /stats capture holds several",
    )
    drift.add_argument(
        "--rel-tol", type=float, default=0.25,
        help="per-cell relative tolerance below which the delta grid "
             "marks a cell as steady (default 0.25)",
    )
    _add_obs_flags(drift)

    return parser


def _infer_specs(path: Path) -> list[AttributeSpec]:
    """Infer a schema from a CSV: numeric-looking columns become
    quantitative, the rest categorical.

    The synthetic generator's schema is recognised by its header and
    used verbatim (declared domains keep bin layouts canonical).
    """
    with open(path) as handle:
        header = handle.readline().strip().split(",")
        sample = handle.readline().strip().split(",")
    synthetic_names = [
        spec.name for spec in DEMOGRAPHIC_ATTRIBUTES
    ] + [GROUP_ATTRIBUTE.name]
    if set(header) == set(synthetic_names):
        return list(DEMOGRAPHIC_ATTRIBUTES) + [GROUP_ATTRIBUTE]
    specs = []
    for name, value in zip(header, sample):
        try:
            float(value)
        except ValueError:
            specs.append(categorical(name))
        else:
            specs.append(quantitative(name))
    return specs


def _coerce_target(value: str):
    """CSV round trips stringify everything, so targets stay strings
    unless the RHS encoding holds numbers."""
    return value


def _configure_observability(args: argparse.Namespace) -> None:
    """Apply the shared obs flags (commands without them are no-ops)."""
    level = getattr(args, "log_level", None)
    if level is not None:
        logging.basicConfig(
            level=getattr(logging, level),
            format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        )
    for flag, description in (
        ("metrics_out", "run report"),
        ("trace_out", "trace export"),
        ("events_out", "event log"),
        ("profile_out", "profile"),
    ):
        target = getattr(args, flag, None)
        if target is not None:
            parent = Path(target).resolve().parent
            if not parent.is_dir():
                # Fail before the run, not after minutes of work.
                raise SystemExit(
                    f"arcs: cannot write {description} to {target}: "
                    f"directory {parent} does not exist"
                )
    events_out = getattr(args, "events_out", None)
    if events_out is not None:
        from repro.obs import events

        events.enable_events(events_out)
    if (getattr(args, "trace", False)
            or getattr(args, "metrics_out", None) is not None
            or getattr(args, "trace_out", None) is not None
            or events_out is not None):
        # --events-out needs the span tree too: the run/stage events
        # are derived from the finished RunReport.
        obs.enable()


def _emit_run_report(args: argparse.Namespace,
                     report: RunReport | None) -> None:
    """Print and/or persist a run report per the shared obs flags."""
    if report is None:
        return
    if getattr(args, "trace", False):
        print(f"\n{report.summary()}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        report.write(metrics_out)
        print(f"run report written to {metrics_out}")
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        if report.trace is None:
            print(f"no span tree captured; {trace_out} not written")
        else:
            from repro.obs.trace_export import write_chrome_trace

            write_chrome_trace(trace_out, report)
            print(f"chrome trace written to {trace_out}")


def _command_generate(args: argparse.Namespace) -> int:
    config = repro.SyntheticConfig(
        n_tuples=args.tuples,
        function_id=args.function,
        perturbation=args.perturbation,
        outlier_fraction=args.outliers,
        seed=args.seed,
    )
    table = repro.generate_synthetic(config)
    write_csv(table, args.output)
    print(f"wrote {len(table):,} tuples to {args.output}")
    return 0


def _command_fit(args: argparse.Namespace) -> int:
    specs = _infer_specs(args.data)
    table = read_csv(args.data, specs)
    print(f"loaded {len(table):,} tuples from {args.data}")

    config = ARCSConfig(
        n_bins_x=args.bins,
        n_bins_y=args.bins,
        binning_strategy=args.strategy,
        optimizer=OptimizerConfig(
            max_support_levels=args.support_levels,
            max_confidence_levels=args.confidence_levels,
            time_budget_seconds=args.time_budget,
        ),
    )
    start = time.perf_counter()
    result = ARCS(config).fit(
        table, args.x, args.y, args.rhs, _coerce_target(args.target),
        on_trial=print if args.verbose else None,
    )
    elapsed = time.perf_counter() - start

    print(f"\nsegmentation for {args.rhs} = {args.target} "
          f"({elapsed:.2f}s, {len(result.history)} trials):")
    print(result.segmentation.describe())
    print(f"\n{result.best_trial}")

    if args.save_segmentation is not None:
        # Embedding the training occupancy lets the serving layer score
        # live-traffic drift against this exact fit (GET /stats).
        save_segmentation(result.segmentation, args.save_segmentation,
                          bin_array=result.binner.bin_array)
        print(f"segmentation saved to {args.save_segmentation}")
    if args.save_binarray is not None:
        save_bin_array(result.binner.bin_array, args.save_binarray)
        print(f"BinArray saved to {args.save_binarray}")
    _emit_run_report(args, result.run_report)
    return 0


def _command_fit_all(args: argparse.Namespace) -> int:
    specs = _infer_specs(args.data)
    table = read_csv(args.data, specs)
    print(f"loaded {len(table):,} tuples from {args.data}")
    config = ARCSConfig(
        n_bins_x=args.bins,
        n_bins_y=args.bins,
        optimizer=OptimizerConfig(
            max_support_levels=args.support_levels,
            max_confidence_levels=args.confidence_levels,
        ),
    )
    arcs = ARCS(config)
    results = arcs.fit_all(table, args.x, args.y, args.rhs)
    for value, result in results.items():
        print(f"\n=== {args.rhs} = {value} "
              f"({len(result.segmentation)} rules, "
              f"error {result.best_trial.report.error_rate:.4f}) ===")
        print(result.segmentation.describe())
    _emit_run_report(args, arcs.last_run_report)
    return 0


def _command_remine(args: argparse.Namespace) -> int:
    with RunCapture("cli.remine", config={
        "binarray": str(args.binarray),
        "target": args.target,
        "min_support": args.min_support,
        "min_confidence": args.min_confidence,
    }) as capture:
        bin_array = load_bin_array(args.binarray)
        record_occupancy(bin_array)
        target = _coerce_target(args.target)
        rhs_code = bin_array.rhs_encoding.code_of(target)
        outcome = GridClusterer().cluster(
            bin_array, rhs_code, args.min_support, args.min_confidence
        )
        segmentation = segmentation_from_outcome(
            outcome, bin_array, rhs_code
        )
    print(f"re-mined at support>={args.min_support} "
          f"confidence>={args.min_confidence}: "
          f"{len(segmentation)} rules")
    print(f"BinArray occupancy: "
          f"{format_occupancy(profile_bin_array(bin_array))}")
    print(segmentation.describe())
    if args.save_segmentation is not None:
        save_segmentation(segmentation, args.save_segmentation,
                          bin_array=bin_array)
        print(f"segmentation saved to {args.save_segmentation}")
    _emit_run_report(args, capture.report)
    return 0


def _command_describe(args: argparse.Namespace) -> int:
    from repro.data.summary import format_profile, profile_table
    with RunCapture("cli.describe",
                    config={"data": str(args.data)}) as capture:
        with trace("load"):
            specs = _infer_specs(args.data)
            table = read_csv(args.data, specs)
        with trace("profile", tuples=len(table)):
            profile = profile_table(table, top_k=args.top)
    print(format_profile(profile, len(table)))
    root = (capture.report.span_tree()
            if capture.report is not None else None)
    if root is not None:
        spans = {
            span.name: span.duration or 0.0 for _, span in root.walk()
        }
        print(f"\nprofiled {len(table):,} tuples in "
              f"{spans.get('profile', 0.0):.3f}s "
              f"(load {spans.get('load', 0.0):.3f}s)")
    _emit_run_report(args, capture.report)
    return 0


def _format_artefact_metadata(metadata: dict) -> str | None:
    """One provenance line for a saved segmentation, or ``None``."""
    if not metadata:
        return None
    version = metadata.get("library_version", "?")
    created = metadata.get("created_unix")
    if isinstance(created, (int, float)):
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(created)
        )
    else:
        stamp = "unknown time"
    return f"saved by repro {version} at {stamp}"


def _command_inspect(args: argparse.Namespace) -> int:
    segmentation = load_segmentation(args.segmentation)
    provenance = _format_artefact_metadata(
        segmentation_metadata(args.segmentation)
    )
    if provenance is not None:
        print(provenance)
    print(f"segmentation for {segmentation.rhs_attribute} = "
          f"{segmentation.rhs_value} ({len(segmentation)} rules):")
    print(segmentation.describe())
    if args.evaluate is not None:
        with RunCapture("cli.inspect", config={
            "segmentation": str(args.segmentation),
            "evaluate": str(args.evaluate),
        }) as capture:
            specs = _infer_specs(args.evaluate)
            table = read_csv(args.evaluate, specs)
            verifier = Verifier(
                table, segmentation.rhs_attribute,
                segmentation.rhs_value,
                sample_size=min(5000, len(table)), repeats=5,
            )
            error_rate = verifier.exact_error_rate(segmentation)
        print(f"\nerror rate on {args.evaluate} "
              f"({len(table):,} tuples): {error_rate:.4f}")
        if capture.report is not None:
            counters = capture.report.counters()
            scanned = counters.get("verifier.tuples_scanned", 0)
            duration = capture.report.duration_seconds
            print(f"scanned {scanned:,} tuples in {duration:.3f}s")
        _emit_run_report(args, capture.report)
    return 0


def _describe_served(registry, source: Path, url: str,
                     workers: int = 0) -> None:
    mode = f" across {workers} workers" if workers else ""
    print(f"serving {len(registry)} model(s) from {source} "
          f"at {url}{mode}")
    for model in registry.models():
        segmentation = model.segmentation
        print(f"  {model.model_id}  {model.name}: "
              f"({segmentation.x_attribute}, "
              f"{segmentation.y_attribute}) => "
              f"{segmentation.rhs_attribute} = "
              f"{segmentation.rhs_value} [{len(segmentation)} rules]")


def _batch_window_seconds(batch_window: float | None,
                          workers: int) -> float:
    """Resolve ``--batch-window`` (milliseconds, or unset) by mode.

    Unset means default-by-mode: workers coalesce by default (batched
    gathers are the point of a multi-core front end), the threaded path
    stays unbatched.  An explicit ``0`` opts out of batching in either
    mode — distinguishable from the default because the flag's argparse
    default is ``None``, not ``0``.
    """
    from repro.serve.batching import DEFAULT_MAX_DELAY_SECONDS

    if batch_window is None:
        return DEFAULT_MAX_DELAY_SECONDS if workers > 0 else 0.0
    return batch_window / 1000.0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        WorkerConfig,
        create_multiprocess_server,
        create_server,
        run_multiprocess_server,
        run_server,
    )
    from repro.serve.batching import (
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_DEPTH,
    )

    if args.workers < 0:
        raise SystemExit("arcs serve: --workers must be >= 0")
    if args.batch_window is not None and args.batch_window < 0:
        raise SystemExit("arcs serve: --batch-window must be >= 0")
    if args.fleet_interval is not None and args.fleet_interval < 0:
        raise SystemExit("arcs serve: --fleet-interval must be >= 0")
    # A serving process exists to be watched: collect metrics so
    # /metrics answers, and spans too under --trace.
    obs.enable(
        trace_spans=getattr(args, "trace", False), collect_metrics=True
    )
    window_seconds = _batch_window_seconds(args.batch_window,
                                           args.workers)
    if args.workers > 0:
        config = WorkerConfig(
            batch_window_seconds=window_seconds,
            max_batch=(args.max_batch if args.max_batch is not None
                       else DEFAULT_MAX_BATCH),
            queue_depth=(args.queue_depth
                         if args.queue_depth is not None
                         else DEFAULT_MAX_DEPTH),
            events_out=(str(args.events_out)
                        if getattr(args, "events_out", None) is not None
                        else None),
            trace_spans=getattr(args, "trace", False),
            **({"telemetry_interval": args.fleet_interval}
               if args.fleet_interval is not None else {}),
            **({"fleet_path": str(args.fleet_path)}
               if args.fleet_path is not None else {}),
        )
        pool = create_multiprocess_server(
            args.models, host=args.host, port=args.port,
            workers=args.workers,
            refresh_interval=args.refresh_interval, config=config,
        )
        _describe_served(pool.registry, args.models, pool.url,
                         workers=args.workers)
        run_multiprocess_server(pool)
        return 0
    server = create_server(
        args.models, host=args.host, port=args.port,
        refresh_interval=args.refresh_interval,
        batch_window_seconds=window_seconds,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
    )
    _describe_served(server.service.registry, args.models, server.url)
    run_server(server)
    return 0


def _format_age(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds:.1f}s ago"


def _command_fleet(args: argparse.Namespace) -> int:
    import json
    import urllib.request

    url = args.url.rstrip("/")
    if "://" not in url:
        url = f"http://{url}"
    with RunCapture("cli.fleet", config={"url": url}) as capture:
        try:
            with urllib.request.urlopen(
                    url + "/fleet", timeout=args.timeout) as response:
                payload = json.load(response)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"arcs fleet: cannot read {url}/fleet: {error}"
            )
    if args.raw_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        _emit_run_report(args, capture.report)
        return 0
    workers = payload.get("workers", {})
    if payload.get("mode") == "process":
        print(f"{url}: single-process server "
              f"(status {payload.get('status', '?')})")
    else:
        print(f"{url}: fleet generation {payload.get('generation')}, "
              f"{len(workers)} worker(s), published "
              f"{_format_age(payload.get('published_age_seconds'))}")
    if workers:
        print(f"{'worker':>6}  {'pid':>7}  {'spawn':>5}  "
              f"{'restarts':>8}  {'uptime':>9}  {'snapshot':>12}  "
              f"{'ack':>9}  state")
    for index in sorted(workers, key=lambda key: int(key)):
        entry = workers[index]
        uptime = entry.get("uptime_seconds") or 0.0
        ack = entry.get("ack_latency_seconds")
        requests = entry.get("counters", {}).get("serve.requests", 0)
        state = "draining" if entry.get("draining") else "serving"
        print(f"{index:>6}  {entry.get('pid', '-'):>7}  "
              f"{entry.get('spawn_generation', '-'):>5}  "
              f"{entry.get('restarts', 0):>8}  {uptime:>8.1f}s  "
              f"{_format_age(entry.get('last_snapshot_age_seconds')):>12}  "
              f"{'-' if ack is None else f'{ack * 1000:.1f}ms':>9}  "
              f"{state} ({requests} requests)")
    _emit_run_report(args, capture.report)
    return 0


def _infer_jsonl_specs(path: Path) -> list[AttributeSpec]:
    """Infer a schema from a JSONL file's first record: numeric values
    become quantitative attributes, everything else categorical."""
    import json

    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                break
        else:
            raise SystemExit(f"arcs: {path} holds no records")
    try:
        record = json.loads(line)
    except ValueError as error:
        raise SystemExit(f"arcs: {path} is not JSONL: {error}")
    if not isinstance(record, dict):
        raise SystemExit(f"arcs: {path} lines must be JSON objects")
    return [
        quantitative(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool)
        else categorical(name)
        for name, value in record.items()
    ]


def _command_watch(args: argparse.Namespace) -> int:
    from repro.binning.binner import Binner
    from repro.stream import (
        CSVReplaySource,
        JSONLTailSource,
        RefitterConfig,
        StreamRefitter,
        StreamWindow,
        WindowConfig,
        run_watch,
    )

    with RunCapture("cli.watch", config={
        "data": str(args.data),
        "mode": args.mode,
        "window": args.window,
        "target": args.target,
        "min_support": args.min_support,
        "min_confidence": args.min_confidence,
    }) as capture:
        if args.follow:
            specs = _infer_jsonl_specs(args.data)
            source = JSONLTailSource(
                args.data, specs, chunk_rows=args.chunk_rows,
                poll_seconds=args.poll_interval,
                idle_polls=args.idle_polls or None,
            )
        else:
            # Spec inference needs a sample row; reject a header-only
            # CSV here rather than with a schema-mismatch error.
            with open(args.data) as handle:
                handle.readline()
                if not handle.readline().strip():
                    raise SystemExit(f"arcs: {args.data} holds no tuples")
            specs = _infer_specs(args.data)
            source = CSVReplaySource(
                args.data, specs, chunk_rows=args.chunk_rows,
                pace_seconds=args.pace,
            )
        chunk_iter = source.chunks()
        try:
            first = next(chunk_iter)
        except StopIteration:
            raise SystemExit(f"arcs: {args.data} holds no tuples")
        # The first chunk fixes the binning vocabulary: layouts prefer
        # declared domains, and categorical encodings prefer declared
        # values, so with a declared schema the grid is canonical no
        # matter how the stream is chunked.  An RHS value that never
        # appears in the first chunk of an undeclared schema fails
        # loudly when it first arrives.
        binner = Binner.fit(
            first, args.x, args.y, args.rhs, args.bins, args.bins,
            strategy=args.strategy,
        )
        window = StreamWindow(
            binner.x_layout, binner.y_layout, binner.rhs_encoding,
            WindowConfig(mode=args.mode, size=args.window,
                         refit_every=args.refit_every),
        )
        name = args.name or f"watch_{args.target}"
        try:
            refitter = StreamRefitter(
                binner.x_layout, binner.y_layout, binner.rhs_encoding,
                window, _coerce_target(args.target), args.models, name,
                RefitterConfig(min_support=args.min_support,
                               min_confidence=args.min_confidence),
            )
        except NotADirectoryError as error:
            raise SystemExit(f"arcs: {error}")
        print(f"watching {args.data} ({args.mode} window of "
              f"{args.window:,} tuples) -> {refitter.artefact_path}")

        class _Resumed:
            """The already-peeked first chunk, then the rest."""

            def chunks(self):
                yield first
                yield from chunk_iter

        summary = run_watch(
            _Resumed(), refitter, max_refits=args.max_refits,
            on_refresh=lambda record: print(f"  {record.describe()}"),
        )
    print(f"watched {summary.tuples:,} tuples in {summary.chunks} "
          f"chunks: {summary.refits} refits, "
          f"{summary.publishes} published")
    _emit_run_report(args, capture.report)
    return 0


def _command_score(args: argparse.Namespace) -> int:
    import csv

    from repro.serve.scorer import compile_scorer

    segmentation = load_segmentation(args.model)
    provenance = _format_artefact_metadata(
        segmentation_metadata(args.model)
    )
    with RunCapture("cli.score", config={
        "model": str(args.model),
        "input": str(args.input),
    }) as capture:
        with trace("load"):
            specs = _infer_specs(args.input)
            table = read_csv(args.input, specs)
        x_values = table.column(segmentation.x_attribute)
        y_values = table.column(segmentation.y_attribute)
        with trace("score", tuples=len(table)):
            scorer = compile_scorer(segmentation)
            indices = scorer.score_batch(x_values, y_values)
        inside = int((indices >= 0).sum())

    print(f"scored {len(table):,} tuples from {args.input} "
          f"against {args.model}")
    if provenance is not None:
        print(f"model {provenance}")
    share = inside / len(table) if len(table) else 0.0
    print(f"{inside:,} in segment {segmentation.rhs_attribute} = "
          f"{segmentation.rhs_value} ({share:.1%}), "
          f"{len(table) - inside:,} outside")

    if args.output is not None:
        with open(args.output, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([
                segmentation.x_attribute, segmentation.y_attribute,
                "rule", "in_segment",
            ])
            for x, y, rule in zip(x_values, y_values, indices):
                writer.writerow([
                    x, y, int(rule), bool(rule >= 0),
                ])
        print(f"predictions written to {args.output}")
    _emit_run_report(args, capture.report)
    return 0


def _load_occupancy(path: Path, model_key: str | None):
    """Load any supported occupancy snapshot as a
    :class:`~repro.data.summary.ReferenceProfile`.

    Accepts a BinArray ``.npz``, a segmentation artefact carrying a
    ``reference_profile`` block, or a captured ``/stats`` payload
    (whose ``recent`` window supplies the traffic grid).
    """
    import json

    from repro.data.summary import ReferenceProfile, reference_profile
    from repro.persistence import (
        SEGMENTATION_FORMAT,
        PersistenceError,
        segmentation_reference,
    )

    if path.suffix == ".npz":
        return reference_profile(load_bin_array(path))
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except ValueError as error:
        raise SystemExit(f"arcs: {path} is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise SystemExit(f"arcs: {path} is not an occupancy snapshot")
    if payload.get("format") == SEGMENTATION_FORMAT:
        try:
            reference = segmentation_reference(path)
        except PersistenceError as error:
            raise SystemExit(f"arcs: {error}")
        if reference is None:
            raise SystemExit(
                f"arcs: {path} has no embedded reference profile; "
                "re-save the artefact with a current 'arcs fit'"
            )
        return reference
    if "models" in payload:
        return _occupancy_from_stats(path, payload["models"], model_key)
    raise SystemExit(
        f"arcs: {path} is neither a BinArray .npz, a segmentation "
        "artefact, nor a /stats capture"
    )


def _occupancy_from_stats(path: Path, entries, model_key: str | None):
    """The traffic occupancy of one model entry in a ``/stats`` capture."""
    from repro.data.summary import ReferenceProfile

    if not isinstance(entries, dict) or not entries:
        raise SystemExit(f"arcs: {path} captures no models")
    if model_key is not None:
        entry = entries.get(model_key)
        if entry is None:
            raise SystemExit(
                f"arcs: no model {model_key!r} in {path}; captured "
                f"{sorted(entries)}"
            )
    elif len(entries) == 1:
        entry = next(iter(entries.values()))
    else:
        raise SystemExit(
            f"arcs: {path} captures {len(entries)} models "
            f"({', '.join(sorted(entries))}); pick one with --model"
        )
    try:
        reference_block = entry["reference"]
        recent = entry["recent"]
        if not reference_block.get("available"):
            raise SystemExit(
                f"arcs: the {entry.get('model', '?')} capture in {path} "
                "has no reference grid, so its traffic was never binned"
            )
        totals = recent.get("totals")
        if totals is None or recent.get("points", 0) == 0:
            raise SystemExit(
                f"arcs: the {entry.get('model', '?')} capture in {path} "
                "holds no binned traffic (empty windows)"
            )
        return ReferenceProfile(
            x_attribute=entry["x_attribute"],
            y_attribute=entry["y_attribute"],
            x_edges=reference_block["x_edges"],
            y_edges=reference_block["y_edges"],
            totals=totals,
            n_total=int(recent["points"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(
            f"arcs: {path} is not a usable /stats capture: {error!r}"
        )


def _command_drift(args: argparse.Namespace) -> int:
    from repro.obs.drift import js_divergence, psi
    from repro.viz.ascii import render_delta_grid

    with RunCapture("cli.drift", config={
        "reference": str(args.reference),
        "observed": str(args.observed),
    }) as capture:
        reference = _load_occupancy(args.reference, args.model)
        observed = _load_occupancy(args.observed, args.model)
        if reference.totals.shape != observed.totals.shape:
            raise SystemExit(
                f"arcs: grids are incompatible: {args.reference} is "
                f"{reference.totals.shape[0]}x"
                f"{reference.totals.shape[1]}, {args.observed} is "
                f"{observed.totals.shape[0]}x{observed.totals.shape[1]}"
            )
        edges_match = (
            reference.x_edges.tolist() == observed.x_edges.tolist()
            and reference.y_edges.tolist() == observed.y_edges.tolist()
        )
        try:
            rows = [
                (reference.x_attribute,
                 psi(reference.x_counts, observed.x_counts),
                 js_divergence(reference.x_counts, observed.x_counts)),
                (reference.y_attribute,
                 psi(reference.y_counts, observed.y_counts),
                 js_divergence(reference.y_counts, observed.y_counts)),
                ("joint",
                 psi(reference.totals, observed.totals),
                 js_divergence(reference.totals, observed.totals)),
            ]
        except ValueError as error:
            raise SystemExit(f"arcs: {error}")

    print(f"drift {args.reference} ({reference.n_total:,} tuples) -> "
          f"{args.observed} ({observed.n_total:,} tuples)")
    if not edges_match:
        print("warning: bin edges differ between the snapshots; "
              "per-cell comparison assumes matching grids")
    print(f"\n{'attribute':>12}  {'PSI':>10}  {'JS (bits)':>10}")
    for attribute, psi_value, js_value in rows:
        print(f"{attribute:>12}  {psi_value:>10.4f}  {js_value:>10.4f}")
    print()
    print(render_delta_grid(
        reference.totals, observed.totals,
        x_label=reference.x_attribute, y_label=reference.y_attribute,
        rel_tol=args.rel_tol,
    ))
    _emit_run_report(args, capture.report)
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "fit": _command_fit,
    "fit-all": _command_fit_all,
    "remine": _command_remine,
    "describe": _command_describe,
    "inspect": _command_inspect,
    "serve": _command_serve,
    "fleet": _command_fleet,
    "watch": _command_watch,
    "score": _command_score,
    "drift": _command_drift,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.obs import events

    parser = _build_parser()
    args = parser.parse_args(argv)
    was_enabled = obs.enabled()
    events_were_enabled = events.events_enabled()
    _configure_observability(args)
    profile_out = getattr(args, "profile_out", None)
    profiler = None
    if profile_out is not None:
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        return _COMMANDS[args.command](args)
    finally:
        if profiler is not None:
            profiler.stop()
            Path(profile_out).write_text(profiler.collapsed())
            print(f"profile ({profiler.samples} samples) written to "
                  f"{profile_out}")
        # Don't leak flag-driven enablement into embedding processes
        # (tests call main() in-process).
        if not events_were_enabled and events.events_enabled():
            events.disable_events()
        if not was_enabled and obs.enabled():
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
