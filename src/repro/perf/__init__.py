"""Performance reference kernels and budget tooling.

:mod:`repro.perf.reference` keeps the pre-vectorization scalar
implementations of the pipeline's hot paths.  They are not dead code:
the equivalence tests (``tests/test_perf_equivalence.py``) hold the fast
kernels bit-identical to them, and the perf-budget harness
(``benchmarks/perf_budget.py``) measures the fast kernels *against* them
so the committed speedup budgets stay machine-portable.
"""

from repro.perf.reference import (
    add_chunk_scalar,
    assign_bins_scalar,
    consume_scalar,
    count_repeat_errors_scalar,
    neighbourhood_mean_scalar,
    row_bitmaps_scalar,
)

__all__ = [
    "add_chunk_scalar",
    "assign_bins_scalar",
    "consume_scalar",
    "count_repeat_errors_scalar",
    "neighbourhood_mean_scalar",
    "row_bitmaps_scalar",
]
