"""Scalar reference implementations of the hot-path kernels.

Each function here is the straightforward per-tuple / per-cell /
per-repeat formulation of a kernel that the library proper implements
with vectorised NumPy.  They exist for two reasons:

* **Correctness anchors.**  ``tests/test_perf_equivalence.py`` asserts
  the fast kernels produce *bit-identical* results to these on synthetic
  data, including edge bins and empty inputs.  A future "optimisation"
  that changes semantics fails loudly.
* **Perf baselines.**  ``benchmarks/perf_budget.py`` times fast kernel
  vs reference on the same machine in the same process, so the budget it
  enforces is a machine-portable *speedup ratio*, not a wall-clock
  number that breaks on slower CI runners.

None of these are called from pipeline code; keep them boring and
obviously correct rather than fast.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

import numpy as np

from repro.binning.bin_array import BinArray
from repro.binning.strategies import BinLayout
from repro.core.segmentation import Segmentation
from repro.data.sampling import repeat_rng, sample_indices
from repro.data.schema import Table


def assign_bins_scalar(layout: BinLayout, values: np.ndarray) -> np.ndarray:
    """Per-tuple bin assignment: one :func:`bisect.bisect_right` per value.

    Mirrors :meth:`repro.binning.strategies.BinLayout.assign` exactly —
    half-open bins, last bin closed above, out-of-range values clamped,
    NaN rejected.
    """
    edges = layout.edges.tolist()
    n_bins = layout.n_bins
    out = np.empty(len(values), dtype=np.int64)
    for position, value in enumerate(values):
        value = float(value)
        if np.isnan(value):
            raise ValueError(
                f"column {layout.attribute!r} contains NaN; clean the "
                "data before binning"
            )
        index = bisect_right(edges, value) - 1
        if index < 0:
            index = 0
        elif index > n_bins - 1:
            index = n_bins - 1
        out[position] = index
    return out


def add_chunk_scalar(bin_array: BinArray, x_bins: np.ndarray,
                     y_bins: np.ndarray, rhs_codes: np.ndarray) -> None:
    """Per-tuple scatter into the BinArray counters (the pre-vectorization
    accumulation loop)."""
    if not (len(x_bins) == len(y_bins) == len(rhs_codes)):
        raise ValueError("chunk arrays must have equal length")
    counts, totals = bin_array.counts, bin_array.totals
    single_target = bin_array.single_target
    target_code = bin_array.target_code
    for x, y, code in zip(x_bins, y_bins, rhs_codes):
        totals[x, y] += 1
        if single_target:
            if code == target_code:
                counts[x, y, 0] += 1
        else:
            counts[x, y, code] += 1
    bin_array.n_total += len(x_bins)


def remove_chunk_scalar(bin_array: BinArray, x_bins: np.ndarray,
                        y_bins: np.ndarray,
                        rhs_codes: np.ndarray) -> None:
    """Per-tuple inverse scatter: the reference for
    :meth:`repro.binning.bin_array.BinArray.remove_chunk`.

    Decrements one tuple at a time with a per-tuple underflow check, so
    an invalid removal fails on the exact offending tuple.  Unlike the
    vectorised check-then-apply path it mutates as it goes; callers
    comparing against :meth:`~repro.binning.bin_array.BinArray.remove_chunk`
    feed it valid removals only.
    """
    if not (len(x_bins) == len(y_bins) == len(rhs_codes)):
        raise ValueError("chunk arrays must have equal length")
    counts, totals = bin_array.counts, bin_array.totals
    single_target = bin_array.single_target
    target_code = bin_array.target_code
    for x, y, code in zip(x_bins, y_bins, rhs_codes):
        if totals[x, y] <= 0:
            raise ValueError(
                f"cell ({x}, {y}) has no tuples left to remove"
            )
        totals[x, y] -= 1
        if single_target:
            if code == target_code:
                if counts[x, y, 0] <= 0:
                    raise ValueError(
                        f"cell ({x}, {y}) has no target tuples left"
                    )
                counts[x, y, 0] -= 1
        else:
            if counts[x, y, code] <= 0:
                raise ValueError(
                    f"cell ({x}, {y}) holds no tuples of code {code}"
                )
            counts[x, y, code] -= 1
    bin_array.n_total -= len(x_bins)


def consume_scalar(binner, chunk: Table) -> None:
    """One Binner chunk through the scalar assignment + scatter path."""
    x_bins = assign_bins_scalar(
        binner.x_layout, chunk.column(binner.x_layout.attribute)
    )
    y_bins = assign_bins_scalar(
        binner.y_layout, chunk.column(binner.y_layout.attribute)
    )
    rhs_codes = binner.rhs_encoding.encode(chunk.column(binner.rhs_attribute))
    add_chunk_scalar(binner.bin_array, x_bins, y_bins, rhs_codes)


def count_repeat_errors_scalar(covered: np.ndarray, is_target: np.ndarray,
                               sample_size: int, seed: int,
                               repeat_ids: Sequence[int],
                               ) -> tuple[np.ndarray, np.ndarray]:
    """Per-repeat, per-tuple FP/FN counting (the pre-vectorization loop).

    Same sampling discipline as
    :func:`repro.core.verifier.count_repeat_errors` — repeat ``r`` draws
    from ``repeat_rng(seed, r)`` — so the counts must match it exactly.
    """
    n = len(covered)
    fp_counts = np.zeros(len(repeat_ids), dtype=np.int64)
    fn_counts = np.zeros(len(repeat_ids), dtype=np.int64)
    for position, repeat in enumerate(repeat_ids):
        indices = sample_indices(n, sample_size, repeat_rng(seed, repeat))
        false_positives = 0
        false_negatives = 0
        for index in indices:
            inside = bool(covered[index])
            wanted = bool(is_target[index])
            if inside and not wanted:
                false_positives += 1
            elif wanted and not inside:
                false_negatives += 1
        fp_counts[position] = false_positives
        fn_counts[position] = false_negatives
    return fp_counts, fn_counts


def neighbourhood_mean_scalar(values: np.ndarray,
                              radius: int = 1) -> np.ndarray:
    """Shift-and-add neighbourhood mean: ``(2r+1)^2`` grid passes.

    The original implementation of
    :func:`repro.core.smoothing.neighbourhood_mean`, kept as the oracle
    for the summed-area-table version.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D grid, got shape {values.shape}")
    if radius < 1:
        raise ValueError("radius must be at least 1")
    padded_sum = np.zeros_like(values)
    counts = np.zeros_like(values)
    n_x, n_y = values.shape
    for dx in range(-radius, radius + 1):
        if abs(dx) >= n_x:  # shift falls entirely off the grid
            continue
        for dy in range(-radius, radius + 1):
            if abs(dy) >= n_y:
                continue
            x_src = slice(max(0, -dx), min(n_x, n_x - dx))
            y_src = slice(max(0, -dy), min(n_y, n_y - dy))
            x_dst = slice(max(0, dx), min(n_x, n_x + dx))
            y_dst = slice(max(0, dy), min(n_y, n_y + dy))
            padded_sum[x_dst, y_dst] += values[x_src, y_src]
            counts[x_dst, y_dst] += 1.0
    return padded_sum / counts


def score_batch_scalar(segmentation: Segmentation, x_values,
                       y_values) -> np.ndarray:
    """Per-tuple, per-rule interval evaluation: the serving oracle.

    Mirrors :meth:`repro.serve.scorer.CompiledScorer.score_batch`
    exactly — first matching rule index in segmentation order (``-1``
    when no rule fires), closedness per each interval's
    ``closed_high``, NaN rejected like the binner rejects it.
    """
    x_values = np.asarray(x_values, dtype=np.float64)
    y_values = np.asarray(y_values, dtype=np.float64)
    if x_values.shape != y_values.shape:
        raise ValueError(
            f"x and y batches differ in shape: "
            f"{x_values.shape} vs {y_values.shape}"
        )
    rules = segmentation.rules
    out = np.full(len(x_values), -1, dtype=np.int32)
    for position, (x, y) in enumerate(zip(x_values, y_values)):
        if np.isnan(x):
            raise ValueError(
                f"column {segmentation.x_attribute!r} contains NaN; "
                "clean the data before scoring"
            )
        if np.isnan(y):
            raise ValueError(
                f"column {segmentation.y_attribute!r} contains NaN; "
                "clean the data before scoring"
            )
        for index, rule in enumerate(rules):
            x_iv, y_iv = rule.x_interval, rule.y_interval
            inside_x = x >= x_iv.low and (
                x <= x_iv.high if x_iv.closed_high else x < x_iv.high
            )
            inside_y = y >= y_iv.low and (
                y <= y_iv.high if y_iv.closed_high else y < y_iv.high
            )
            if inside_x and inside_y:
                out[position] = index
                break
    return out


def psi_scalar(expected, observed) -> float:
    """Per-bin PSI: the drift oracle for :func:`repro.obs.drift.psi`.

    Bit-identity notes: per-bin terms are computed with Python scalar
    arithmetic plus scalar ``np.log`` (which matches numpy's vectorised
    log elementwise, unlike ``math.log``), and the final reduction is
    ``np.sum`` over the term array so the summation *order* matches the
    vectorised path (numpy's pairwise summation differs from a naive
    left-to-right loop on large inputs).
    """
    from repro.obs.drift import PSI_EPSILON

    expected = np.asarray(expected, dtype=np.float64).ravel()
    observed = np.asarray(observed, dtype=np.float64).ravel()
    for side, values in (("expected", expected), ("observed", observed)):
        if values.size == 0:
            raise ValueError(f"{side} distribution has no bins")
        if any(value < 0 for value in values.tolist()):
            raise ValueError(f"{side} distribution has negative counts")
    if expected.size != observed.size:
        raise ValueError(
            f"distributions have different bin counts: {expected.size} "
            f"vs {observed.size}"
        )
    expected_total = float(np.sum(expected))
    observed_total = float(np.sum(observed))
    if expected_total <= 0.0:
        raise ValueError("expected distribution is empty (all counts zero)")
    if observed_total <= 0.0:
        raise ValueError("observed distribution is empty (all counts zero)")
    terms = np.empty(expected.size, dtype=np.float64)
    for index in range(expected.size):
        p = max(float(expected[index]) / expected_total, PSI_EPSILON)
        q = max(float(observed[index]) / observed_total, PSI_EPSILON)
        terms[index] = (q - p) * np.log(q / p)
    return float(np.sum(terms))


def js_divergence_scalar(expected, observed) -> float:
    """Per-bin Jensen-Shannon divergence (bits): oracle for
    :func:`repro.obs.drift.js_divergence`.

    Same bit-identity discipline as :func:`psi_scalar`: scalar per-bin
    terms (zero where the side's probability is zero, mirroring the
    ``0 * log 0`` limit), ``np.sum`` reductions in the same order as the
    vectorised implementation.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    observed = np.asarray(observed, dtype=np.float64).ravel()
    for side, values in (("expected", expected), ("observed", observed)):
        if values.size == 0:
            raise ValueError(f"{side} distribution has no bins")
        if any(value < 0 for value in values.tolist()):
            raise ValueError(f"{side} distribution has negative counts")
    if expected.size != observed.size:
        raise ValueError(
            f"distributions have different bin counts: {expected.size} "
            f"vs {observed.size}"
        )
    expected_total = float(np.sum(expected))
    observed_total = float(np.sum(observed))
    if expected_total <= 0.0:
        raise ValueError("expected distribution is empty (all counts zero)")
    if observed_total <= 0.0:
        raise ValueError("observed distribution is empty (all counts zero)")
    n_bins = expected.size
    p_terms = np.zeros(n_bins, dtype=np.float64)
    q_terms = np.zeros(n_bins, dtype=np.float64)
    for index in range(n_bins):
        p = float(expected[index]) / expected_total
        q = float(observed[index]) / observed_total
        midpoint = 0.5 * (p + q)
        if p > 0.0:
            p_terms[index] = p * np.log(p / midpoint)
        if q > 0.0:
            q_terms[index] = q * np.log(q / midpoint)
    nats = 0.5 * float(np.sum(p_terms)) + 0.5 * float(np.sum(q_terms))
    return nats / float(np.log(2.0))


def row_bitmaps_scalar(cells: np.ndarray) -> list[int]:
    """Per-cell row-mask construction: OR ``1 << j`` per set cell.

    The original implementation of
    :meth:`repro.core.grid.RuleGrid.row_bitmaps`, kept as the oracle for
    the packbits version.
    """
    cells = np.asarray(cells, dtype=bool)
    rows = []
    for i in range(cells.shape[0]):
        row_bits = 0
        for j in np.flatnonzero(cells[i]):
            row_bits |= 1 << int(j)
        rows.append(row_bits)
    return rows
