"""Saving and loading ARCS artefacts.

Two artefacts are worth persisting:

* a **segmentation** — the end product handed to users; serialised as
  JSON so it is diffable, versionable and consumable outside Python;
* a **BinArray** — the paper's re-mining asset: persisting it lets a
  later session change thresholds or criterion values without re-reading
  the source data (the counts, layouts and encoding round-trip through a
  compressed ``.npz``).

Formats are versioned; loaders reject unknown versions loudly rather
than guessing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

import repro

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import BinLayout
from repro.core.rules import ClusteredRule, GridRect, Interval
from repro.core.segmentation import Segmentation
from repro.data.summary import ReferenceProfile, reference_profile

SEGMENTATION_FORMAT = "arcs-segmentation/1"
BINARRAY_FORMAT = "arcs-binarray/1"


class PersistenceError(ValueError):
    """Raised when a file is not a valid persisted artefact."""


# ----------------------------------------------------------------------
# Segmentations (JSON)
# ----------------------------------------------------------------------
def _interval_to_dict(interval: Interval) -> dict:
    return {
        "low": interval.low,
        "high": interval.high,
        "closed_high": interval.closed_high,
    }


def _interval_from_dict(data: dict) -> Interval:
    return Interval(
        float(data["low"]), float(data["high"]),
        closed_high=bool(data["closed_high"]),
    )


def _rule_to_dict(rule: ClusteredRule) -> dict:
    payload = {
        "x_attribute": rule.x_attribute,
        "y_attribute": rule.y_attribute,
        "x_interval": _interval_to_dict(rule.x_interval),
        "y_interval": _interval_to_dict(rule.y_interval),
        "rhs_attribute": rule.rhs_attribute,
        "rhs_value": rule.rhs_value,
        "support": rule.support,
        "confidence": rule.confidence,
    }
    if rule.rect is not None:
        payload["rect"] = [
            rule.rect.x_lo, rule.rect.x_hi,
            rule.rect.y_lo, rule.rect.y_hi,
        ]
    return payload


def _rule_from_dict(data: dict) -> ClusteredRule:
    rect = None
    if "rect" in data:
        x_lo, x_hi, y_lo, y_hi = data["rect"]
        rect = GridRect(int(x_lo), int(x_hi), int(y_lo), int(y_hi))
    return ClusteredRule(
        x_attribute=data["x_attribute"],
        y_attribute=data["y_attribute"],
        x_interval=_interval_from_dict(data["x_interval"]),
        y_interval=_interval_from_dict(data["y_interval"]),
        rhs_attribute=data["rhs_attribute"],
        rhs_value=data["rhs_value"],
        support=float(data["support"]),
        confidence=float(data["confidence"]),
        rect=rect,
    )


def save_segmentation(segmentation: Segmentation,
                      path: str | Path, *,
                      bin_array: BinArray | None = None,
                      reference: ReferenceProfile | None = None) -> None:
    """Write a segmentation to ``path`` as versioned JSON.

    Alongside the rules, the artefact records provenance metadata
    (``library_version``, ``created_unix``) for registries and
    inspection tools; loaders tolerate its absence so pre-metadata
    artefacts keep loading.

    When the training ``bin_array`` (or a pre-distilled ``reference``
    profile) is supplied, its occupancy grid is embedded as a
    ``reference_profile`` block so the serving layer can score live
    traffic drift against the training distribution
    (:func:`segmentation_reference`).  Old artefacts without the block
    keep loading; serving then reports drift as unavailable.
    """
    if reference is None and bin_array is not None:
        reference = reference_profile(bin_array)
    payload = {
        "format": SEGMENTATION_FORMAT,
        "metadata": {
            "library_version": repro.__version__,
            "created_unix": time.time(),  # wall-clock: ok (artefact stamp)
        },
        "x_attribute": segmentation.x_attribute,
        "y_attribute": segmentation.y_attribute,
        "rhs_attribute": segmentation.rhs_attribute,
        "rhs_value": segmentation.rhs_value,
        "rules": [_rule_to_dict(rule) for rule in segmentation.rules],
    }
    if reference is not None:
        payload["reference_profile"] = reference.to_dict()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def _read_segmentation_payload(path: str | Path) -> dict:
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as error:
            raise PersistenceError(f"{path} is not valid JSON: {error}")
    found = payload.get("format") if isinstance(payload, dict) else None
    if found != SEGMENTATION_FORMAT:
        raise PersistenceError(
            f"{path} is not a {SEGMENTATION_FORMAT} file "
            f"(format={found!r})"
        )
    return payload


def segmentation_metadata(path: str | Path) -> dict:
    """The artefact's provenance metadata (empty for older artefacts).

    Validates the format tag like :func:`load_segmentation`, so feeding
    a foreign JSON file still fails loudly.
    """
    metadata = _read_segmentation_payload(path).get("metadata", {})
    return dict(metadata) if isinstance(metadata, dict) else {}


def segmentation_reference(path: str | Path) -> ReferenceProfile | None:
    """The training reference profile embedded in a segmentation
    artefact, or ``None`` for artefacts saved without one.

    Validates the format tag like :func:`load_segmentation`; a present
    but malformed ``reference_profile`` block raises
    :class:`PersistenceError` rather than silently disabling drift.
    """
    payload = _read_segmentation_payload(path)
    block = payload.get("reference_profile")
    if block is None:
        return None
    try:
        return ReferenceProfile.from_dict(block)
    except ValueError as error:
        raise PersistenceError(
            f"{path} has a malformed reference_profile block: {error}"
        ) from error


def load_segmentation(path: str | Path) -> Segmentation:
    """Read a segmentation previously written by
    :func:`save_segmentation`."""
    payload = _read_segmentation_payload(path)
    return Segmentation(
        rules=tuple(
            _rule_from_dict(rule) for rule in payload["rules"]
        ),
        x_attribute=payload["x_attribute"],
        y_attribute=payload["y_attribute"],
        rhs_attribute=payload["rhs_attribute"],
        rhs_value=payload["rhs_value"],
    )


# ----------------------------------------------------------------------
# BinArrays (npz)
# ----------------------------------------------------------------------
def save_bin_array(bin_array: BinArray, path: str | Path) -> None:
    """Write a BinArray (counts + layouts + encoding) to an ``.npz``.

    RHS values are stored as JSON so arbitrary hashable-but-serialisable
    values (strings, ints) survive; exotic value types should be encoded
    by the caller first.
    """
    metadata = {
        "format": BINARRAY_FORMAT,
        "x_attribute": bin_array.x_layout.attribute,
        "y_attribute": bin_array.y_layout.attribute,
        "rhs_attribute": bin_array.rhs_encoding.attribute,
        "rhs_values": list(bin_array.rhs_encoding.values),
        "target_code": bin_array.target_code,
        "n_total": bin_array.n_total,
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8
        ),
        x_edges=bin_array.x_layout.edges,
        y_edges=bin_array.y_layout.edges,
        counts=bin_array.counts,
        totals=bin_array.totals,
    )


def load_bin_array(path: str | Path) -> BinArray:
    """Read a BinArray previously written by :func:`save_bin_array`."""
    with np.load(path) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"]).decode())
        except (KeyError, ValueError) as error:
            raise PersistenceError(
                f"{path} is not a persisted BinArray: {error}"
            ) from None
        if metadata.get("format") != BINARRAY_FORMAT:
            raise PersistenceError(
                f"{path} has format {metadata.get('format')!r}, "
                f"expected {BINARRAY_FORMAT}"
            )
        bin_array = BinArray(
            x_layout=BinLayout(metadata["x_attribute"],
                               archive["x_edges"]),
            y_layout=BinLayout(metadata["y_attribute"],
                               archive["y_edges"]),
            rhs_encoding=CategoricalEncoding(
                metadata["rhs_attribute"],
                tuple(metadata["rhs_values"]),
            ),
            target_code=metadata["target_code"],
        )
        counts = archive["counts"]
        totals = archive["totals"]
        if counts.shape != bin_array.counts.shape:
            raise PersistenceError(
                f"count cube shape {counts.shape} does not match the "
                f"stored layouts {bin_array.counts.shape}"
            )
        bin_array.counts = counts.astype(np.int64)
        bin_array.totals = totals.astype(np.int64)
        bin_array.n_total = int(metadata["n_total"])
    return bin_array
