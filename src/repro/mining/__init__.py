"""Association rule mining substrate (paper Section 3.2).

:mod:`repro.mining.engine` is the paper's specialised algorithm: a single
scan of the BinArray emits every two-attribute rule above the thresholds,
and re-mining at new thresholds is a pure in-memory re-scan.  The classic
levelwise Apriori algorithm (:mod:`repro.mining.apriori`, over the itemset
machinery in :mod:`repro.mining.itemsets`) is the "any existing association
rule mining algorithm" the paper says could be used instead; the test suite
checks both produce identical rule sets on binned two-attribute data.
:mod:`repro.mining.quantitative` implements the Srikant-Agrawal range-rule
miner of the paper's related work ([22]), whose rule explosion motivates
clustering in the first place.
"""

from repro.mining.apriori import AprioriMiner, AssociationRule
from repro.mining.engine import mine_binned_rules, rule_pairs
from repro.mining.itemsets import ItemsetCounter, frequent_itemsets
from repro.mining.quantitative import (
    QuantitativeMiner,
    QuantRange,
    QuantRule,
)

__all__ = [
    "mine_binned_rules",
    "rule_pairs",
    "AprioriMiner",
    "AssociationRule",
    "ItemsetCounter",
    "frequent_itemsets",
    "QuantitativeMiner",
    "QuantRange",
    "QuantRule",
]
