"""The specialised single-pass rule engine (paper Section 3.2, Figure 3).

Every BinArray cell *is* a candidate association rule

``X = i AND Y = j => C = G_k``

with ``support = |(i, j, G_k)| / N`` and
``confidence = |(i, j, G_k)| / |(i, j)|``.  Mining is therefore a single
scan over the occupied cells checking both thresholds — no candidate
generation, no extra data passes, and because the BinArray stays resident,
"changing thresholds is nearly instantaneous".

The scan is vectorised here: both threshold tests are array comparisons
and the qualifying cells come out of one ``argwhere``.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.binning.bin_array import BinArray
from repro.core.rules import BinnedRule
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


def rule_pairs(bin_array: BinArray, rhs_code: int, min_support: float,
               min_confidence: float) -> list[tuple[int, int]]:
    """The qualifying ``(i, j)`` bin pairs (the output of paper Figure 3).

    ``min_support`` is a fraction of the total tuple count; the engine
    converts it to the paper's ``min_support_count = N * min_support`` and
    compares counts, so ties behave exactly as the pseudocode's
    ``>= min_support_count`` test.
    """
    _check_thresholds(min_support, min_confidence)
    with trace("mine", min_support=min_support,
               min_confidence=min_confidence) as span:
        counts = bin_array.count_grid(rhs_code)
        min_count = bin_array.n_total * min_support
        with np.errstate(invalid="ignore", divide="ignore"):
            confidence = np.where(
                bin_array.totals > 0,
                counts / bin_array.totals.astype(np.float64),
                0.0,
            )
        qualifying = (counts >= min_count) & (counts > 0) & (
            confidence >= min_confidence
        )
        pairs = [(int(i), int(j)) for i, j in np.argwhere(qualifying)]
        metrics.inc("engine.scans")
        metrics.inc("engine.cells_qualified", len(pairs))
        span.set("cells_qualified", len(pairs))
        logger.debug(
            "engine scan: %d/%d cells qualify at support>=%g "
            "confidence>=%g", len(pairs), counts.size, min_support,
            min_confidence,
        )
    return pairs


def mine_binned_rules(bin_array: BinArray, rhs_code: int,
                      min_support: float,
                      min_confidence: float) -> list[BinnedRule]:
    """Mine full :class:`BinnedRule` objects (pairs plus their measures).

    The measures are gathered for all qualifying cells at once (two fancy
    index reads plus two array divisions) rather than one
    ``cell_support``/``cell_confidence`` lookup pair per rule — the same
    divisions on the same operands, so the floats are bit-identical, but
    the optimizer's repeated re-minings stay off the per-cell Python path.
    """
    _check_thresholds(min_support, min_confidence)
    rhs_value = bin_array.rhs_encoding.values[rhs_code]
    pairs = rule_pairs(bin_array, rhs_code, min_support, min_confidence)
    if not pairs:
        return []
    ii = np.fromiter((i for i, _ in pairs), dtype=np.intp, count=len(pairs))
    jj = np.fromiter((j for _, j in pairs), dtype=np.intp, count=len(pairs))
    counts = bin_array.count_grid(rhs_code)[ii, jj].astype(np.float64)
    totals = bin_array.totals[ii, jj].astype(np.float64)
    supports = counts / bin_array.n_total
    confidences = counts / totals  # qualifying cells are never empty
    return [
        BinnedRule(
            x_bin=int(i),
            y_bin=int(j),
            rhs_value=rhs_value,
            support=float(support),
            confidence=float(confidence),
        )
        for i, j, support, confidence in zip(
            ii, jj, supports, confidences
        )
    ]


def _check_thresholds(min_support: float, min_confidence: float) -> None:
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support {min_support} outside [0, 1]")
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError(f"min_confidence {min_confidence} outside [0, 1]")
