"""A from-scratch Apriori association rule miner.

This is the "any of the existing association rule mining algorithms" the
paper says ARCS could plug in instead of its specialised engine.  It is
used two ways in this reproduction:

* as a correctness oracle — on binned two-attribute data the rule set
  ``{X=i AND Y=j => C=g}`` from Apriori must match the specialised
  engine's output exactly (tested in the integration suite);
* as the ablation baseline for re-mining cost — Apriori re-scans its
  transactions for every new threshold pair, while the BinArray engine
  re-mines from memory (benchmarked in experiment A2).

Rules are general ``X => Y`` over item sets; :meth:`AprioriMiner.mine`
returns every rule whose support and confidence clear the thresholds, and
:meth:`AprioriMiner.mine_for_rhs` restricts to single-item consequents
matching a target item (the ARCS use case).
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable

from repro.mining.itemsets import ItemsetCounter, frequent_itemsets

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class AssociationRule:
    """A general association rule ``lhs => rhs`` over item sets."""

    lhs: frozenset
    rhs: frozenset
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise ValueError("both rule sides must be non-empty")
        if self.lhs & self.rhs:
            raise ValueError("rule sides must be disjoint")

    def __str__(self) -> str:
        lhs = " AND ".join(str(item) for item in sorted(self.lhs, key=repr))
        rhs = " AND ".join(str(item) for item in sorted(self.rhs, key=repr))
        return (
            f"{lhs} => {rhs} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f})"
        )


@dataclass
class AprioriMiner:
    """Levelwise Apriori over a fixed transaction list.

    Parameters
    ----------
    transactions:
        The item sets to mine.  Kept resident — unlike ARCS, Apriori's
        re-mining cost is proportional to the data, which is exactly the
        contrast the paper draws.
    max_itemset_size:
        Optional cap on itemset size (3 suffices for two-attribute rules).
    """

    counter: ItemsetCounter
    max_itemset_size: int | None = None

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Iterable[Hashable]],
        max_itemset_size: int | None = None,
    ) -> "AprioriMiner":
        return cls(
            counter=ItemsetCounter.from_transactions(transactions),
            max_itemset_size=max_itemset_size,
        )

    def mine(self, min_support: float,
             min_confidence: float) -> list[AssociationRule]:
        """All rules above both thresholds, from all frequent itemsets.

        For each frequent itemset of size >= 2, every non-empty proper
        subset is tried as an antecedent; confidence comes from the stored
        supports, so no extra data passes happen after counting.
        """
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence {min_confidence} outside [0, 1]"
            )
        supports = frequent_itemsets(
            self.counter, min_support, max_size=self.max_itemset_size
        )
        rules = []
        for itemset, support in supports.items():
            if len(itemset) < 2:
                continue
            items = sorted(itemset, key=repr)
            for lhs_size in range(1, len(items)):
                for lhs_items in combinations(items, lhs_size):
                    lhs = frozenset(lhs_items)
                    lhs_support = supports.get(lhs)
                    if lhs_support is None or lhs_support == 0.0:
                        continue
                    confidence = support / lhs_support
                    if confidence >= min_confidence:
                        rules.append(
                            AssociationRule(
                                lhs=lhs,
                                rhs=itemset - lhs,
                                support=support,
                                confidence=confidence,
                            )
                        )
        logger.debug(
            "apriori: %d frequent itemsets -> %d rules at "
            "support>=%g confidence>=%g",
            len(supports), len(rules), min_support, min_confidence,
        )
        return rules

    def mine_for_rhs(self, rhs_item: Hashable, min_support: float,
                     min_confidence: float) -> list[AssociationRule]:
        """Rules whose consequent is exactly ``{rhs_item}`` (the ARCS
        segmentation-criterion case)."""
        return [
            rule for rule in self.mine(min_support, min_confidence)
            if rule.rhs == frozenset([rhs_item])
        ]


def table_transactions(columns: dict) -> list[frozenset]:
    """Turn column arrays into ``(attribute, value)``-item transactions.

    The generalisation of market baskets to record data from the paper's
    introduction: each tuple becomes the set of its ``attribute = value``
    items.
    """
    names = list(columns)
    if not names:
        return []
    length = len(columns[names[0]])
    transactions = []
    for i in range(length):
        transactions.append(
            frozenset((name, columns[name][i]) for name in names)
        )
    return transactions
