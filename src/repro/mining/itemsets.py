"""Frequent itemset machinery for the generic Apriori miner.

Transactions are frozensets of hashable *items*; for tuple-oriented data an
item is an ``(attribute, value)`` pair, mirroring the paper's
``attribute = value`` equalities.  The levelwise search follows Agrawal &
Srikant: candidates of size k are joins of frequent (k-1)-itemsets sharing
a (k-2)-prefix, pruned by the downward-closure property before any support
counting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Hashable, Iterable, Sequence

Itemset = frozenset


@dataclass
class ItemsetCounter:
    """Counts itemset occurrences over a transaction list.

    Keeps the transactions so multiple counting passes (one per levelwise
    round) do not re-materialise them.
    """

    transactions: list[frozenset] = field(default_factory=list)

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Iterable[Hashable]]
    ) -> "ItemsetCounter":
        return cls([frozenset(t) for t in transactions])

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    def count(self, candidates: Sequence[frozenset]) -> dict[frozenset, int]:
        """Count how many transactions contain each candidate itemset."""
        counts: dict[frozenset, int] = {c: 0 for c in candidates}
        if not candidates:
            return counts
        size = len(next(iter(candidates)))
        # Index candidates by one member item so each transaction only
        # tests candidates it could possibly contain.
        by_item: dict[Hashable, list[frozenset]] = defaultdict(list)
        for candidate in candidates:
            by_item[min(candidate, key=repr)].append(candidate)
        for transaction in self.transactions:
            if len(transaction) < size:
                continue
            seen: set[frozenset] = set()
            for item in transaction:
                for candidate in by_item.get(item, ()):
                    if candidate not in seen and candidate <= transaction:
                        counts[candidate] += 1
                        seen.add(candidate)
        return counts

    def support(self, itemset: frozenset) -> float:
        """Exact support of one itemset (fraction of transactions)."""
        if not self.transactions:
            return 0.0
        hits = sum(1 for t in self.transactions if itemset <= t)
        return hits / len(self.transactions)


def generate_candidates(frequent: Sequence[frozenset]) -> list[frozenset]:
    """Apriori-gen: join frequent k-itemsets sharing a (k-1)-prefix, then
    prune candidates with any infrequent k-subset."""
    if not frequent:
        return []
    k = len(next(iter(frequent)))
    frequent_set = set(frequent)
    ordered = [tuple(sorted(itemset, key=repr)) for itemset in frequent]
    # Sort by repr so mixed-type items (e.g. ("X", 3) vs ("X", "a")) never
    # hit Python's cross-type comparison error; equal prefixes still group
    # adjacently, which is all the join step needs.
    ordered.sort(key=lambda items: tuple(repr(item) for item in items))
    candidates = []
    for a_index in range(len(ordered)):
        for b_index in range(a_index + 1, len(ordered)):
            a, b = ordered[a_index], ordered[b_index]
            if a[:-1] != b[:-1]:
                break  # sorted order: no later b shares the prefix
            candidate = frozenset(a) | frozenset(b)
            if len(candidate) != k + 1:
                continue
            subsets_frequent = all(
                frozenset(subset) in frequent_set
                for subset in combinations(sorted(candidate, key=repr), k)
            )
            if subsets_frequent:
                candidates.append(candidate)
    return candidates


def frequent_itemsets(counter: ItemsetCounter, min_support: float,
                      max_size: int | None = None) -> dict[frozenset, float]:
    """All itemsets with support >= ``min_support``, mapped to support.

    ``max_size`` caps the levelwise search (the ARCS cross-check only needs
    size-3 itemsets: two LHS items plus the RHS item).
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support {min_support} outside [0, 1]")
    n = counter.n_transactions
    if n == 0:
        return {}
    min_count = min_support * n

    # Level 1: singleton items.
    item_counts: dict[Hashable, int] = defaultdict(int)
    for transaction in counter.transactions:
        for item in transaction:
            item_counts[item] += 1
    current = {
        frozenset([item]): count
        for item, count in item_counts.items()
        if count >= min_count
    }
    result: dict[frozenset, float] = {
        itemset: count / n for itemset, count in current.items()
    }

    size = 1
    while current and (max_size is None or size < max_size):
        candidates = generate_candidates(list(current))
        if not candidates:
            break
        counts = counter.count(candidates)
        current = {
            itemset: count
            for itemset, count in counts.items()
            if count >= min_count
        }
        for itemset, count in current.items():
            result[itemset] = count / n
        size += 1
    return result
