"""Quantitative association rule mining (Srikant & Agrawal, SIGMOD'96).

The paper's closest related work ([22]) mines rules whose LHS items are
*ranges* over binned quantitative attributes, e.g.
``30 <= age < 40 AND 50k <= salary < 75k => group = A``, using
equi-depth base intervals, merges of adjacent intervals up to a maximum
support, and a "greater-than-expected-value" interest measure to prune
rules that merely restate their generalisations.

This implementation exists for two reasons:

* it is the *motivating problem*: on the paper's data it emits hundreds
  of overlapping range rules where ARCS produces three clusters — the
  intro's "hundreds or thousands of rules" made concrete (benchmarked in
  A4);
* it is a second, independent miner whose specialisations ARCS's
  clusters should agree with, exercised in the tests.

Counting is exact and vectorised: per attribute a (bins,) histogram pair
(total, target) with prefix sums gives any range's counts in O(1); per
attribute pair a (bins, bins) 2-D histogram with 2-D prefix sums does
the same for range boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.binning.strategies import equi_depth_layout
from repro.data.schema import Table


@dataclass(frozen=True)
class QuantRange:
    """A contiguous bin range of one attribute, with value bounds."""

    attribute: str
    first_bin: int
    last_bin: int
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.last_bin < self.first_bin:
            raise ValueError("empty bin range")

    @property
    def n_bins(self) -> int:
        return self.last_bin - self.first_bin + 1

    def __str__(self) -> str:
        return f"{self.low:g} <= {self.attribute} < {self.high:g}"


@dataclass(frozen=True)
class QuantRule:
    """A quantitative association rule: conjunction of ranges => RHS."""

    ranges: tuple[QuantRange, ...]
    rhs_attribute: str
    rhs_value: object
    support: float
    confidence: float
    interest: float

    def __str__(self) -> str:
        lhs = " AND ".join(str(r) for r in self.ranges)
        return (
            f"{lhs} => {self.rhs_attribute} = {self.rhs_value} "
            f"(support={self.support:.4f}, "
            f"confidence={self.confidence:.3f}, "
            f"interest={self.interest:.2f})"
        )


class QuantitativeMiner:
    """Range-rule miner over equi-depth binned quantitative attributes.

    Parameters
    ----------
    table:
        Source data.
    attributes:
        The quantitative LHS attributes to mine over.
    rhs_attribute:
        The categorical consequent attribute.
    n_bins:
        Equi-depth base intervals per attribute (paper [22] leaves this
        to a partial-completeness argument; 16 is a practical default).
    max_range_fraction:
        Ranges wider than this fraction of the bins are not extended —
        [22]'s *maximum support* guard against ranges that cover
        everything.
    """

    def __init__(self, table: Table, attributes: Sequence[str],
                 rhs_attribute: str, n_bins: int = 16,
                 max_range_fraction: float = 0.75):
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        if not 0.0 < max_range_fraction <= 1.0:
            raise ValueError("max_range_fraction must be in (0, 1]")
        self.table = table
        self.attributes = tuple(attributes)
        self.rhs_attribute = rhs_attribute
        self.max_range_fraction = max_range_fraction
        self.n = len(table)

        self._layouts = {}
        self._codes = {}
        for name in self.attributes:
            layout = equi_depth_layout(
                name, table.column(name), n_bins
            )
            self._layouts[name] = layout
            self._codes[name] = layout.assign(table.column(name))

    # ------------------------------------------------------------------
    # Counting structures
    # ------------------------------------------------------------------
    def _target_mask(self, target_value) -> np.ndarray:
        labels = self.table.column(self.rhs_attribute)
        return np.asarray(labels == target_value)

    def _prefix_1d(self, attribute: str,
                   target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Prefix sums of (total, target) histograms over one attribute;
        index k holds counts of bins ``0..k-1``."""
        n_bins = self._layouts[attribute].n_bins
        codes = self._codes[attribute]
        total = np.bincount(codes, minlength=n_bins)
        hits = np.bincount(codes[target], minlength=n_bins)
        return (
            np.concatenate([[0], np.cumsum(total)]),
            np.concatenate([[0], np.cumsum(hits)]),
        )

    def _prefix_2d(self, attr_a: str, attr_b: str,
                   target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """2-D prefix sums over an attribute pair."""
        bins_a = self._layouts[attr_a].n_bins
        bins_b = self._layouts[attr_b].n_bins
        flat = self._codes[attr_a] * bins_b + self._codes[attr_b]
        total = np.bincount(flat, minlength=bins_a * bins_b)
        hits = np.bincount(flat[target], minlength=bins_a * bins_b)
        total = total.reshape(bins_a, bins_b)
        hits = hits.reshape(bins_a, bins_b)

        def prefix(matrix: np.ndarray) -> np.ndarray:
            padded = np.zeros(
                (matrix.shape[0] + 1, matrix.shape[1] + 1),
                dtype=np.int64,
            )
            padded[1:, 1:] = matrix.cumsum(axis=0).cumsum(axis=1)
            return padded

        return prefix(total), prefix(hits)

    @staticmethod
    def _box_count(prefix: np.ndarray, a_lo: int, a_hi: int,
                   b_lo: int, b_hi: int) -> int:
        return int(
            prefix[a_hi + 1, b_hi + 1] - prefix[a_lo, b_hi + 1]
            - prefix[a_hi + 1, b_lo] + prefix[a_lo, b_lo]
        )

    def _ranges_of(self, attribute: str) -> list[QuantRange]:
        layout = self._layouts[attribute]
        max_span = max(1, int(self.max_range_fraction * layout.n_bins))
        ranges = []
        for first in range(layout.n_bins):
            for last in range(first,
                              min(first + max_span, layout.n_bins)):
                low, high = layout.span_interval(first, last)
                ranges.append(
                    QuantRange(attribute, first, last, low, high)
                )
        return ranges

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def mine(self, target_value, min_support: float,
             min_confidence: float,
             min_interest: float | None = 1.1) -> list[QuantRule]:
        """Mine one- and two-attribute range rules for one RHS value.

        ``min_interest`` applies [22]'s greater-than-expected measure:
        a rule survives only if its support exceeds ``min_interest``
        times the support *expected from its closest generalisation*
        (the rule with each range widened to the whole attribute,
        scaled by the fraction of tuples the range keeps).  ``None``
        disables interest pruning, which is how the rule explosion the
        paper's intro describes becomes visible.
        """
        if not 0.0 <= min_support <= 1.0:
            raise ValueError("min_support outside [0, 1]")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence outside [0, 1]")
        target = self._target_mask(target_value)
        overall_target_support = float(target.sum()) / self.n
        rules: list[QuantRule] = []

        frequent_single: dict[str, list[QuantRange]] = {}
        for attribute in self.attributes:
            prefix_total, prefix_hits = self._prefix_1d(
                attribute, target
            )
            kept = []
            for candidate in self._ranges_of(attribute):
                covered = int(
                    prefix_total[candidate.last_bin + 1]
                    - prefix_total[candidate.first_bin]
                )
                hits = int(
                    prefix_hits[candidate.last_bin + 1]
                    - prefix_hits[candidate.first_bin]
                )
                rule = self._build_rule(
                    (candidate,), covered, hits, target_value,
                    overall_target_support,
                )
                if rule is None:
                    continue
                support_ok = rule.support >= min_support
                if support_ok:
                    kept.append(candidate)
                if (support_ok and rule.confidence >= min_confidence
                        and self._interesting(rule, min_interest)):
                    rules.append(rule)
            frequent_single[attribute] = kept

        for attr_a, attr_b in combinations(self.attributes, 2):
            if not (frequent_single[attr_a]
                    and frequent_single[attr_b]):
                continue
            prefix_total, prefix_hits = self._prefix_2d(
                attr_a, attr_b, target
            )
            for range_a in frequent_single[attr_a]:
                for range_b in frequent_single[attr_b]:
                    covered = self._box_count(
                        prefix_total,
                        range_a.first_bin, range_a.last_bin,
                        range_b.first_bin, range_b.last_bin,
                    )
                    hits = self._box_count(
                        prefix_hits,
                        range_a.first_bin, range_a.last_bin,
                        range_b.first_bin, range_b.last_bin,
                    )
                    rule = self._build_rule(
                        (range_a, range_b), covered, hits,
                        target_value, overall_target_support,
                    )
                    if rule is None:
                        continue
                    if (rule.support >= min_support
                            and rule.confidence >= min_confidence
                            and self._interesting(rule, min_interest)):
                        rules.append(rule)

        rules.sort(key=lambda rule: (-rule.support, -rule.confidence))
        return rules

    def _build_rule(self, ranges: tuple[QuantRange, ...], covered: int,
                    hits: int, target_value,
                    overall_target_support: float) -> QuantRule | None:
        if covered == 0 or hits == 0:
            return None
        support = hits / self.n
        confidence = hits / covered
        # Expected support under the closest generalisation: the whole
        # domain rule's target support scaled by the fraction of tuples
        # the LHS ranges keep (independence assumption, as in [22]).
        expected = overall_target_support * (covered / self.n)
        interest = support / expected if expected > 0 else float("inf")
        return QuantRule(
            ranges=ranges,
            rhs_attribute=self.rhs_attribute,
            rhs_value=target_value,
            support=support,
            confidence=confidence,
            interest=interest,
        )

    @staticmethod
    def _interesting(rule: QuantRule,
                     min_interest: float | None) -> bool:
        if min_interest is None:
            return True
        return rule.interest >= min_interest
