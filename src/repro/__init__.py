"""ARCS — Association Rule Clustering System.

A full reproduction of Lent, Swami and Widom, *Clustering Association
Rules* (ICDE 1997): mining clustered two-attribute association rules that
segment large tuple-oriented databases, built around the BitOp geometric
clustering algorithm, a single-pass specialised rule engine over a
resident BinArray, low-pass grid smoothing, dynamic pruning, a sampled
verifier and an MDL-guided heuristic threshold optimizer.

Quick start::

    import repro

    config = repro.SyntheticConfig(n_tuples=50_000, function_id=2,
                                   perturbation=0.05)
    table = repro.generate_synthetic(config)
    result = repro.ARCS().fit(table, "age", "salary", "group", "A")
    print(result.segmentation.describe())

Subpackages: :mod:`repro.core` (ARCS + BitOp), :mod:`repro.binning`,
:mod:`repro.mining`, :mod:`repro.data`, :mod:`repro.baselines` (C4.5),
:mod:`repro.analysis`, :mod:`repro.extensions`, :mod:`repro.viz`,
:mod:`repro.obs` (tracing / metrics / run reports), and
:mod:`repro.serve` (model registry, compiled scorer and the HTTP
prediction service behind ``arcs serve``).

The library logs through standard :mod:`logging` loggers named after
their modules (``repro.core.optimizer``, ``repro.binning.binner``, ...)
at DEBUG/INFO and never configures handlers itself — the package root
carries a :class:`logging.NullHandler`, so output appears only when the
application opts in (e.g. ``logging.basicConfig(level="INFO")`` or the
CLI's ``--log-level``).
"""

import logging as _logging

from repro.core.segmentation import Segmentation
from repro.core.arcs import ARCS, ARCSConfig, ARCSResult
from repro.core.bitop import BitOpClusterer
from repro.core.clusterer import ClustererConfig, GridClusterer
from repro.core.mdl import MDLWeights, mdl_cost
from repro.core.optimizer import OptimizerConfig
from repro.core.rules import ClusteredRule, GridRect, Interval
from repro.core.verifier import VerificationReport, Verifier
from repro.data.schema import AttributeSpec, Table
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro import obs
from repro.obs.report import RunReport

# Library convention: a NullHandler on the package root so importing
# applications control whether (and how) repro logs anything.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.1.0"

__all__ = [
    "ARCS",
    "ARCSConfig",
    "ARCSResult",
    "AttributeSpec",
    "BitOpClusterer",
    "ClustererConfig",
    "ClusteredRule",
    "GridClusterer",
    "GridRect",
    "Interval",
    "MDLWeights",
    "mdl_cost",
    "OptimizerConfig",
    "RunReport",
    "Segmentation",
    "SyntheticConfig",
    "Table",
    "VerificationReport",
    "Verifier",
    "generate_synthetic",
    "obs",
    "__version__",
]
