"""Prometheus text-format exposition of the metrics registry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot`
payload (or a :class:`~repro.obs.report.RunReport`'s ``metrics`` dict —
the formats are identical) into the Prometheus text exposition format
(version 0.0.4), so ``arcs serve`` can answer
``GET /metrics?format=prometheus`` and any report can be scraped or
pushed.

Name mapping follows the Prometheus conventions:

* dots become underscores and everything is prefixed with the
  ``arcs_`` namespace (``serve.request_seconds`` →
  ``arcs_serve_request_seconds``);
* counters gain the ``_total`` suffix;
* histograms expand to ``_bucket{le="..."}`` series (cumulative,
  ``+Inf`` last) plus ``_sum`` and ``_count``;
* labels pass through verbatim — the snapshot's flattened
  ``name{key="value"}`` keys already use Prometheus label syntax.

``# HELP`` text comes from the checked-in catalogue
(:mod:`repro.obs.catalogue`) when the metric is declared there.

:func:`parse_prometheus` is the matching tiny parser: it validates the
line grammar strictly enough for tests and the CI smoke job to assert
on scraped output without a third-party client.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry, parse_series_key

__all__ = [
    "CONTENT_TYPE",
    "PrometheusParseError",
    "parse_prometheus",
    "render_prometheus",
    "render_registry",
]

#: The content type Prometheus scrapers expect for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

NAMESPACE = "arcs"

_NAME_OK = re.compile(r"\A[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE_RE = re.compile(
    r"\A(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\Z"
)


def _mangle(name: str) -> str:
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name.replace(".", "_"))
    out = f"{NAMESPACE}_{flat}"
    if not _NAME_OK.match(out):  # pragma: no cover - mangling guarantees
        raise ValueError(f"cannot express metric name {name!r}")
    return out


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None,
               ) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            key,
            str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"),
        )
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _help_texts() -> dict[str, str]:
    """Catalogue descriptions keyed by base metric name (labels and
    ``{...}`` templates stripped)."""
    from repro.obs import catalogue

    return {
        name.split("{")[0]: meaning
        for name, (_kind, meaning) in sorted(catalogue.METRICS.items())
    }


def render_prometheus(snapshot: dict) -> str:
    """Render one metrics snapshot as Prometheus text format."""
    helps = _help_texts()
    lines: list[str] = []
    families: dict[str, list[tuple[str, dict, object]]] = {}

    def family(kind: str, key: str, value) -> None:
        name, labels = parse_series_key(key)
        families.setdefault(f"{kind}\x00{name}", []).append(
            (name, labels, value)
        )

    for key, value in snapshot.get("counters", {}).items():
        family("counter", key, value)
    for key, value in snapshot.get("gauges", {}).items():
        family("gauge", key, value)
    for key, summary in snapshot.get("histograms", {}).items():
        family("histogram", key, summary)

    for packed in sorted(families):
        kind, name = packed.split("\x00", 1)
        series = families[packed]
        base = _mangle(name)
        exposed = base + "_total" if kind == "counter" else base
        help_text = helps.get(name)
        if help_text is not None:
            lines.append(f"# HELP {exposed} {help_text}")
        lines.append(f"# TYPE {exposed} {kind}")
        for _, labels, value in series:
            if kind == "histogram":
                summary = value
                for bound, cumulative in summary.get("buckets", ()):
                    le = ("+Inf" if bound == "+Inf"
                          else _format_value(float(bound)))
                    lines.append(
                        f"{base}_bucket"
                        f"{_label_str(labels, {'le': le})} {cumulative}"
                    )
                lines.append(
                    f"{base}_sum{_label_str(labels)} "
                    f"{_format_value(summary['total'])}"
                )
                lines.append(
                    f"{base}_count{_label_str(labels)} "
                    f"{summary['count']}"
                )
            else:
                lines.append(
                    f"{exposed}{_label_str(labels)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry: MetricsRegistry | None = None) -> str:
    """Render a registry (default: the active one) as Prometheus text."""
    if registry is None:
        from repro.obs import metrics

        registry = metrics.active()
    if registry is None:
        return "# metrics collection is disabled\n"
    return render_prometheus(registry.snapshot())


class PrometheusParseError(ValueError):
    """The scraped payload is not valid Prometheus text format."""


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse Prometheus text format into ``{family: info}``.

    ``info`` holds ``kind`` (from ``# TYPE``, when present), ``help``
    and ``samples`` — a list of ``(name, labels, value)`` tuples where
    ``name`` includes any ``_bucket``/``_sum``/``_count`` suffix.  The
    grammar is checked strictly enough to catch malformed names, label
    syntax and non-numeric values; this is the validator the CI smoke
    job runs against a live scrape.
    """
    families: dict[str, dict] = {}

    def info(name: str) -> dict:
        return families.setdefault(
            name, {"kind": None, "help": None, "samples": []}
        )

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise PrometheusParseError(
                    f"line {lineno}: malformed HELP line: {raw!r}"
                )
            info(parts[2])["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                raise PrometheusParseError(
                    f"line {lineno}: malformed TYPE line: {raw!r}"
                )
            info(parts[2])["kind"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(
                f"line {lineno}: malformed sample line: {raw!r}"
            )
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for found in re.finditer(
                    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                    r'"(?P<value>(?:[^"\\]|\\.)*)"(?:,|\Z)', raw_labels):
                labels[found.group("key")] = found.group("value")
                consumed = found.end()
            if consumed != len(raw_labels):
                raise PrometheusParseError(
                    f"line {lineno}: malformed labels: {raw_labels!r}"
                )
        raw_value = match.group("value")
        if raw_value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(raw_value)
            except ValueError:
                raise PrometheusParseError(
                    f"line {lineno}: non-numeric sample value "
                    f"{raw_value!r}"
                ) from None
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)\Z", "", name)
        target = base if base in families else name
        info(target)["samples"].append((name, labels, raw_value))
    return families
