"""Chrome trace-event export: span trees as inspectable timelines.

The span trees recorded by :mod:`repro.obs.tracing` serialize to JSON,
but reading nested durations by eye does not scale past a handful of
optimizer trials.  :func:`chrome_trace` converts a
:class:`~repro.obs.report.RunReport` (or a raw :class:`Span` tree) into
the Chrome trace-event format — a ``{"traceEvents": [...]}`` document
of complete (``"ph": "X"``) events with microsecond timestamps — which
loads directly in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  The CLI writes it with ``--trace-out trace.json``
on any command that produces a run report.

Timestamps: spans record their start on the monotonic clock
(``Span.started``, exported as ``started_seconds``).  Events are laid
out relative to the root span's start.  Older reports serialized before
start times were exported fall back to *stacked* layout — each child
starts where its previous sibling ended — which preserves durations and
nesting but not the gaps between siblings.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracing import Span

__all__ = ["chrome_trace", "chrome_trace_events", "write_chrome_trace"]


def _root_span(source) -> Span | None:
    """Accept a RunReport, a serialized span dict, or a Span."""
    if source is None:
        return None
    if isinstance(source, Span):
        return source
    if isinstance(source, dict):
        return Span.from_dict(source)
    tree = getattr(source, "span_tree", None)
    if callable(tree):
        return tree()
    raise TypeError(
        f"cannot export {type(source).__name__}; expected a RunReport, "
        "Span, or serialized span dict"
    )


def chrome_trace_events(root: Span, pid: int = 0,
                        tid: int = 0) -> list[dict]:
    """Flatten one span tree into a list of complete trace events."""
    events: list[dict] = []
    have_starts = all(
        span.started is not None for _, span in root.walk()
    )
    base = root.started if have_starts else 0.0

    def emit(span: Span, synthetic_start: float) -> None:
        start = (span.started - base if have_starts
                 else synthetic_start)
        duration = span.duration or 0.0
        event = {
            "name": span.name,
            "cat": "arcs",
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if span.attributes:
            event["args"] = dict(span.attributes)
        events.append(event)
        child_start = start
        for child in span.children:
            emit(child, child_start)
            child_start += child.duration or 0.0

    emit(root, 0.0)
    return events


def chrome_trace(source, process_name: str = "arcs") -> dict:
    """A complete Chrome trace-event document for one run.

    ``source`` is a :class:`~repro.obs.report.RunReport`, a
    :class:`Span`, or a serialized span dict; a report's name labels the
    process in the trace viewer.  A report without a span tree (tracing
    was disabled) raises :class:`ValueError` — there is nothing to draw.
    """
    root = _root_span(
        source.trace if hasattr(source, "trace")
        and not isinstance(source, Span) else source
    )
    if root is None:
        raise ValueError(
            "run report has no span tree; re-run with tracing enabled "
            "(--trace / --trace-out)"
        )
    name = getattr(source, "name", None) or root.name or process_name
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": f"{process_name}: {name}"},
    }]
    events.extend(chrome_trace_events(root))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, source,
                       process_name: str = "arcs") -> None:
    """Serialize :func:`chrome_trace` to ``path`` as indented JSON."""
    document = chrome_trace(source, process_name=process_name)
    Path(path).write_text(
        json.dumps(document, indent=2, default=str) + "\n"
    )
