"""Structured JSONL event logs: one machine-readable line per event.

Where metrics aggregate and spans time, **events** record the
individual occurrences an operator wants to tail or load into an
analysis tool: one access-log event per served request, one stage event
per pipeline span.  Each event is a single JSON object on its own line
(JSONL), so ``tail -f``, ``jq`` and log shippers all work unmodified::

    {"ts": 1754380800.123, "type": "request", "endpoint": "predict",
     "status": 200, "seconds": 0.0004}

Every record also carries a ``pid`` field (and a ``worker`` index when
:func:`set_worker_identity` has named this process), so N forked serve
workers appending to one ``--events-out`` path stay attributable line
by line.  When the serving layer has bound a request id to the current
context (:func:`set_request_id`), it is attached as ``request_id`` —
the same value the client saw in the ``X-Arcs-Request-Id`` response
header, which makes an access-log line, a ``drift_alert`` and a
``shed`` event for one request greppable as a unit.

:class:`EventSink` owns one output file with two safety valves for
long-lived serving processes:

* **sampling** — ``sample_every=N`` keeps every N-th event *per event
  type* (deterministic counter-based sampling: no RNG, so two runs of
  the same workload log the same lines); dropped events bump the
  ``obs.events_sampled_out`` counter so the loss is visible;
* **size-capped rotation** — when the file would exceed ``max_bytes``
  it is rotated to ``<path>.1`` (shifting older generations up to
  ``backups``), so an unattended server cannot fill the disk.

Like the rest of :mod:`repro.obs`, the module-level :func:`emit` is a
no-op (one global read) until :func:`enable_events` installs a sink —
the CLI does this for ``--events-out PATH`` on ``fit``/``serve``.
"""

from __future__ import annotations

import contextvars
import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.obs import metrics

logger = logging.getLogger(__name__)

__all__ = [
    "EventSink",
    "enable_events",
    "disable_events",
    "forget_events",
    "reinit_after_fork",
    "events_enabled",
    "active_sink",
    "emit",
    "set_request_id",
    "reset_request_id",
    "current_request_id",
    "set_worker_identity",
    "worker_identity",
]

#: Default rotation threshold: 16 MiB per generation.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: The request id bound to the current execution context, if any.  A
#: :class:`~contextvars.ContextVar` rather than a thread-local: each
#: HTTP handler thread binds its own id around dispatch, and the value
#: follows the logical request even through helper frames.
_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "arcs_request_id", default=None
)

#: This process's serve-worker index (``None`` outside serve workers).
_worker_index: int | None = None


def set_request_id(
    request_id: str | None,
) -> contextvars.Token:
    """Bind ``request_id`` to the current context; returns the reset
    token so callers can restore the previous binding in ``finally``."""
    return _request_id.set(request_id)


def reset_request_id(token: contextvars.Token) -> None:
    """Restore the binding captured by :func:`set_request_id`."""
    _request_id.reset(token)


def current_request_id() -> str | None:
    """The request id bound to this context, or ``None``."""
    return _request_id.get()


def set_worker_identity(index: int | None) -> None:
    """Name this process as serve worker ``index`` (``None`` clears).

    Called once per forked worker right after observability is re-armed;
    every subsequently emitted event carries ``worker: index``.
    """
    global _worker_index
    _worker_index = index


def worker_identity() -> int | None:
    """This process's serve-worker index, or ``None``."""
    return _worker_index


class EventSink:
    """A thread-safe, size-capped, sampling JSONL event writer."""

    def __init__(self, path: str | Path, sample_every: int = 1,
                 max_bytes: int = DEFAULT_MAX_BYTES, backups: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_bytes < 1024:
            raise ValueError("max_bytes must be at least 1 KiB")
        if backups < 0:
            raise ValueError("backups cannot be negative")
        self.path = Path(path)
        self.sample_every = sample_every
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._seen: dict[str, int] = {}
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size
        self.emitted = 0
        self.sampled_out = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, event_type: str, **fields) -> bool:
        """Write one event; returns ``False`` when sampled out.

        ``ts`` (wall-clock seconds, for correlating with external logs),
        ``type``, ``pid`` and — when set — ``worker``/``request_id``
        are added automatically; remaining fields must be
        JSON-serializable (non-serializable values are stringified).
        Explicit keyword fields win over the automatic ones.
        """
        with self._lock:
            seen = self._seen.get(event_type, 0)
            self._seen[event_type] = seen + 1
            if seen % self.sample_every:
                self.sampled_out += 1
                metrics.inc("obs.events_sampled_out")
                return False
            payload = {
                "ts": time.time(),  # wall-clock: ok (log timestamp)
                "type": event_type,
                "pid": os.getpid(),
            }
            if _worker_index is not None:
                payload["worker"] = _worker_index
            request_id = _request_id.get()
            if request_id is not None:
                payload["request_id"] = request_id
            payload.update(fields)
            line = json.dumps(payload, default=str,
                              separators=(",", ":")) + "\n"
            if self._size + len(line) > self.max_bytes:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)
            self.emitted += 1
            metrics.inc("obs.events_emitted")
            return True

    def _rotate(self) -> None:
        """Shift generations: ``path`` → ``path.1`` → ``path.2`` ..."""
        self._handle.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(
                f"{self.path.name}.{self.backups}"
            )
            oldest.unlink(missing_ok=True)
            for generation in range(self.backups - 1, 0, -1):
                source = self.path.with_name(
                    f"{self.path.name}.{generation}"
                )
                if source.exists():
                    source.rename(self.path.with_name(
                        f"{self.path.name}.{generation + 1}"
                    ))
            if self.path.exists():
                self.path.rename(
                    self.path.with_name(f"{self.path.name}.1")
                )
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1
        logger.debug("rotated event log %s", self.path)

    def counts(self) -> dict:
        """Emission totals (``emitted``/``sampled_out``/``rotations``)
        as a JSON-ready dict — the event half of a worker's telemetry
        payload."""
        with self._lock:
            return {
                "emitted": self.emitted,
                "sampled_out": self.sampled_out,
                "rotations": self.rotations,
            }

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    # Context-manager sugar for scoped use in tests and scripts.
    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


#: The active sink; ``None`` means event logging is disabled and
#: :func:`emit` is a no-op.
_active: EventSink | None = None


def enable_events(sink: EventSink | str | Path, **kwargs) -> EventSink:
    """Install (and return) the process-global event sink.

    Accepts a ready :class:`EventSink` or a path (plus ``EventSink``
    keyword arguments).  An already-installed sink is closed first.
    """
    global _active
    if not isinstance(sink, EventSink):
        sink = EventSink(sink, **kwargs)
    if _active is not None and _active is not sink:
        _active.close()
    _active = sink
    return sink


def disable_events() -> None:
    """Close and uninstall the active sink; :func:`emit` no-ops again."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def forget_events() -> None:
    """Drop the active sink *without* closing it; :func:`emit` no-ops.

    For freshly forked children: the inherited sink shares the parent's
    file descriptor (closing would flush a fork-copied partial buffer
    into the parent's log) and its lock may have been held by a parent
    thread that does not exist in the child.  Dropping the reference is
    the only fork-safe move; the child then installs its own sink.
    """
    global _active
    _active = None


def reinit_after_fork() -> None:
    """Give the active sink a fresh lock (forked children only).

    Counterpart of :func:`repro.obs.metrics.reinit_after_fork`,
    registered as an ``os.register_at_fork`` child hook by the
    multi-process serving front end.  A serve worker forgets this sink
    right afterwards (:func:`forget_events`); the re-armed lock just
    guarantees nothing can deadlock in the window before it does.
    """
    sink = _active
    if sink is not None:
        sink._lock = threading.Lock()


def events_enabled() -> bool:
    """Whether an event sink is installed."""
    return _active is not None


def active_sink() -> EventSink | None:
    """The currently installed sink, or ``None`` when disabled."""
    return _active


def emit(event_type: str, **fields) -> bool:
    """Emit one event on the active sink, if any.

    Never raises on I/O problems: a failing disk should degrade
    observability, not take the serving path down with it.
    """
    sink = _active
    if sink is None:
        return False
    try:
        return sink.emit(event_type, **fields)
    except OSError:
        logger.exception("event sink write failed; event dropped")
        return False
