"""A stdlib sampling profiler producing collapsed-stack output.

:class:`SamplingProfiler` runs a daemon thread that periodically walks
``sys._current_frames()`` and aggregates the observed call stacks.  The
result is **folded stacks** — one line per distinct stack,
``frame;frame;frame count`` with the root first — the input format of
`flamegraph.pl` and every flamegraph viewer derived from it (e.g.
speedscope imports it directly)::

    profiler = SamplingProfiler(interval=0.005)
    with profiler:
        run_expensive_pipeline()
    Path("profile.folded").write_text(profiler.collapsed())

Sampling is statistical: the overhead is one stack walk per thread per
interval (defaults to 5 ms, ~200 Hz) regardless of how hot the profiled
code is, which makes it safe on a live server — the
``/debug/profile?seconds=N`` serving endpoint (see ``docs/serving.md``)
and the CLI's ``--profile-out`` flag are both built on this class.
The profiler's own sampler thread is excluded from the samples; other
threads are labelled by thread name so a threaded server's workers stay
distinguishable.

The number of collected samples is recorded on the metrics registry as
``obs.profile_samples`` when metrics are enabled.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter as _TallyCounter
from time import perf_counter

from repro.obs import metrics

__all__ = ["SamplingProfiler", "profile_for"]

#: Frames from these modules are the profiler's own machinery and are
#: dropped from the top of recorded stacks.
_OWN_MODULE = __name__


def _frame_label(frame) -> str:
    """``module:function`` for one frame (filename stem as fallback)."""
    module = frame.f_globals.get("__name__")
    if not module:
        filename = frame.f_code.co_filename
        module = filename.rsplit("/", 1)[-1]
    return f"{module}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Background-thread sampling profiler over ``sys._current_frames``.

    Use as a context manager or via :meth:`start`/:meth:`stop`.  The
    profiler may be stopped and restarted; samples accumulate until
    :meth:`reset`.
    """

    def __init__(self, interval: float = 0.005,
                 include_threads: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        #: Sample every thread (labelled by name) or only the main one.
        self.include_threads = include_threads
        self._stacks: _TallyCounter[tuple[str, ...]] = _TallyCounter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="arcs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join()
        self._thread = None
        if self.samples:
            metrics.inc("obs.profile_samples", self.samples)
        return self

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self.samples = 0
            self.wall_seconds = 0.0

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        main_id = threading.main_thread().ident
        started = perf_counter()
        while not self._stop.wait(self.interval):
            self._sample(own_id, main_id)
        # Under the lock: reset() zeroes wall_seconds from other
        # threads, and an unguarded += interleaves its load with that
        # store.
        elapsed = perf_counter() - started
        with self._lock:
            self.wall_seconds += elapsed

    def _sample(self, own_id: int, main_id: int | None) -> None:
        names = {
            thread.ident: thread.name
            for thread in threading.enumerate()
        } if self.include_threads else {}
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                if not self.include_threads and thread_id != main_id:
                    continue
                stack: list[str] = []
                while frame is not None:
                    if frame.f_globals.get("__name__") != _OWN_MODULE:
                        stack.append(_frame_label(frame))
                    frame = frame.f_back
                if not stack:
                    continue
                stack.reverse()  # root first: flamegraph convention
                label = (names.get(thread_id, f"thread-{thread_id}")
                         if thread_id != main_id else "main")
                self._stacks[(label, *stack)] += 1
                self.samples += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """Folded-stack output: ``thread;frame;...;frame count`` lines,
        sorted by count descending then lexically (stable across runs of
        an identical sample set)."""
        with self._lock:
            entries = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(
            ";".join(stack) + f" {count}" for stack, count in entries
        ) + ("\n" if entries else "")


def profile_for(seconds: float, interval: float = 0.005) -> str:
    """Sample the whole process for ``seconds`` and return the folded
    stacks — the one-call form behind ``/debug/profile?seconds=N``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    profiler = SamplingProfiler(interval=interval)
    with profiler:
        deadline = perf_counter() + seconds
        while perf_counter() < deadline:
            remaining = deadline - perf_counter()
            if remaining > 0:
                threading.Event().wait(min(remaining, 0.05))
    return profiler.collapsed()
