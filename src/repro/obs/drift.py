"""Model drift scoring: distribution divergences and traffic windows.

ARCS's whole model is a binned occupancy grid: training streamed every
tuple into a :class:`~repro.binning.bin_array.BinArray`, and the mined
rectangles only claim validity where that grid had mass.  *Model*
observability therefore reduces to one question — does serving traffic
still land where training data landed? — which this module answers with
two standard divergences over binned count distributions:

* **PSI** (:func:`psi`, the Population Stability Index) — the classic
  model-monitoring score ``sum((q - p) * ln(q / p))``.  Unbounded;
  folklore thresholds are 0.1 ("drifting") and 0.2 ("act").  Zero-count
  bins are clipped to :data:`PSI_EPSILON` (no renormalisation — the
  conventional treatment) so the score stays finite.
* **Jensen-Shannon divergence** (:func:`js_divergence`) — the
  symmetrised, smoothed KL divergence, in bits (log base 2), bounded to
  ``[0, 1]`` which makes it the better dashboard gauge.

Both are deterministic pure-numpy reductions; their per-bin scalar
twins live in :mod:`repro.perf.reference` (``psi_scalar``,
``js_divergence_scalar``) and the two are held **bit-identical** by
``tests/test_perf_equivalence.py``.  To keep that guarantee the final
reduction on both sides is ``np.sum`` over the per-bin term array —
summation order is part of the contract.

:class:`TrafficWindow` is the matching accumulator: per-bin marginal
and joint hit counts, per-rule (segment) hit counts, and out-of-range
tallies for one tumbling window of scored requests.  It is a plain
single-threaded value object — the thread-safe ring of windows lives in
:mod:`repro.serve.monitor`, which owns the locking.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_PSI_ALERT",
    "PSI_EPSILON",
    "TrafficWindow",
    "js_divergence",
    "psi",
]

#: Probability floor substituted for empty bins in :func:`psi` (the
#: conventional clip; without it one empty bin makes PSI infinite).
PSI_EPSILON = 1e-6

#: Default PSI alerting threshold: the folklore "distribution shift is
#: significant, investigate" level.
DEFAULT_PSI_ALERT = 0.2


def _distribution(counts, side: str) -> np.ndarray:
    """Flatten and normalise a count array into probabilities."""
    values = np.asarray(counts, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError(f"{side} distribution has no bins")
    if np.any(values < 0):
        raise ValueError(f"{side} distribution has negative counts")
    total = float(np.sum(values))
    if total <= 0.0:
        raise ValueError(
            f"{side} distribution is empty (all counts zero)"
        )
    return values / total


def psi(expected, observed) -> float:
    """Population Stability Index between two binned count arrays.

    ``expected`` is the reference (training occupancy), ``observed`` the
    live traffic; both are count arrays over the *same* bin grid (any
    shape — grids are flattened).  Empty bins are clipped to
    :data:`PSI_EPSILON` on both sides.  Raises :class:`ValueError` when
    either side is all-zero or the shapes disagree.
    """
    p = _distribution(expected, "expected")
    q = _distribution(observed, "observed")
    if p.size != q.size:
        raise ValueError(
            f"distributions have different bin counts: {p.size} vs "
            f"{q.size}"
        )
    p = np.maximum(p, PSI_EPSILON)
    q = np.maximum(q, PSI_EPSILON)
    terms = (q - p) * np.log(q / p)
    return float(np.sum(terms))


def js_divergence(expected, observed) -> float:
    """Jensen-Shannon divergence in bits, bounded to ``[0, 1]``.

    ``JS(p, q) = (KL(p||m) + KL(q||m)) / 2`` with ``m = (p + q) / 2``;
    zero-probability bins contribute zero (the ``0 * log 0`` limit), so
    no epsilon is needed.  Same shape/emptiness contract as :func:`psi`.
    """
    p = _distribution(expected, "expected")
    q = _distribution(observed, "observed")
    if p.size != q.size:
        raise ValueError(
            f"distributions have different bin counts: {p.size} vs "
            f"{q.size}"
        )
    midpoint = 0.5 * (p + q)

    def _kl_terms(side: np.ndarray) -> np.ndarray:
        terms = np.zeros_like(side)
        mask = side > 0.0
        terms[mask] = side[mask] * np.log(side[mask] / midpoint[mask])
        return terms

    nats = 0.5 * float(np.sum(_kl_terms(p))) \
        + 0.5 * float(np.sum(_kl_terms(q)))
    return nats / float(np.log(2.0))


class TrafficWindow:
    """Binned traffic occupancy accumulated over one tumbling window.

    Tracks, for one model: joint and marginal hit counts over the
    model's training grid (when a grid is known), per-rule hit counts
    (slot 0 is the no-rule fallback, slot ``r + 1`` is rule ``r``),
    out-of-range tallies per axis, and request/point totals.  Instances
    are *not* thread-safe — :class:`repro.serve.monitor.TrafficMonitor`
    serialises access.
    """

    __slots__ = (
        "n_x", "n_y", "n_rules", "opened", "points", "requests",
        "x_counts", "y_counts", "totals", "rule_hits",
        "out_of_range_x", "out_of_range_y",
    )

    def __init__(self, n_x: int, n_y: int, n_rules: int,
                 opened: float = 0.0):
        self.n_x = int(n_x)
        self.n_y = int(n_y)
        self.n_rules = int(n_rules)
        self.opened = float(opened)
        self.points = 0
        self.requests = 0
        self.out_of_range_x = 0
        self.out_of_range_y = 0
        self.rule_hits = np.zeros(self.n_rules + 1, dtype=np.int64)
        if self.n_x and self.n_y:
            self.x_counts = np.zeros(self.n_x, dtype=np.int64)
            self.y_counts = np.zeros(self.n_y, dtype=np.int64)
            self.totals = np.zeros((self.n_x, self.n_y), dtype=np.int64)
        else:  # no grid known (artefact saved without a reference)
            self.x_counts = None
            self.y_counts = None
            self.totals = None

    @property
    def has_grid(self) -> bool:
        return self.totals is not None

    def add(self, x_bins: np.ndarray | None, y_bins: np.ndarray | None,
            rule_indices: np.ndarray, out_of_range_x: int = 0,
            out_of_range_y: int = 0) -> None:
        """Accumulate one scored request (a batch of points)."""
        rules = np.asarray(rule_indices, dtype=np.int64)
        self.requests += 1
        self.points += int(rules.size)
        if rules.size:
            self.rule_hits += np.bincount(
                np.clip(rules, -1, self.n_rules - 1) + 1,
                minlength=self.n_rules + 1,
            )
        if not self.has_grid or x_bins is None or y_bins is None:
            return
        x_bins = np.asarray(x_bins, dtype=np.int64)
        y_bins = np.asarray(y_bins, dtype=np.int64)
        self.x_counts += np.bincount(x_bins, minlength=self.n_x)
        self.y_counts += np.bincount(y_bins, minlength=self.n_y)
        self.totals += np.bincount(
            x_bins * self.n_y + y_bins, minlength=self.n_x * self.n_y
        ).reshape(self.n_x, self.n_y)
        self.out_of_range_x += int(out_of_range_x)
        self.out_of_range_y += int(out_of_range_y)

    @property
    def fallback_points(self) -> int:
        """Points that fell outside every rectangle (no-rule fallback)."""
        return int(self.rule_hits[0])

    @property
    def coverage_fraction(self) -> float | None:
        """In-segment fraction of the window, ``None`` when empty."""
        if self.points == 0:
            return None
        return 1.0 - self.fallback_points / self.points

    def copy(self) -> "TrafficWindow":
        """An independent deep copy (snapshot for lock-free readers)."""
        clone = TrafficWindow(self.n_x, self.n_y, self.n_rules,
                              opened=self.opened)
        clone.points = self.points
        clone.requests = self.requests
        clone.out_of_range_x = self.out_of_range_x
        clone.out_of_range_y = self.out_of_range_y
        clone.rule_hits = self.rule_hits.copy()
        if self.has_grid:
            clone.x_counts = self.x_counts.copy()
            clone.y_counts = self.y_counts.copy()
            clone.totals = self.totals.copy()
        return clone

    @classmethod
    def merged(cls, windows: list["TrafficWindow"]) -> "TrafficWindow":
        """Sum a list of compatible windows into one aggregate."""
        if not windows:
            raise ValueError("cannot merge zero windows")
        first = windows[0]
        out = first.copy()
        for window in windows[1:]:
            if (window.n_x, window.n_y, window.n_rules) != (
                    first.n_x, first.n_y, first.n_rules):
                raise ValueError(
                    "cannot merge windows over different grids"
                )
            out.points += window.points
            out.requests += window.requests
            out.out_of_range_x += window.out_of_range_x
            out.out_of_range_y += window.out_of_range_y
            out.rule_hits += window.rule_hits
            if out.has_grid and window.has_grid:
                out.x_counts += window.x_counts
                out.y_counts += window.y_counts
                out.totals += window.totals
            out.opened = min(out.opened, window.opened)
        return out
