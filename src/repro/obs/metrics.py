"""Process-local metrics: named counters, gauges and histograms.

The pipeline reports *what happened* through a small fixed vocabulary of
named instruments (see ``docs/observability.md`` for the catalogue):

* **counters** — monotonically increasing totals
  (``binner.tuples_binned``, ``optimizer.trials``);
* **gauges** — last-written values (``binner.occupancy_fraction``);
* **histograms** — count/total/min/max summaries of a value stream
  (``optimizer.trial_seconds``).

Metrics are **off by default**.  Instrumented code calls the module
helpers :func:`inc`, :func:`set_gauge` and :func:`observe`, which are a
single global read plus ``None`` check when disabled — cheap enough to
leave in hot paths.  :func:`enable` installs a process-global
:class:`MetricsRegistry`; the capture layer temporarily swaps in a fresh
per-run registry so a :class:`~repro.obs.report.RunReport` contains
exactly one run's numbers, then merges them back so process totals keep
accumulating.

The registry is guarded by a lock (instrument creation and snapshot);
individual updates rely on the GIL like every mainstream Python metrics
client, which is sufficient for ``+=`` on ints/floats.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "active",
    "swap_registry",
    "inc",
    "set_gauge",
    "observe",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming count/total/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    # ------------------------------------------------------------------
    # Convenience emitters
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Snapshot / merge / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(
                        self._counters.items()
                    )
                },
                "gauges": {
                    name: g.value for name, g in sorted(
                        self._gauges.items()
                    )
                },
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.minimum,
                        "max": h.maximum,
                        "mean": h.mean,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb another registry: counters add, gauges take the other's
        value, histograms combine their summaries."""
        snap = other.snapshot()
        for name, value in snap["counters"].items():
            self.counter(name).inc(value)
        for name, value in snap["gauges"].items():
            self.gauge(name).set(value)
        for name, summary in snap["histograms"].items():
            histogram = self.histogram(name)
            histogram.count += summary["count"]
            histogram.total += summary["total"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = summary[bound]
                if theirs is None:
                    continue
                ours = getattr(
                    histogram, "minimum" if bound == "min" else "maximum"
                )
                merged = theirs if ours is None else pick(ours, theirs)
                setattr(
                    histogram,
                    "minimum" if bound == "min" else "maximum",
                    merged,
                )

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The active registry; ``None`` means metrics are disabled and every
#: module-level emitter is a no-op.
_active: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the process-global registry."""
    global _active
    if registry is None:
        registry = _active if _active is not None else MetricsRegistry()
    _active = registry
    return registry


def disable() -> None:
    """Disable metrics collection; emitters become no-ops."""
    global _active
    _active = None


def enabled() -> bool:
    """Whether a registry is installed (metrics are being collected)."""
    return _active is not None


def active() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` when disabled."""
    return _active


def swap_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Atomically replace the active registry, returning the previous
    one.  The capture layer uses this to scope metrics to a run."""
    global _active
    previous = _active
    _active = registry
    return previous


# ----------------------------------------------------------------------
# Hot-path emitters: one global read + None check when disabled.
# ----------------------------------------------------------------------
def inc(name: str, amount: int | float = 1) -> None:
    """Increment a counter on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.observe(name, value)
