"""Process-local metrics: named counters, gauges and histograms.

The pipeline reports *what happened* through a small fixed vocabulary of
named instruments (see ``docs/observability.md`` for the catalogue):

* **counters** — monotonically increasing totals
  (``binner.tuples_binned``, ``optimizer.trials``);
* **gauges** — last-written values (``binner.occupancy_fraction``);
* **histograms** — count/total/min/max summaries of a value stream plus
  fixed cumulative buckets, so p50/p95/p99 can be estimated
  (``serve.request_seconds``).

Instruments may carry **labels** — a small ``{key: value}`` mapping that
splits one logical metric into independent series, Prometheus-style
(``serve.request_seconds{endpoint="predict"}``).  Each distinct label
combination is its own instrument; snapshots flatten the series into
``name{key="value",...}`` keys (sorted by label key, values escaped), a
format :func:`parse_series_key` round-trips.

Metrics are **off by default**.  Instrumented code calls the module
helpers :func:`inc`, :func:`set_gauge` and :func:`observe`, which are a
single global read plus ``None`` check when disabled — cheap enough to
leave in hot paths.  :func:`enable` installs a process-global
:class:`MetricsRegistry`; the capture layer temporarily swaps in a fresh
per-run registry so a :class:`~repro.obs.report.RunReport` contains
exactly one run's numbers, then merges them back so process totals keep
accumulating.  :meth:`MetricsRegistry.merge_snapshot` absorbs a
snapshot produced in *another process* (the parallel verifier's workers
ship their per-block snapshots back over the pool).

The registry is guarded by a lock (instrument creation and snapshot);
individual updates rely on the GIL like every mainstream Python metrics
client, which is sufficient for ``+=`` on ints/floats.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "active",
    "swap_registry",
    "reinit_after_fork",
    "inc",
    "set_gauge",
    "observe",
    "parse_series_key",
    "series_key",
]

#: Default histogram bucket upper bounds (seconds-flavoured, the
#: Prometheus client default); an implicit +Inf bucket is always last.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _unescape_label(value: str) -> str:
    return (value.replace(r"\n", "\n").replace(r"\"", '"')
            .replace(r"\\", "\\"))


def series_key(name: str, labels: dict | None = None) -> str:
    """The flattened ``name{key="value",...}`` snapshot key of a series.

    Labels are sorted by key and values escaped, so equal label sets
    always produce the same key; a label-less series is just ``name``.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


_SERIES_RE = re.compile(r"\A(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?\Z")
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                       r'"(?P<value>(?:[^"\\]|\\.)*)"')


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a flattened snapshot key back into ``(name, labels)``."""
    match = _SERIES_RE.match(key)
    if match is None:
        return key, {}
    raw = match.group("labels")
    if raw is None:
        return match.group("name"), {}
    labels = {
        found.group("key"): _unescape_label(found.group("value"))
        for found in _LABEL_RE.finditer(raw)
    }
    return match.group("name"), labels


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming summary of observed values with fixed buckets.

    Alongside count/total/min/max, every observation lands in one of the
    fixed buckets (``value <= bound``, implicit +Inf last), which is
    enough to estimate quantiles by linear interpolation within the
    bucket holding the target rank — the same estimator as PromQL's
    ``histogram_quantile``, bounded by the observed min/max at the
    edges.
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum",
                 "buckets", "bucket_counts")

    def __init__(self, name: str, labels: dict | None = None,
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must strictly increase")
        self.buckets: tuple[float, ...] = bounds
        #: Per-bucket (non-cumulative) counts; last slot is +Inf.
        self.bucket_counts: list[int] = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0.0
        for index, bucket in enumerate(self.bucket_counts):
            if not bucket:
                continue
            previous = running
            running += bucket
            if running < rank:
                continue
            low = (self.minimum if index == 0
                   else self.buckets[index - 1])
            high = (self.maximum if index == len(self.buckets)
                    else self.buckets[index])
            low = max(low, self.minimum)
            high = min(high, self.maximum)
            if high <= low:
                return high
            return low + (high - low) * (rank - previous) / bucket
        return self.maximum if self.maximum is not None else 0.0

    def summary(self) -> dict:
        """The JSON-ready snapshot entry for this histogram."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": [
                [("+Inf" if bound == float("inf") else bound), cum]
                for bound, cum in self.cumulative_buckets()
            ],
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are keyed by :func:`series_key` — the metric name plus
    the sorted, escaped label set — so the same name with different
    labels yields independent series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: dict | None = None) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, labels)
            return instrument

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, labels)
            return instrument

    def histogram(self, name: str, labels: dict | None = None,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    name, labels, buckets
                )
            return instrument

    # ------------------------------------------------------------------
    # Convenience emitters
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int | float = 1,
            labels: dict | None = None) -> None:
        self.counter(name, labels).inc(amount)

    def set_gauge(self, name: str, value: float,
                  labels: dict | None = None) -> None:
        self.gauge(name, labels).set(value)

    def observe(self, name: str, value: float,
                labels: dict | None = None) -> None:
        self.histogram(name, labels).observe(value)

    # ------------------------------------------------------------------
    # Snapshot / merge / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {
                    key: c.value for key, c in sorted(
                        self._counters.items()
                    )
                },
                "gauges": {
                    key: g.value for key, g in sorted(
                        self._gauges.items()
                    )
                },
                "histograms": {
                    key: h.summary()
                    for key, h in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb another registry: counters add, gauges take the other's
        value, histograms combine summaries and bucket counts."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: dict,
                       relabel_gauges: dict | None = None) -> None:
        """Absorb a :meth:`snapshot` payload, possibly from another
        process (the parallel verifier ships worker snapshots back over
        the pool).  Histograms with explicit buckets merge per bucket
        and require both sides to share the same bounds; bucket-less
        summaries (older payloads) merge count/total/min/max only.

        Gauges never sum — a merged gauge overwrites (last wins), which
        is wrong across *distinct sources* (two workers' queue depths
        are independent readings, not one).  ``relabel_gauges`` adds the
        given labels to every incoming gauge so each source lands on its
        own series (``serve.queue_depth{worker="0"}``) instead of
        clobbering a peer's value; the fleet aggregator passes
        ``{"worker": str(index)}``."""
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_series_key(key)
            self.counter(name, labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_series_key(key)
            if relabel_gauges:
                labels = {**labels, **relabel_gauges}
            self.gauge(name, labels).set(value)
        for key, summary in snapshot.get("histograms", {}).items():
            name, labels = parse_series_key(key)
            theirs_buckets = summary.get("buckets")
            bounds = None
            if theirs_buckets:
                bounds = tuple(
                    float("inf") if entry[0] == "+Inf" else entry[0]
                    for entry in theirs_buckets
                )[:-1]
            histogram = self.histogram(name, labels, bounds)
            histogram.count += summary["count"]
            histogram.total += summary["total"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = summary[bound]
                if theirs is None:
                    continue
                attr = "minimum" if bound == "min" else "maximum"
                ours = getattr(histogram, attr)
                merged = theirs if ours is None else pick(ours, theirs)
                setattr(histogram, attr, merged)
            if bounds is None:
                continue
            if bounds != histogram.buckets:
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket bounds "
                    f"differ ({bounds} vs {histogram.buckets})"
                )
            previous = 0
            for index, (_, cumulative) in enumerate(theirs_buckets):
                histogram.bucket_counts[index] += cumulative - previous
                previous = cumulative

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The active registry; ``None`` means metrics are disabled and every
#: module-level emitter is a no-op.
_active: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the process-global registry."""
    global _active
    if registry is None:
        registry = _active if _active is not None else MetricsRegistry()
    _active = registry
    return registry


def disable() -> None:
    """Disable metrics collection; emitters become no-ops."""
    global _active
    _active = None


def enabled() -> bool:
    """Whether a registry is installed (metrics are being collected)."""
    return _active is not None


def active() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` when disabled."""
    return _active


def swap_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Atomically replace the active registry, returning the previous
    one.  The capture layer uses this to scope metrics to a run."""
    global _active
    previous = _active
    _active = registry
    return previous


def reinit_after_fork() -> None:
    """Give the active registry a fresh lock (forked children only).

    A thread in the parent may hold the registry lock at ``fork`` time;
    the child's inherited copy would then be locked forever with no
    owning thread, deadlocking the child's first emit.  Registered as
    an ``os.register_at_fork`` child hook by the multi-process serving
    front end (:mod:`repro.serve.workers`).
    """
    registry = _active
    if registry is not None:
        registry._lock = threading.Lock()


# ----------------------------------------------------------------------
# Hot-path emitters: one global read + None check when disabled.
# ----------------------------------------------------------------------
def inc(name: str, amount: int | float = 1,
        labels: dict | None = None) -> None:
    """Increment a counter on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.inc(name, amount, labels)


def set_gauge(name: str, value: float,
              labels: dict | None = None) -> None:
    """Set a gauge on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.set_gauge(name, value, labels)


def observe(name: str, value: float,
            labels: dict | None = None) -> None:
    """Record a histogram observation on the active registry, if any."""
    registry = _active
    if registry is not None:
        registry.observe(name, value, labels)
