"""Run reports: one machine-readable record per instrumented run.

:class:`RunCapture` brackets a run (``ARCS.fit``, ``fit_all``, a CLI
``remine`` ...): it installs a root tracing span and a fresh per-run
metrics registry, and on exit assembles a :class:`RunReport` — the span
tree, the run's metrics snapshot and a config fingerprint — which the
pipeline attaches to its result objects and the CLI serializes with
``--metrics-out``.

Captures nest: an ``optimizer.search`` capture opened inside an
``arcs.fit`` capture degrades to a child span of the outer run, so a run
yields exactly one report covering everything.  When observability is
disabled the capture is inert and costs two context-variable operations.

Everything here is stdlib-only (``json``, ``time``, ``hashlib``,
``dataclasses``, ``contextvars``) so importing the obs layer never pulls
in heavy dependencies.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from contextvars import ContextVar
from pathlib import Path

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

__all__ = ["RunReport", "RunCapture", "config_fingerprint"]

#: Identifies report JSON files (mirrors repro.persistence's format tags).
REPORT_FORMAT = "arcs-run-report"
REPORT_VERSION = 1


def config_fingerprint(config) -> dict:
    """A JSON-ready ``{"values": ..., "sha256": ...}`` pair for a config.

    Accepts a dataclass, a mapping, or any JSON-serializable value;
    non-serializable leaves are stringified.  The digest is computed over
    the canonical (sorted-key) JSON, so two runs with identical
    configuration produce identical fingerprints across processes.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        values = dataclasses.asdict(config)
    elif isinstance(config, dict):
        values = dict(config)
    else:
        values = {"value": config}
    canonical = json.dumps(values, sort_keys=True, default=str)
    return {
        "values": json.loads(
            json.dumps(values, default=str)
        ),
        "sha256": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
    }


@dataclasses.dataclass
class RunReport:
    """The machine-readable record of one instrumented run.

    Attributes
    ----------
    name:
        The run's root span name (``"arcs.fit"``, ``"cli.remine"``...).
    started_at:
        Wall-clock start (``time.time()``), for correlating runs.
    duration_seconds:
        Total run time from the monotonic clock.
    config:
        The :func:`config_fingerprint` of the run's configuration.
    trace:
        The serialized span tree (``None`` when tracing was disabled).
    metrics:
        The per-run metrics snapshot (empty when metrics were disabled).
    """

    name: str
    started_at: float
    duration_seconds: float
    config: dict = dataclasses.field(default_factory=dict)
    trace: dict | None = None
    metrics: dict = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def span_tree(self) -> "_tracing.Span | None":
        """The run's root span, rebuilt from the serialized tree."""
        if self.trace is None:
            return None
        return _tracing.Span.from_dict(self.trace)

    def counters(self) -> dict:
        return self.metrics.get("counters", {})

    def gauges(self) -> dict:
        return self.metrics.get("gauges", {})

    def histograms(self) -> dict:
        return self.metrics.get("histograms", {})

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "config": self.config,
            "trace": self.trace,
            "metrics": self.metrics,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        if payload.get("format") != REPORT_FORMAT:
            raise ValueError(
                f"not a run report (format={payload.get('format')!r})"
            )
        return cls(
            name=payload["name"],
            started_at=payload["started_at"],
            duration_seconds=payload["duration_seconds"],
            config=payload.get("config", {}),
            trace=payload.get("trace"),
            metrics=payload.get("metrics", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def to_prometheus(self) -> str:
        """The report's metrics in the Prometheus text format.

        Empty snapshot (metrics were disabled) renders as an empty
        exposition, which scrapers accept.
        """
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(self.metrics)

    def write(self, path) -> None:
        """Serialize to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def read(cls, path) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    # ASCII summary (the CLI's --trace output)
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """An aligned terminal summary: spans by name, then metrics."""
        from repro.viz.report import format_table

        parts = [
            f"run {self.name}: {self.duration_seconds:.3f}s "
            f"(config sha256 {self.config.get('sha256', '-')[:12]})"
        ]
        root = self.span_tree()
        if root is not None:
            aggregated: dict[str, list[float]] = {}
            order: list[str] = []
            for depth, span in root.walk():
                key = "  " * depth + span.name
                if key not in aggregated:
                    aggregated[key] = [0, 0.0]
                    order.append(key)
                aggregated[key][0] += 1
                aggregated[key][1] += span.duration or 0.0
            total = self.duration_seconds or 1.0
            # format_table right-justifies; pad names so the tree
            # indentation survives alignment.
            width = max(len(key) for key in order)
            rows = [
                [key.ljust(width), aggregated[key][0],
                 f"{aggregated[key][1]:.4f}",
                 f"{100.0 * aggregated[key][1] / total:.1f}%"]
                for key in order
            ]
            parts.append("")
            parts.append(
                format_table(["span", "calls", "total (s)", "of run"],
                             rows)
            )
        counters = self.counters()
        if counters:
            parts.append("")
            parts.append(format_table(
                ["counter", "value"],
                [[name, value] for name, value in counters.items()],
            ))
        gauges = self.gauges()
        if gauges:
            parts.append("")
            parts.append(format_table(
                ["gauge", "value"],
                [[name, value] for name, value in gauges.items()],
            ))
        histograms = self.histograms()
        if histograms:
            parts.append("")
            parts.append(format_table(
                ["histogram", "count", "mean", "min", "max"],
                [
                    [name, h["count"], h["mean"],
                     "-" if h["min"] is None else h["min"],
                     "-" if h["max"] is None else h["max"]]
                    for name, h in histograms.items()
                ],
            ))
        return "\n".join(parts)


#: The innermost live capture (nesting detection); independent of the
#: tracing context so metrics-only runs nest correctly too.
_active_capture: ContextVar["RunCapture | None"] = ContextVar(
    "repro_obs_active_capture", default=None
)


class RunCapture:
    """Context manager bracketing one instrumented run.

    ``capture.report`` is populated on exit when observability was
    enabled and this was the outermost capture; otherwise it stays
    ``None`` (nested captures contribute a child span to the enclosing
    run instead of producing their own report).
    """

    def __init__(self, name: str, config=None):
        self.name = name
        self.config = config
        self.report: RunReport | None = None
        self._token = None
        self._outer: RunCapture | None = None
        self._root: _tracing.Span | None = None
        self._child = None
        self._registry: _metrics.MetricsRegistry | None = None
        self._previous_registry: _metrics.MetricsRegistry | None = None
        self._started_at = 0.0
        self._perf_start = 0.0

    def __enter__(self) -> "RunCapture":
        self._outer = _active_capture.get()
        self._token = _active_capture.set(self)
        if self._outer is not None:
            # Nested run: record a child span in the enclosing trace.
            self._child = _tracing.trace(self.name)
            self._child.__enter__()
            return self
        if _tracing.enabled():
            self._root = _tracing.Span(self.name)
            self._root.__enter__()
        if _metrics.enabled():
            self._registry = _metrics.MetricsRegistry()
            self._previous_registry = _metrics.swap_registry(
                self._registry
            )
        self._started_at = time.time()  # wall-clock: ok (run timestamp)
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _active_capture.reset(self._token)
        if self._child is not None:
            self._child.__exit__(exc_type, exc, tb)
            return False
        duration = time.perf_counter() - self._perf_start
        if self._root is not None:
            self._root.__exit__(exc_type, exc, tb)
        snapshot: dict = {}
        if self._registry is not None:
            snapshot = self._registry.snapshot()
            _metrics.swap_registry(self._previous_registry)
            if self._previous_registry is not None:
                # Keep process-wide totals accumulating across runs.
                self._previous_registry.merge(self._registry)
        if self._root is not None or snapshot:
            self.report = RunReport(
                name=self.name,
                started_at=self._started_at,
                duration_seconds=(
                    self._root.duration if self._root is not None
                    else duration
                ),
                config=config_fingerprint(self.config)
                if self.config is not None else {},
                trace=(
                    self._root.to_dict() if self._root is not None
                    else None
                ),
                metrics=snapshot,
            )
            self._emit_events(exc_type)
        return False

    def _emit_events(self, exc_type) -> None:
        """Log the finished run to the event sink, if one is installed.

        One ``run`` event for the capture itself, then one ``stage``
        event per top-level pipeline span — enough to reconstruct the
        run's shape from the event log alone without parsing the full
        span tree.
        """
        from repro.obs import events as _events

        if not _events.events_enabled() or self.report is None:
            return
        report = self.report
        _events.emit(
            "run",
            name=report.name,
            duration_seconds=report.duration_seconds,
            config_sha256=report.config.get("sha256"),
            error=exc_type.__name__ if exc_type is not None else None,
        )
        root = report.span_tree()
        if root is None:
            return
        for stage in root.children:
            _events.emit(
                "stage",
                run=report.name,
                stage=stage.name,
                duration_seconds=stage.duration,
                **{f"attr_{k}": v for k, v in stage.attributes.items()},
            )
