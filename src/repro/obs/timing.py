"""Micro-benchmark timing built on the tracing clock.

The perf-budget harness (``benchmarks/perf_budget.py``) and ad-hoc
profiling need one thing the span tree does not give directly: the best
repeatable wall time of a small callable.  :func:`best_of` is a
minimal ``timeit``-style loop on :func:`time.perf_counter` — the same
monotonic clock every :class:`~repro.obs.tracing.Span` uses — that
reports the *minimum* over trials (the standard estimator for a noisy
machine: the minimum is the run least disturbed by other load).

:func:`timed` additionally feeds the measurement into the metrics layer
as a histogram observation, so harness timings land in the same
``RunReport`` plumbing as pipeline stage timings.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.obs import metrics

__all__ = ["best_of", "timed"]


def best_of(fn: Callable[[], object], trials: int = 5,
            number: int = 1) -> float:
    """Best wall time of ``fn`` in seconds per call.

    Runs ``trials`` batches of ``number`` back-to-back calls and returns
    the fastest batch divided by ``number``.  No warm-up is added —
    callers that need one (first-call JIT/cache effects) run ``fn`` once
    beforehand.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if number <= 0:
        raise ValueError("number must be positive")
    best = None
    for _ in range(trials):
        started = perf_counter()
        for _ in range(number):
            fn()
        elapsed = perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best / number


def timed(name: str, fn: Callable[[], object], trials: int = 5,
          number: int = 1) -> float:
    """:func:`best_of`, also recorded as a ``{name}`` histogram
    observation on the active metrics registry (a no-op when metrics are
    disabled)."""
    seconds = best_of(fn, trials=trials, number=number)
    metrics.observe(name, seconds)
    return seconds
