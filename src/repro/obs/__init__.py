"""Observability for the ARCS pipeline: tracing, metrics, run reports.

Three small, stdlib-only layers the rest of the codebase imports:

* :mod:`repro.obs.tracing` — nestable, thread-safe :class:`Span` trees
  opened with :func:`trace`, timing every pipeline stage of a run;
* :mod:`repro.obs.metrics` — a process-local registry of named
  counters/gauges/histograms fed through :func:`~repro.obs.metrics.inc`
  and friends;
* :mod:`repro.obs.report` — :class:`RunCapture` brackets one run and
  produces a :class:`RunReport` (span tree + metrics snapshot + config
  fingerprint) that serializes to JSON and renders an ASCII summary.

Layered on top of those three:

* :mod:`repro.obs.prometheus` — renders any metrics snapshot in the
  Prometheus text exposition format (and ships a tiny validating
  parser for tests and smoke jobs);
* :mod:`repro.obs.events` — structured JSONL event logs with
  deterministic sampling and size-capped rotation;
* :mod:`repro.obs.trace_export` — span trees as Chrome trace-event
  JSON, loadable in Perfetto;
* :mod:`repro.obs.profiler` — a stdlib sampling profiler emitting
  collapsed (flamegraph) stacks.

Everything is **disabled by default** and each instrumentation point
degrades to a global read plus ``None``/branch check, so an
uninstrumented process pays nothing measurable.  Turn collection on
with::

    from repro import obs

    obs.enable()
    result = repro.ARCS().fit(table, "age", "salary", "group", "A")
    print(result.run_report.summary())
    result.run_report.write("report.json")

or from the CLI with ``--trace`` / ``--metrics-out PATH``.
"""

from __future__ import annotations

from repro.obs import events, metrics, tracing
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.report import RunCapture, RunReport, config_fingerprint
from repro.obs.timing import best_of, timed
from repro.obs.trace_export import chrome_trace, write_chrome_trace
from repro.obs.tracing import Span, current_span, trace

__all__ = [
    "EventSink",
    "MetricsRegistry",
    "RunCapture",
    "RunReport",
    "SamplingProfiler",
    "Span",
    "best_of",
    "chrome_trace",
    "config_fingerprint",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "events",
    "metrics",
    "parse_prometheus",
    "render_prometheus",
    "timed",
    "trace",
    "tracing",
    "write_chrome_trace",
]


def enable(*, trace_spans: bool = True,
           collect_metrics: bool = True) -> None:
    """Turn observability on (both layers by default)."""
    if trace_spans:
        tracing.enable()
    if collect_metrics:
        metrics.enable()


def disable() -> None:
    """Turn both layers off; instrumentation reverts to no-ops."""
    tracing.disable()
    metrics.disable()


def enabled() -> bool:
    """Whether any observability layer is currently enabled."""
    return tracing.enabled() or metrics.enabled()
