"""The declared observability vocabulary: every metric and span name.

Instrumented code may only emit names declared here; the
``obs-catalogue`` pass of ``python -m tools.analyze`` fails CI on any
drift in either direction, and ``python -m tools.analyze --fix``
regenerates this module (preserving descriptions) plus the metric
table in ``docs/observability.md``.  Names containing ``{...}`` are
templates matching one dotted-name segment (``serve.requests_{endpoint}``);
names ending in ``{key,...}`` declare labeled series — the call site
passes ``labels={...}`` with exactly those keys (``serve.request_seconds{endpoint}``).
"""

from __future__ import annotations

__all__ = ["METRICS", "SPANS"]

#: metric name -> (kind, meaning); kinds: counter | gauge | histogram.
METRICS: dict[str, tuple[str, str]] = {
    'binner.cells_occupied':
        ('gauge',
         'cells holding at least one tuple'),
    'binner.chunks_consumed':
        ('counter',
         'chunks the binner consumed'),
    'binner.grid_cells':
        ('gauge',
         'total cells of the current grid'),
    'binner.occupancy_fraction':
        ('gauge',
         'occupied / total cells'),
    'binner.tuples_binned':
        ('counter',
         'tuples streamed into the BinArray'),
    'bitop.clusters_found':
        ('counter',
         'rectangles the greedy cover kept'),
    'bitop.rectangles_enumerated':
        ('counter',
         'candidate rectangles BitOp enumerated'),
    'engine.cells_qualified':
        ('counter',
         'cells clearing both thresholds'),
    'engine.scans':
        ('counter',
         'rule-engine passes over the BinArray'),
    'fleet.publish_seconds':
        ('histogram',
         'wall-clock per fleet publish: merging worker snapshots plus atomically replacing the fleet document'),
    'fleet.snapshots_absorbed':
        ('counter',
         'worker telemetry snapshots absorbed by the parent fleet aggregator'),
    'fleet.workers_reporting':
        ('gauge',
         'workers whose latest telemetry snapshot has been absorbed and are not draining'),
    'obs.events_emitted':
        ('counter',
         'events written to the JSONL event sink'),
    'obs.events_sampled_out':
        ('counter',
         "events dropped by the sink's deterministic sampling"),
    'obs.profile_samples':
        ('counter',
         'stacks collected by the sampling profiler'),
    'optimizer.trial_seconds':
        ('histogram',
         'wall-clock per optimizer trial'),
    'optimizer.trials':
        ('counter',
         'threshold pairs tried'),
    'pruning.clusters_dropped':
        ('counter',
         'clusters removed by dynamic pruning'),
    'pruning.clusters_kept':
        ('counter',
         'clusters surviving pruning'),
    'serve.batch_size':
        ('histogram',
         'tuples per `score_batch` call'),
    'serve.compile_seconds':
        ('histogram',
         'wall-clock per scorer compilation'),
    'serve.coverage_fraction{model}':
        ('gauge',
         'fraction of recently scored points inside any rule rectangle, per model'),
    'serve.drift_js{attr,model}':
        ('gauge',
         'Jensen-Shannon divergence (bits) between training occupancy and recent traffic, per LHS attribute (plus `joint`) and model'),
    'serve.drift_psi{attr,model}':
        ('gauge',
         'Population Stability Index between training occupancy and recent traffic, per LHS attribute (plus `joint`) and model'),
    'serve.models_loaded':
        ('gauge',
         'models currently resolvable in the registry'),
    'serve.out_of_range{attr,model}':
        ('gauge',
         'fraction of recently scored points outside the trained bin range, per LHS attribute and model'),
    'serve.queue_depth':
        ('gauge',
         'scoring submissions currently waiting in the batch queue'),
    'serve.reload_errors':
        ('counter',
         'artefacts that failed to reload (previous version kept)'),
    'serve.reloads':
        ('counter',
         'registry refreshes that changed the model set'),
    'serve.request_errors{endpoint}':
        ('counter',
         'requests answered with a 4xx/5xx status, labeled by endpoint'),
    'serve.request_seconds{endpoint}':
        ('histogram',
         'wall-clock per request, labeled by endpoint'),
    'serve.requests':
        ('counter',
         'HTTP requests dispatched (all endpoints)'),
    'serve.requests_{endpoint}':
        ('counter',
         'requests per endpoint (`predict`, `predict_batch`, `explain`, `models`, `healthz`, `metrics`, `stats`, `fleet`, `profile`)'),
    'serve.scorer_cache_hits':
        ('counter',
         '`compile_scorer` LRU cache hits'),
    'serve.scorer_cache_misses':
        ('counter',
         '`compile_scorer` LRU cache misses'),
    'serve.shed_total{endpoint}':
        ('counter',
         'requests shed with HTTP 429 at the queue-depth bound, labeled by endpoint'),
    'serve.shm_attach_fallbacks':
        ('counter',
         'worker scorer resolutions that compiled locally because no shared block existed'),
    'serve.shm_attached':
        ('counter',
         'shared-memory scorer tables attached zero-copy by workers'),
    'serve.shm_published':
        ('counter',
         'compiled scorer tables published into shared memory by the parent'),
    'serve.shm_retired':
        ('counter',
         'replaced shared-memory blocks unlinked after every worker re-attached'),
    'serve.tuples_scored':
        ('counter',
         'tuples scored by `CompiledScorer.score_batch`'),
    'serve.worker_restarts':
        ('counter',
         'dead scoring workers restarted by the parent watchdog'),
    'serve.workers':
        ('gauge',
         'scoring worker processes the multi-process server runs (0 once drained)'),
    'smoothing.cells_flipped':
        ('counter',
         'cells changed by the low-pass filter'),
    'stream.publishes':
        ('counter',
         'refits whose changed content hash was atomically published'),
    'stream.refit_seconds':
        ('histogram',
         'wall-clock per windowed refit (cluster + publish)'),
    'stream.refits_run':
        ('counter',
         'windowed refits executed by the stream refitter'),
    'stream.refits_skipped':
        ('counter',
         'refits whose segmentation content hash was unchanged (no publish)'),
    'stream.tuples_expired':
        ('counter',
         'tuples expired from the window (sliding overflow or tumbling close)'),
    'stream.tuples_ingested':
        ('counter',
         'tuples ingested into the stream window'),
    'stream.window_tuples':
        ('gauge',
         'tuples currently contributing to the windowed BinArray'),
    'verifier.parallel_batches':
        ('counter',
         'repeat blocks dispatched to the verifier worker pool'),
    'verifier.samples_drawn':
        ('counter',
         'k-of-n samples drawn'),
    'verifier.tuples_sampled':
        ('counter',
         'tuples across all samples'),
    'verifier.tuples_scanned':
        ('counter',
         'tuples read by exact verification'),
}

#: span name -> meaning (see the span tree in docs/observability.md).
SPANS: dict[str, str] = {
    'arcs.fit':
        'one full ARCS fit for a single RHS value',
    'arcs.fit_all':
        'one ARCS fit over every RHS value of the target attribute',
    'bin':
        'streaming the table into the BinArray',
    'bitop':
        'BitOp rectangle enumeration and greedy cover',
    'cli.describe':
        'the `arcs describe` command (load + profile)',
    'cli.drift':
        'the `arcs drift` command (occupancy snapshot comparison)',
    'cli.fleet':
        'the `arcs fleet` command (GET /fleet status query)',
    'cli.inspect':
        'the `arcs inspect` command (load + optional evaluation)',
    'cli.remine':
        'the `arcs remine` command (threshold re-mining)',
    'cli.score':
        'the `arcs score` command (CSV batch scoring)',
    'cli.watch':
        'the `arcs watch` command (stream -> window -> refit loop)',
    'cluster':
        'one clustering pass: mine, smooth, bitop, merge, prune',
    'fit_value':
        'one RHS value inside `arcs.fit_all`',
    'load':
        'reading the input artefact or CSV from disk',
    'merge':
        'merging adjacent clustered rectangles',
    'mine':
        'the single-pass rule engine over the BinArray',
    'optimizer.search':
        'the MDL-guided threshold search',
    'optimizer.trial':
        'one threshold pair tried by the optimizer',
    'profile':
        'profiling column types and occupancy for `describe`',
    'prune':
        'dynamic pruning of low-value clusters',
    'score':
        'scoring the input batch in `arcs score`',
    'serve.{endpoint}':
        'one HTTP request to the named serving endpoint',
    'smooth':
        'low-pass smoothing of the rule grid',
    'stream.refit':
        'one windowed refit: full clustering pass plus conditional publish',
    'verify':
        'sampled verification of the segmentation',
    'verify.exact':
        'exact full-scan verification of the segmentation',
}
