"""Fleet telemetry: one observable whole out of N serving workers.

The pre-fork server (:mod:`repro.serve.workers`) gives every forked
worker its own :class:`~repro.obs.metrics.MetricsRegistry` and event
sink — correct for fork safety, but it fragments observability: a
``/metrics`` scrape used to reflect only the one worker that answered
it.  This module is the parent-side half that closes the gap:

* each worker periodically (and finally, on drain) ships its
  ``MetricsRegistry.snapshot()`` plus event-sink counts to the parent
  over the existing ack queue;
* the parent's :class:`FleetAggregator` absorbs the payloads with
  **kind-aware** semantics — counters and histogram buckets sum through
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, while
  gauges are re-labeled ``{worker="N"}`` instead of summed (two
  workers' queue depths are independent readings; a summed drift PSI
  is meaningless);
* the merged snapshot is re-published as an **atomically replaced JSON
  document** (write-temp-then-``os.replace``, the same
  publish-don't-mutate pattern as the shared-memory scorer blocks) that
  every worker re-reads through a :class:`FleetView`, so *any* worker
  answering ``GET /metrics`` serves the fleet-wide view, and
  ``GET /fleet`` exposes the per-worker lifecycle surface (pid, uptime,
  spawn generation, restart count, ack latency, snapshot age, drain
  state).

Restarts are handled monotonically: when a worker comes back with a new
incarnation, its previous incarnation's counters and histograms are
folded into a per-slot base accumulator (gauges are dropped — a dead
process has no current value), so fleet counters never go backwards
just because the watchdog replaced a crashed worker.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from time import perf_counter

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger(__name__)

__all__ = [
    "FLEET_FORMAT",
    "FleetAggregator",
    "FleetView",
]

#: The ``format`` discriminator in every published fleet document.
FLEET_FORMAT = "arcs-fleet-telemetry"

#: Sync-broadcast timestamps kept for ack-latency bookkeeping; later
#: acks for older generations simply report no latency.
_SENT_GENERATIONS_KEPT = 32


class _WorkerState:
    """The parent's view of one worker slot (guarded by the aggregator
    lock; plain record, no methods that touch shared state)."""

    __slots__ = (
        "pid", "incarnation", "restarts", "snapshot", "events",
        "uptime_seconds", "draining", "last_snapshot_unix",
        "spawned_unix", "ack_generation", "ack_latency_seconds",
    )

    def __init__(self, pid: int | None, incarnation: int):
        self.pid = pid
        self.incarnation = incarnation
        self.restarts = 0
        self.snapshot: dict | None = None
        self.events: dict | None = None
        self.uptime_seconds = 0.0
        self.draining = False
        self.last_snapshot_unix: float | None = None
        self.spawned_unix = time.time()  # wall-clock: ok (ops surface)
        self.ack_generation = 0
        self.ack_latency_seconds: float | None = None


def _sum_counters(into: dict, counters: dict) -> None:
    for key, value in counters.items():
        into[key] = into.get(key, 0) + value


class FleetAggregator:
    """Absorbs worker telemetry and builds the merged fleet document.

    Thread-safe: :meth:`absorb`/:meth:`note_sync_ack` run on the
    parent's ack loop, :meth:`register_worker`/:meth:`note_restart` on
    the watchdog thread, and :meth:`publish` on whichever of them
    triggered it — all state is guarded by ``self._lock``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: dict[int, _WorkerState] = {}
        #: Per-slot accumulator of dead incarnations' counters and
        #: histograms (gauges dropped) — keeps fleet counters monotone
        #: across watchdog restarts.
        self._folds: dict[int, MetricsRegistry] = {}
        self._generation = 0
        self._absorbed = 0
        self._last_publish_seconds: float | None = None
        #: publisher generation -> broadcast perf_counter stamp.
        self._sync_sent: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle notes from the parent's supervision threads
    # ------------------------------------------------------------------
    def register_worker(self, index: int, pid: int | None,
                        incarnation: int) -> None:
        """Record a (re)spawned worker slot before its first snapshot."""
        with self._lock:
            state = self._workers.get(index)
            if state is None:
                self._workers[index] = _WorkerState(pid, incarnation)
                return
            self._fold_locked(index, state, incarnation)
            state.pid = pid
            state.spawned_unix = time.time()  # wall-clock: ok (ops surface)

    def note_restart(self, index: int) -> None:
        """The watchdog replaced a dead worker in this slot."""
        with self._lock:
            state = self._workers.get(index)
            if state is not None:
                state.restarts += 1

    def note_sync_sent(self, generation: int) -> None:
        """A ``sync`` (or initial spawn) broadcast went out; stamps the
        generation so the matching acks can report their latency."""
        with self._lock:
            self._sync_sent[generation] = perf_counter()
            while len(self._sync_sent) > _SENT_GENERATIONS_KEPT:
                del self._sync_sent[min(self._sync_sent)]

    def note_sync_ack(self, index: int, generation: int) -> None:
        """A worker acknowledged a generation; records its latency."""
        with self._lock:
            state = self._workers.get(index)
            if state is None:
                return
            state.ack_generation = max(state.ack_generation, generation)
            sent = self._sync_sent.get(generation)
            if sent is not None:
                state.ack_latency_seconds = perf_counter() - sent

    # ------------------------------------------------------------------
    # Telemetry intake
    # ------------------------------------------------------------------
    def absorb(self, index: int, payload: dict) -> None:
        """Take one worker's telemetry payload (see ``_worker_main``:
        pid, incarnation, uptime, drain flag, registry snapshot, event
        counts).  A changed incarnation folds the previous one's
        counters/histograms into the slot's base first."""
        with self._lock:
            state = self._workers.get(index)
            if state is None:
                state = self._workers[index] = _WorkerState(
                    payload.get("pid"), payload.get("incarnation", 0)
                )
            else:
                self._fold_locked(index, state,
                                  payload.get("incarnation", 0))
            state.pid = payload.get("pid", state.pid)
            state.snapshot = payload.get("snapshot") or {}
            state.events = payload.get("events")
            state.uptime_seconds = payload.get("uptime_seconds", 0.0)
            state.draining = bool(payload.get("draining", False))
            state.last_snapshot_unix = (
                time.time()  # wall-clock: ok (snapshot-age reporting)
            )
            self._absorbed += 1
            reporting = sum(
                1 for worker in self._workers.values()
                if worker.snapshot is not None and not worker.draining
            )
        metrics.inc("fleet.snapshots_absorbed")
        metrics.set_gauge("fleet.workers_reporting", reporting)

    def _fold_locked(self, index: int, state: _WorkerState,
                     incarnation: int) -> None:
        """Fold a finished incarnation's totals into the slot base.

        Caller holds ``self._lock``.  No-op when the incarnation is
        unchanged; otherwise the old snapshot's counters and histograms
        move into the per-slot accumulator and the slot starts clean at
        the new incarnation.
        """
        if incarnation == state.incarnation:
            return
        if state.snapshot:
            fold = self._folds.get(index)
            if fold is None:
                fold = self._folds[index] = MetricsRegistry()
            fold.merge_snapshot({
                "counters": state.snapshot.get("counters", {}),
                "histograms": state.snapshot.get("histograms", {}),
            })
        state.incarnation = incarnation
        state.snapshot = None
        state.events = None
        state.uptime_seconds = 0.0
        state.draining = False
        state.ack_latency_seconds = None

    # ------------------------------------------------------------------
    # Aggregation + publication
    # ------------------------------------------------------------------
    def aggregate(self, extra_snapshot: dict | None = None,
                  extra_label: str = "parent") -> dict:
        """The merged fleet snapshot: counters/histograms summed across
        every incarnation of every worker, gauges re-labeled per worker
        (``{worker="N"}``), never summed.  ``extra_snapshot`` (the
        parent's own registry) merges the same way under
        ``{worker="parent"}``."""
        with self._lock:
            folds = [fold.snapshot() for fold in self._folds.values()]
            live = {
                index: state.snapshot
                for index, state in self._workers.items()
                if state.snapshot
            }
        merged = MetricsRegistry()
        for fold in folds:
            merged.merge_snapshot(fold)
        for index, snapshot in live.items():
            merged.merge_snapshot({
                "counters": snapshot.get("counters", {}),
                "histograms": snapshot.get("histograms", {}),
            })
            merged.merge_snapshot(
                {"gauges": snapshot.get("gauges", {})},
                relabel_gauges={"worker": str(index)},
            )
        if extra_snapshot:
            merged.merge_snapshot({
                "counters": extra_snapshot.get("counters", {}),
                "histograms": extra_snapshot.get("histograms", {}),
            })
            merged.merge_snapshot(
                {"gauges": extra_snapshot.get("gauges", {})},
                relabel_gauges={"worker": extra_label},
            )
        return merged.snapshot()

    def _worker_counters_locked(self, index: int,
                                state: _WorkerState) -> dict:
        """This slot's cumulative counter totals across incarnations.
        Caller holds ``self._lock``."""
        totals: dict = {}
        fold = self._folds.get(index)
        if fold is not None:
            _sum_counters(totals, fold.snapshot()["counters"])
        if state.snapshot:
            _sum_counters(totals, state.snapshot.get("counters", {}))
        return totals

    def _describe_worker_locked(self, index: int,
                                state: _WorkerState) -> dict:
        return {
            "pid": state.pid,
            "spawn_generation": state.incarnation,
            "restarts": state.restarts,
            "uptime_seconds": state.uptime_seconds,
            "draining": state.draining,
            "spawned_unix": state.spawned_unix,
            "last_snapshot_unix": state.last_snapshot_unix,
            "ack_generation": state.ack_generation,
            "ack_latency_seconds": state.ack_latency_seconds,
            "events": state.events,
            "counters": self._worker_counters_locked(index, state),
        }

    def build_document(self, extra_snapshot: dict | None = None) -> dict:
        """The full fleet document: lifecycle surface + merged metrics."""
        aggregate = self.aggregate(extra_snapshot)
        with self._lock:
            self._generation += 1
            return {
                "format": FLEET_FORMAT,
                "generation": self._generation,
                "published_unix": (
                    time.time()  # wall-clock: ok (published-age reporting)
                ),
                "last_publish_seconds": self._last_publish_seconds,
                "snapshots_absorbed": self._absorbed,
                "workers": {
                    str(index): self._describe_worker_locked(index, state)
                    for index, state in sorted(self._workers.items())
                },
                "aggregate": aggregate,
            }

    def publish(self, path: str | Path,
                extra_snapshot: dict | None = None) -> dict:
        """Build and atomically replace the fleet document at ``path``.

        Write-to-temp-then-``os.replace`` in the same directory, so a
        worker's concurrent read sees either the previous complete
        document or the new one, never a torn write.  The wall time of
        the merge-plus-write is observed as ``fleet.publish_seconds``
        (the aggregation-overhead number the serving benchmark gates
        on) and surfaces in the *next* document as
        ``last_publish_seconds``.
        """
        started = perf_counter()
        path = Path(path)
        document = self.build_document(extra_snapshot)
        encoded = json.dumps(document, separators=(",", ":"))
        temp = path.with_name(f".{path.name}.tmp")
        temp.write_text(encoded, encoding="utf-8")
        os.replace(temp, path)
        elapsed = perf_counter() - started
        with self._lock:
            self._last_publish_seconds = elapsed
        metrics.observe("fleet.publish_seconds", elapsed)
        return document


class FleetView:
    """A worker's cached reader of the published fleet document.

    ``read`` re-stats the file and re-parses only when it changed
    (mtime + size), so serving the fleet view from a hot ``/metrics``
    endpoint costs one ``stat`` per scrape.  Returns ``None`` until the
    parent's first publish (callers fall back to the process-local
    view).  Thread-safe: handler threads share one view per service.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._stamp: tuple[int, int] | None = None
        self._document: dict | None = None

    def read(self) -> dict | None:
        try:
            stat = self.path.stat()
        except OSError:
            return None
        stamp = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            if stamp == self._stamp:
                return self._document
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Mid-replace or already unlinked: keep serving the last
            # complete document.
            with self._lock:
                return self._document
        if (not isinstance(document, dict)
                or document.get("format") != FLEET_FORMAT):
            logger.warning("ignoring malformed fleet document at %s",
                           self.path)
            with self._lock:
                return self._document
        with self._lock:
            self._stamp = stamp
            self._document = document
            return self._document
