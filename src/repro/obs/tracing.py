"""Tracing spans: the wall-clock skeleton of an instrumented run.

A :class:`Span` is a named, timed region of code with free-form
attributes and child spans; one ARCS run produces a span *tree* whose
root covers the whole run and whose leaves are the pipeline stages
(bin, mine, smooth, bitop, prune, verify, ...).  Spans are created with
:func:`trace`, used as context managers, and nest via a
:mod:`contextvars` variable — so nesting is correct per thread and
per async task without any locking on the hot path.

Tracing is **off by default**.  When it is off — or when no run has
installed a root span — :func:`trace` returns a shared no-op span, so
instrumented code pays only a context-variable read.  The
:class:`~repro.obs.report.RunCapture` context manager installs the root
span; library code never needs to.

Timing uses :func:`time.perf_counter` (monotonic, highest available
resolution); the absolute start time of a run is recorded once by the
capture layer with :func:`time.time` for humans.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter

__all__ = [
    "Span",
    "NOOP_SPAN",
    "trace",
    "current_span",
    "enable",
    "disable",
    "enabled",
]

#: The innermost live span of the calling context (``None`` when no run
#: is being traced, which is the disabled fast path).
_current: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None
)

_enabled: bool = False


def enable() -> None:
    """Allow run captures to install root spans."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Stop tracing: subsequent captures record nothing."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether tracing is globally enabled."""
    return _enabled


class Span:
    """One named, timed region: a node of the run's span tree.

    Use as a context manager; entering starts the clock and makes the
    span the current parent, exiting stops the clock and restores the
    previous parent.  An exception propagating through the span is
    recorded in the ``error`` attribute but never swallowed.
    """

    __slots__ = (
        "name", "attributes", "children", "started", "duration", "_token",
    )

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.started: float | None = None
        self.duration: float | None = None
        self._token = None

    def set(self, key: str, value) -> "Span":
        """Attach one attribute; returns the span for chaining."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        self.started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self.started
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        _current.reset(self._token)
        self._token = None
        return False

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def self_seconds(self) -> float:
        """Time spent in this span outside any child span."""
        own = self.duration or 0.0
        timed = sum(c.duration for c in self.children
                    if c.duration is not None)
        return max(0.0, own - timed)

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, pre-order."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready nested representation of the subtree.

        ``started_seconds`` is the span's start on the monotonic clock —
        only differences between spans of the same tree are meaningful;
        the trace exporter (:mod:`repro.obs.trace_export`) uses them to
        lay spans out on a timeline.
        """
        payload: dict = {"name": self.name}
        if self.started is not None:
            payload["started_seconds"] = self.started
        if self.duration is not None:
            payload["duration_seconds"] = self.duration
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span tree serialized by :meth:`to_dict`."""
        span = cls(payload["name"], payload.get("attributes"))
        span.started = payload.get("started_seconds")
        span.duration = payload.get("duration_seconds")
        span.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        timed = (
            "unfinished" if self.duration is None
            else f"{self.duration:.6f}s"
        )
        return (f"Span({self.name!r}, {timed}, "
                f"{len(self.children)} children)")


class _NoOpSpan:
    """Shared stateless stand-in returned when tracing is inactive."""

    __slots__ = ()
    name = ""
    attributes: dict = {}
    children: tuple = ()
    duration = None

    def set(self, key: str, value) -> "_NoOpSpan":
        return self

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span (safe to reuse concurrently: it has no state).
NOOP_SPAN = _NoOpSpan()


def trace(name: str, **attributes):
    """Open a child span under the current one, or a no-op when idle.

    The returned object is a context manager either way, so call sites
    read identically whether tracing is active or not::

        with trace("bitop", grid=grid.n_x * grid.n_y):
            ...

    A span is only recorded while a run capture (or an explicitly
    entered root :class:`Span`) is active in the calling context.
    """
    parent = _current.get()
    if parent is None:
        return NOOP_SPAN
    span = Span(name, attributes)
    parent.children.append(span)
    return span


def current_span():
    """The innermost live span of this context, or ``None``."""
    return _current.get()
