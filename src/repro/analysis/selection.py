"""Attribute selection helpers (paper Sections 1 and 5).

The paper assumes the user picks the two LHS attributes but points at
statistical techniques — factor analysis / principal component analysis
(Section 1) and information-gain measures such as entropy (Section 5) —
for choosing the most influential pair automatically.  Both families are
implemented here:

* :func:`information_gain` scores one quantitative attribute against the
  group label by entropy reduction over equi-width bins;
* :func:`rank_attribute_pairs` ranks candidate LHS pairs by joint
  information gain, the selection criterion the future-work section
  sketches;
* :func:`principal_components` computes the covariance eigenstructure of
  the quantitative attributes, exposing the variance-dominant directions
  PCA-based selection would use.
"""

from __future__ import annotations

import logging

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.data.schema import Table

logger = logging.getLogger(__name__)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def _label_codes(table: Table, label_attribute: str) -> np.ndarray:
    labels = table.column(label_attribute)
    values = {value: code for code, value in
              enumerate(dict.fromkeys(labels.tolist()))}
    return np.asarray([values[label] for label in labels], dtype=np.int64)


def information_gain(table: Table, attribute: str, label_attribute: str,
                     n_bins: int = 10) -> float:
    """Information gain of a binned quantitative attribute w.r.t. labels.

    ``H(label) - H(label | bin(attribute))`` with equi-width bins over the
    attribute's range; higher means the attribute separates the groups
    better, so it is a better LHS candidate.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    codes = _label_codes(table, label_attribute)
    n_labels = int(codes.max()) + 1 if len(codes) else 0
    base = _entropy(np.bincount(codes, minlength=n_labels))

    values = table.column(attribute)
    low, high = table.observed_range(attribute)
    edges = np.linspace(low, high, n_bins + 1)
    bins = np.clip(np.searchsorted(edges, values, side="right") - 1,
                   0, n_bins - 1)

    conditional = 0.0
    n = len(table)
    for b in range(n_bins):
        mask = bins == b
        weight = mask.sum() / n if n else 0.0
        if weight == 0.0:
            continue
        conditional += weight * _entropy(
            np.bincount(codes[mask], minlength=n_labels)
        )
    return base - conditional


def joint_information_gain(table: Table, attribute_a: str, attribute_b: str,
                           label_attribute: str, n_bins: int = 10) -> float:
    """Information gain of the *pair* over a joint equi-width grid."""
    codes = _label_codes(table, label_attribute)
    n_labels = int(codes.max()) + 1 if len(codes) else 0
    base = _entropy(np.bincount(codes, minlength=n_labels))

    def binned(name: str) -> np.ndarray:
        values = table.column(name)
        low, high = table.observed_range(name)
        edges = np.linspace(low, high, n_bins + 1)
        return np.clip(
            np.searchsorted(edges, values, side="right") - 1, 0, n_bins - 1
        )

    joint = binned(attribute_a) * n_bins + binned(attribute_b)
    conditional = 0.0
    n = len(table)
    for cell in np.unique(joint):
        mask = joint == cell
        weight = mask.sum() / n
        conditional += weight * _entropy(
            np.bincount(codes[mask], minlength=n_labels)
        )
    return base - conditional


def rank_attribute_pairs(table: Table, candidates: Sequence[str],
                         label_attribute: str,
                         n_bins: int = 10) -> list[tuple[float, str, str]]:
    """Rank quantitative attribute pairs by joint information gain.

    Returns ``(gain, attribute_a, attribute_b)`` triples, best first —
    the automated version of "the two LHS attributes are chosen by the
    user".
    """
    ranked = []
    for a, b in combinations(candidates, 2):
        gain = joint_information_gain(table, a, b, label_attribute, n_bins)
        ranked.append((gain, a, b))
    ranked.sort(key=lambda triple: (-triple[0], triple[1], triple[2]))
    if ranked:
        logger.debug(
            "ranked %d attribute pairs; best (%s, %s) gain=%.4f",
            len(ranked), ranked[0][1], ranked[0][2], ranked[0][0],
        )
    return ranked


def principal_components(table: Table,
                         attributes: Sequence[str]) -> tuple[np.ndarray,
                                                             np.ndarray]:
    """Eigenvalues and eigenvectors of the standardised covariance matrix.

    Columns are standardised (zero mean, unit variance) so domains of very
    different scales (age vs salary) contribute comparably.  Returns
    ``(eigenvalues, eigenvectors)`` sorted by descending eigenvalue;
    ``eigenvectors[:, k]`` is the k-th component over ``attributes``.
    """
    if len(attributes) < 2:
        raise ValueError("need at least two attributes for PCA")
    matrix = np.column_stack(
        [np.asarray(table.column(name), dtype=np.float64)
         for name in attributes]
    )
    matrix = matrix - matrix.mean(axis=0)
    scales = matrix.std(axis=0)
    scales[scales == 0] = 1.0
    matrix = matrix / scales
    covariance = np.cov(matrix, rowvar=False)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    return eigenvalues[order], eigenvectors[:, order]
