"""Noise-floor calibration for the synthetic experiments.

The evaluation's error rates sit on two irreducible floors that no
segmentation can beat, and honest paper-vs-measured comparisons need
them quantified:

* **perturbation floor** — after the generator perturbs the labelled
  attributes, some tuples sit on the wrong side of their region
  boundary while keeping the original label; any classifier that reads
  only the perturbed attributes must miscount them;
* **outlier floor** — a fraction ``U`` of tuples carries a flipped
  label by construction.

:func:`label_noise_rate` measures the combined floor empirically (the
fraction of tuples whose stored label disagrees with the generating
function applied to the stored attribute values), and
:func:`decompose_error` splits a measured error rate into floor and
structural excess — the part a better segmentation could actually
remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.functions import classification_function
from repro.data.schema import Table


def label_noise_rate(table: Table, function_id: int,
                     group_column: str = "group",
                     group_a: str = "A") -> float:
    """Fraction of tuples whose label contradicts the generating
    function evaluated on the (possibly perturbed) attributes.

    On unperturbed, outlier-free data this is exactly zero; with the
    paper's 5% perturbation it is the boundary-noise floor, and with
    ``U`` outliers it gains (approximately) ``U`` on top.
    """
    in_a = classification_function(function_id)(table)
    labels = table.column(group_column)
    return float(np.mean((labels == group_a) != in_a))


@dataclass(frozen=True)
class ErrorDecomposition:
    """A measured error split into irreducible floor and excess."""

    measured: float
    floor: float

    @property
    def structural(self) -> float:
        """Error attributable to the segmentation itself (>= 0 up to
        sampling noise)."""
        return max(0.0, self.measured - self.floor)

    def __str__(self) -> str:
        return (
            f"measured={self.measured:.4f} = floor {self.floor:.4f} "
            f"+ structural {self.structural:.4f}"
        )


def decompose_error(measured_error: float, table: Table,
                    function_id: int,
                    group_column: str = "group",
                    group_a: str = "A") -> ErrorDecomposition:
    """Split a measured error rate into noise floor and structural part.

    The floor is :func:`label_noise_rate` on ``table``; anything above
    it is what the segmentation leaves on the table (bin granularity,
    under/over-coverage).
    """
    if not 0.0 <= measured_error <= 1.0:
        raise ValueError("measured_error outside [0, 1]")
    floor = label_noise_rate(
        table, function_id, group_column=group_column, group_a=group_a
    )
    return ErrorDecomposition(measured=measured_error, floor=floor)
