"""A consolidated evaluation report for a fitted ARCS result.

Pulls the scattered quality evidence into one text document: the rules
themselves, the winning thresholds, the verifier's estimate with its
noise-floor decomposition, the exact region accuracy when the
generating truth is known, and the optimizer's search transcript.  The
examples and the CLI use it; it is also a worked demonstration of how
the analysis modules compose.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.accuracy import exact_region_error
from repro.analysis.calibration import decompose_error
from repro.core.arcs import ARCSResult
from repro.data.functions import Region
from repro.data.schema import Table
from repro.viz.report import format_trial_history


def evaluation_report(result: ARCSResult, table: Table | None = None,
                      function_id: int | None = None,
                      true_regions: Sequence[Region] | None = None,
                      x_range: tuple[float, float] | None = None,
                      y_range: tuple[float, float] | None = None,
                      include_history: bool = True) -> str:
    """Render a full evaluation of ``result`` as text.

    Parameters
    ----------
    result:
        A fitted :class:`~repro.core.arcs.ARCSResult`.
    table, function_id:
        When both are given, the measured error is decomposed into the
        generator's irreducible noise floor and the structural excess.
    true_regions, x_range, y_range:
        When all are given, the exact (area-based) region accuracy of
        paper Figure 9 is included.
    include_history:
        Append the optimizer's trial transcript.
    """
    segmentation = result.segmentation
    lines = [
        f"Segmentation for {segmentation.rhs_attribute} = "
        f"{segmentation.rhs_value} over "
        f"({segmentation.x_attribute}, {segmentation.y_attribute})",
        "=" * 64,
        segmentation.describe(),
        "",
        f"winning thresholds: min support {result.best_trial.min_support:.6f}, "
        f"min confidence {result.best_trial.min_confidence:.4f}",
        f"verifier estimate: error rate "
        f"{result.best_trial.report.error_rate:.4f} "
        f"(+/- {result.best_trial.report.error_rate_stderr:.4f} s.e., "
        f"{result.best_trial.report.repeats} x "
        f"{result.best_trial.report.sample_size} samples)",
        f"MDL cost: {result.best_trial.mdl_cost:.3f}   "
        f"search stopped by: {result.stopped_by}",
    ]

    if table is not None and function_id is not None:
        decomposition = decompose_error(
            result.best_trial.report.error_rate, table, function_id,
            group_column=segmentation.rhs_attribute,
            group_a=segmentation.rhs_value,
        )
        lines.append(f"noise decomposition: {decomposition}")

    if (true_regions is not None and x_range is not None
            and y_range is not None):
        region_report = exact_region_error(
            segmentation, true_regions, x_range, y_range
        )
        lines.append(
            "exact region accuracy: "
            f"FP area {region_report.false_positive_area:.4f}, "
            f"FN area {region_report.false_negative_area:.4f}, "
            f"Jaccard {region_report.jaccard:.3f}"
        )

    if include_history:
        lines.extend([
            "",
            f"optimizer transcript ({len(result.history)} trials):",
            format_trial_history(result.history),
        ])
    return "\n".join(lines)
