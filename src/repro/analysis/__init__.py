"""Analysis utilities around ARCS output.

* :mod:`repro.analysis.segmentation` — the segmentation object (all
  clustered rules for one criterion value) and its region algebra.
* :mod:`repro.analysis.accuracy` — the exact, area-based
  false-positive/false-negative analysis of paper Figure 9, available when
  the generating function's true regions are known.
* :mod:`repro.analysis.selection` — entropy/information-gain and principal
  component attribute selection (paper Sections 1 and 5).
"""

from repro.analysis.accuracy import RegionErrorReport, exact_region_error
from repro.analysis.calibration import (
    ErrorDecomposition,
    decompose_error,
    label_noise_rate,
)
from repro.analysis.report import evaluation_report
from repro.core.segmentation import Segmentation
from repro.analysis.selection import (
    information_gain,
    principal_components,
    rank_attribute_pairs,
)

__all__ = [
    "Segmentation",
    "ErrorDecomposition",
    "decompose_error",
    "label_noise_rate",
    "evaluation_report",
    "RegionErrorReport",
    "exact_region_error",
    "information_gain",
    "principal_components",
    "rank_attribute_pairs",
]
