"""Exact region-overlap accuracy analysis (paper Figure 9).

When the generating function's true Group-A regions are known (synthetic
data, functions 1–3), the error of a computed segmentation can be measured
*exactly* as area rather than estimated from samples:

* **false-positive area** — points the computed clusters claim that the
  true regions do not contain,
* **false-negative area** — points of the true regions no cluster covers.

Both are computed with closed-form rectangle algebra (the computed
clusters and the true regions are all axis-aligned rectangles), normalised
by the attribute-space area so they are comparable across domains.  The
paper uses this picture to motivate the sampled verifier; the tests use it
the other way, to check the verifier's estimates against truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.segmentation import Segmentation
from repro.data.functions import Region


@dataclass(frozen=True)
class _Box:
    """Internal half-open rectangle in value space."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    @property
    def area(self) -> float:
        return max(0.0, self.x_hi - self.x_lo) * max(
            0.0, self.y_hi - self.y_lo
        )

    def intersect(self, other: "_Box") -> "_Box":
        return _Box(
            max(self.x_lo, other.x_lo), min(self.x_hi, other.x_hi),
            max(self.y_lo, other.y_lo), min(self.y_hi, other.y_hi),
        )


def union_area(boxes: Sequence[_Box]) -> float:
    """Area of the union of axis-aligned boxes, by coordinate-grid
    decomposition (exact; fine for the handful of rules involved)."""
    boxes = [box for box in boxes if box.area > 0]
    if not boxes:
        return 0.0
    xs = sorted({box.x_lo for box in boxes} | {box.x_hi for box in boxes})
    ys = sorted({box.y_lo for box in boxes} | {box.y_hi for box in boxes})
    total = 0.0
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            cx = (xs[i] + xs[i + 1]) / 2.0
            cy = (ys[j] + ys[j + 1]) / 2.0
            covered = any(
                box.x_lo <= cx < box.x_hi and box.y_lo <= cy < box.y_hi
                for box in boxes
            )
            if covered:
                total += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j])
    return total


def _intersection_of_unions(a: Sequence[_Box], b: Sequence[_Box]) -> float:
    """Area of (union of a) ∩ (union of b)."""
    pieces = []
    for box_a in a:
        for box_b in b:
            piece = box_a.intersect(box_b)
            if piece.area > 0:
                pieces.append(piece)
    return union_area(pieces)


@dataclass(frozen=True)
class RegionErrorReport:
    """Exact area-based accuracy of a segmentation against truth.

    Areas are normalised by the attribute-space area, so
    ``false_positive_area + false_negative_area`` is directly comparable
    to the verifier's tuple-based error rate under uniform data.
    """

    false_positive_area: float
    false_negative_area: float
    true_area: float
    computed_area: float

    @property
    def total_error_area(self) -> float:
        return self.false_positive_area + self.false_negative_area

    @property
    def jaccard(self) -> float:
        """Intersection-over-union of computed vs true regions."""
        intersection = self.computed_area - self.false_positive_area
        union = self.computed_area + self.false_negative_area
        return intersection / union if union > 0 else 1.0


def exact_region_error(segmentation: Segmentation,
                       true_regions: Sequence[Region],
                       x_range: tuple[float, float],
                       y_range: tuple[float, float]) -> RegionErrorReport:
    """Compute the Figure 9 error picture exactly.

    Parameters
    ----------
    segmentation:
        The computed clustered rules.
    true_regions:
        The generating function's Group-A rectangles (from
        :func:`repro.data.functions.true_regions`).
    x_range, y_range:
        Attribute domains, used to normalise areas.
    """
    (x_lo, x_hi), (y_lo, y_hi) = x_range, y_range
    space_area = (x_hi - x_lo) * (y_hi - y_lo)
    if space_area <= 0:
        raise ValueError("attribute space has no area")

    computed = [
        _Box(
            rule.x_interval.low, rule.x_interval.high,
            rule.y_interval.low, rule.y_interval.high,
        )
        for rule in segmentation.rules
    ]
    truth = [
        _Box(region.x_lo, region.x_hi, region.y_lo, region.y_hi)
        for region in true_regions
    ]

    computed_area = union_area(computed)
    true_area = union_area(truth)
    overlap = _intersection_of_unions(computed, truth)

    return RegionErrorReport(
        false_positive_area=(computed_area - overlap) / space_area,
        false_negative_area=(true_area - overlap) / space_area,
        true_area=true_area / space_area,
        computed_area=computed_area / space_area,
    )
