"""Compatibility alias: :class:`Segmentation` lives in
:mod:`repro.core.segmentation` (core depends on it, so it is core API);
this module keeps the documented ``repro.analysis`` import path working."""

from repro.core.segmentation import Segmentation

__all__ = ["Segmentation"]
