"""Categorical LHS attributes (paper Section 5).

The base system requires quantitative LHS attributes because "the lack of
ordering in categorical attributes introduces additional complexity".
The paper's sketched extension — implemented here — handles one
categorical LHS attribute paired with one quantitative attribute:

1. order the categorical values by the *density* of the criterion group
   among their tuples (confidence), so that values likely to cluster
   together become adjacent ("by using the ordering of the quantitative
   attribute we consider only those subsets of the categorical attribute
   that yield the densest clusters");
2. replace the categorical column with each value's rank in that order
   (one bin per value) and run the ordinary ARCS pipeline;
3. translate each cluster's rank interval back into the *set* of
   categorical values it spans.

The resulting :class:`CategoricalRule` reads
``X in {v1, v2, ...} AND lo <= Y < hi => C = g``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arcs import ARCS, ARCSConfig
from repro.core.rules import Interval
from repro.data.schema import Table, quantitative


@dataclass(frozen=True)
class CategoricalRule:
    """A clustered rule whose x side is a set of categorical values."""

    x_attribute: str
    x_values: tuple
    y_attribute: str
    y_interval: Interval
    rhs_attribute: str
    rhs_value: object
    support: float
    confidence: float

    def matches(self, x_values, y_values) -> np.ndarray:
        value_set = set(self.x_values)
        in_x = np.asarray([value in value_set for value in x_values])
        return in_x & self.y_interval.contains(y_values)

    def __str__(self) -> str:
        rendered = ", ".join(str(value) for value in self.x_values)
        return (
            f"{self.x_attribute} in {{{rendered}}} AND "
            f"{self.y_interval.describe(self.y_attribute)} => "
            f"{self.rhs_attribute} = {self.rhs_value} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f})"
        )


def density_ordering(table: Table, attribute: str, rhs_attribute: str,
                     target_value) -> list:
    """Categorical values ordered by descending criterion density.

    Density is the fraction of the value's tuples in the criterion group;
    ties break on the value's representation for determinism.
    """
    values = table.categorical_values(attribute)
    column = table.column(attribute)
    labels = table.column(rhs_attribute)
    is_target = np.asarray(labels == target_value)
    scored = []
    for value in values:
        mask = np.asarray(column == value)
        count = int(mask.sum())
        density = float(np.sum(mask & is_target)) / count if count else 0.0
        scored.append((-density, repr(value), value))
    scored.sort()
    return [value for _, _, value in scored]


def fit_categorical_lhs(table: Table, x_attribute: str, y_attribute: str,
                        rhs_attribute: str, target_value,
                        config: ARCSConfig | None = None):
    """Run ARCS with a categorical x attribute.

    Returns ``(rules, ordering, result)``: the translated
    :class:`CategoricalRule` list, the density ordering used, and the
    underlying :class:`~repro.core.arcs.ARCSResult` on the rank-encoded
    data.
    """
    spec = table.spec(x_attribute)
    if not spec.is_categorical:
        raise ValueError(
            f"{x_attribute!r} is not categorical; use ARCS directly"
        )
    ordering = density_ordering(
        table, x_attribute, rhs_attribute, target_value
    )
    rank_of = {value: rank for rank, value in enumerate(ordering)}
    ranks = np.asarray(
        [rank_of[value] for value in table.column(x_attribute)],
        dtype=np.float64,
    )
    rank_attribute = f"{x_attribute}__rank"
    # One bin per categorical value: domain [0, n) with n bins puts each
    # rank exactly in its own bin.
    encoded = table.with_column(
        quantitative(rank_attribute, 0.0, float(len(ordering))), ranks
    )

    base = config or ARCSConfig()
    arcs_config = ARCSConfig(
        n_bins_x=len(ordering),
        n_bins_y=base.n_bins_y,
        binning_strategy=base.binning_strategy,
        clusterer=base.clusterer,
        optimizer=base.optimizer,
        mdl_weights=base.mdl_weights,
        sample_size=base.sample_size,
        sample_repeats=base.sample_repeats,
        seed=base.seed,
    )
    result = ARCS(arcs_config).fit(
        encoded, rank_attribute, y_attribute, rhs_attribute, target_value
    )

    rules = []
    for rule in result.segmentation.rules:
        members = _interval_to_values(rule.x_interval, ordering)
        rules.append(
            CategoricalRule(
                x_attribute=x_attribute,
                x_values=members,
                y_attribute=y_attribute,
                y_interval=rule.y_interval,
                rhs_attribute=rhs_attribute,
                rhs_value=target_value,
                support=rule.support,
                confidence=rule.confidence,
            )
        )
    return rules, ordering, result


def _interval_to_values(interval: Interval, ordering: list) -> tuple:
    """Translate a rank-space interval back to categorical values."""
    first_rank = int(np.floor(interval.low))
    last_rank = int(np.ceil(interval.high)) - 1
    last_rank = min(last_rank, len(ordering) - 1)
    return tuple(ordering[first_rank:last_rank + 1])


@dataclass(frozen=True)
class CategoricalPairRule:
    """A clustered rule whose *both* LHS sides are value sets.

    The Section 5 goal "handle both categorical and quantitative
    attributes on the LHS" in its all-categorical form.
    """

    x_attribute: str
    x_values: tuple
    y_attribute: str
    y_values: tuple
    rhs_attribute: str
    rhs_value: object
    support: float
    confidence: float

    def matches(self, x_values, y_values) -> np.ndarray:
        x_set, y_set = set(self.x_values), set(self.y_values)
        in_x = np.asarray([value in x_set for value in x_values])
        in_y = np.asarray([value in y_set for value in y_values])
        return in_x & in_y

    def __str__(self) -> str:
        x_rendered = ", ".join(str(v) for v in self.x_values)
        y_rendered = ", ".join(str(v) for v in self.y_values)
        return (
            f"{self.x_attribute} in {{{x_rendered}}} AND "
            f"{self.y_attribute} in {{{y_rendered}}} => "
            f"{self.rhs_attribute} = {self.rhs_value} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f})"
        )


def fit_categorical_pair(table: Table, x_attribute: str,
                         y_attribute: str, rhs_attribute: str,
                         target_value,
                         config: ARCSConfig | None = None):
    """Run ARCS with two categorical LHS attributes.

    Both attributes are independently density-ordered (the paper's
    "subsets ... that yield the densest clusters" heuristic applied per
    axis), rank-encoded one-bin-per-value, clustered as usual, and the
    resulting rectangles translated back to value-set pairs.

    Returns ``(rules, (x_ordering, y_ordering), result)``.
    """
    for name in (x_attribute, y_attribute):
        if not table.spec(name).is_categorical:
            raise ValueError(
                f"{name!r} is not categorical; use fit_categorical_lhs "
                "for mixed pairs or ARCS for quantitative pairs"
            )
    x_ordering = density_ordering(
        table, x_attribute, rhs_attribute, target_value
    )
    y_ordering = density_ordering(
        table, y_attribute, rhs_attribute, target_value
    )
    encoded = table
    rank_names = []
    for name, ordering in ((x_attribute, x_ordering),
                           (y_attribute, y_ordering)):
        rank_of = {value: rank for rank, value in enumerate(ordering)}
        ranks = np.asarray(
            [rank_of[value] for value in table.column(name)],
            dtype=np.float64,
        )
        rank_name = f"{name}__rank"
        rank_names.append(rank_name)
        encoded = encoded.with_column(
            quantitative(rank_name, 0.0, float(len(ordering))), ranks
        )

    base = config or ARCSConfig()
    arcs_config = ARCSConfig(
        n_bins_x=len(x_ordering),
        n_bins_y=len(y_ordering),
        binning_strategy=base.binning_strategy,
        clusterer=base.clusterer,
        optimizer=base.optimizer,
        mdl_weights=base.mdl_weights,
        sample_size=base.sample_size,
        sample_repeats=base.sample_repeats,
        seed=base.seed,
    )
    result = ARCS(arcs_config).fit(
        encoded, rank_names[0], rank_names[1], rhs_attribute,
        target_value,
    )

    rules = []
    for rule in result.segmentation.rules:
        rules.append(
            CategoricalPairRule(
                x_attribute=x_attribute,
                x_values=_interval_to_values(rule.x_interval,
                                             x_ordering),
                y_attribute=y_attribute,
                y_values=_interval_to_values(rule.y_interval,
                                             y_ordering),
                rhs_attribute=rhs_attribute,
                rhs_value=target_value,
                support=rule.support,
                confidence=rule.confidence,
            )
        )
    return rules, (x_ordering, y_ordering), result
