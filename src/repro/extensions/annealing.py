"""Simulated-annealing threshold optimizer (paper Section 5).

"Other search techniques such as simulated annealing can also be used in
the optimization step."  This optimizer walks the same occurring-value
threshold lattice as the heuristic optimizer, but moves by Metropolis
steps: a random neighbour (one step along the support or confidence axis)
is always accepted when it lowers the MDL cost and accepted with
probability ``exp(-delta / temperature)`` when it raises it; the
temperature decays geometrically.  Trials are cached by lattice position,
so revisiting a state costs nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.binning.bin_array import BinArray
from repro.core.clusterer import GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.optimizer import (
    OptimizerResult,
    ThresholdLattice,
    TrialRecord,
    segmentation_from_outcome,
)
from repro.core.verifier import Verifier


@dataclass(frozen=True)
class AnnealingConfig:
    """Annealing schedule and lattice-coarsening knobs."""

    max_support_levels: int = 16
    max_confidence_levels: int = 8
    initial_temperature: float = 2.0
    cooling: float = 0.85
    steps_per_temperature: int = 4
    min_temperature: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_support_levels <= 0 or self.max_confidence_levels <= 0:
            raise ValueError("level counts must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.initial_temperature <= 0 or self.min_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.steps_per_temperature <= 0:
            raise ValueError("steps_per_temperature must be positive")


@dataclass
class AnnealingOptimizer:
    """Drop-in alternative to the heuristic optimizer (same result type)."""

    clusterer: GridClusterer
    verifier: Verifier
    weights: MDLWeights = field(default_factory=MDLWeights)
    config: AnnealingConfig = field(default_factory=AnnealingConfig)

    def search(self, bin_array: BinArray, rhs_code: int) -> OptimizerResult:
        lattice = ThresholdLattice(bin_array, rhs_code)
        supports = lattice.coarsen_supports(self.config.max_support_levels)
        if not supports:
            raise ValueError(
                "the target RHS value does not occur in the binned data"
            )
        # A fixed confidence axis per support index keeps the state space
        # a simple grid; confidences are recomputed per support level.
        confidence_axes = []
        for support in supports:
            support_count = max(1, int(round(support * lattice.n_total)))
            axis = lattice.coarsen_confidences(
                support_count, self.config.max_confidence_levels
            )
            confidence_axes.append(axis if axis else [0.0])

        rng = np.random.default_rng(self.config.seed)
        cache: dict[tuple[int, int], tuple] = {}
        history: list[TrialRecord] = []

        def evaluate(si: int, ci: int):
            ci = min(ci, len(confidence_axes[si]) - 1)
            key = (si, ci)
            if key not in cache:
                outcome = self.clusterer.cluster(
                    bin_array, rhs_code,
                    supports[si], confidence_axes[si][ci],
                )
                segmentation = segmentation_from_outcome(
                    outcome, bin_array, rhs_code
                )
                report = self.verifier.verify(segmentation)
                cost = self.weights.cost(
                    len(segmentation), report.mean_errors
                )
                trial = TrialRecord(
                    min_support=supports[si],
                    min_confidence=confidence_axes[si][ci],
                    n_clusters=len(segmentation),
                    report=report,
                    mdl_cost=cost,
                )
                cache[key] = (trial, segmentation, outcome)
                history.append(trial)
            return cache[key]

        # Start where the heuristic search starts: lowest support, and the
        # middle of its confidence axis.
        si, ci = 0, len(confidence_axes[0]) // 2
        current_trial, *_ = evaluate(si, ci)
        best_key = (si, min(ci, len(confidence_axes[si]) - 1))
        best_trial = current_trial

        temperature = self.config.initial_temperature
        while temperature > self.config.min_temperature:
            for _ in range(self.config.steps_per_temperature):
                nsi, nci = _neighbour(
                    si, ci, len(supports),
                    len(confidence_axes[si]), rng,
                )
                trial, *_ = evaluate(nsi, nci)
                delta = trial.mdl_cost - current_trial.mdl_cost
                metropolis = (
                    delta <= 0
                    or (math.isfinite(delta)
                        and rng.random() < math.exp(-delta / temperature))
                )
                if metropolis:
                    si, ci = nsi, min(nci, len(confidence_axes[nsi]) - 1)
                    current_trial = trial
                    if trial.mdl_cost < best_trial.mdl_cost:
                        best_trial = trial
                        best_key = (si, ci)
            temperature *= self.config.cooling

        _, segmentation, outcome = cache[best_key]
        return OptimizerResult(
            best=best_trial,
            segmentation=segmentation,
            outcome=outcome,
            history=tuple(history),
            stopped_by="annealing schedule",
        )


def _neighbour(si: int, ci: int, n_supports: int, n_confidences: int,
               rng: np.random.Generator) -> tuple[int, int]:
    """One random lattice step, clamped to the grid."""
    if rng.random() < 0.5:
        si = int(np.clip(si + (1 if rng.random() < 0.5 else -1),
                         0, n_supports - 1))
    else:
        ci = int(np.clip(ci + (1 if rng.random() < 0.5 else -1),
                         0, n_confidences - 1))
    return si, ci
