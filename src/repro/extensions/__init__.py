"""Extensions: the paper's Section 5 future-work features, implemented.

* :mod:`repro.extensions.multidim` — clusters over more than two
  attributes, built by iteratively combining overlapping two-attribute
  clustered rules.
* :mod:`repro.extensions.categorical_lhs` — a categorical LHS attribute,
  handled by ordering its values by target density ("we consider only
  those subsets of the categorical attribute that yield the densest
  clusters").
* :mod:`repro.extensions.annealing` — simulated annealing as the
  alternative threshold optimizer the paper suggests.
* :mod:`repro.extensions.factorial` — two-level factorial design (Fisher /
  Box-Hunter-Hunter) to cut the number of optimizer runs.
"""

from repro.extensions.annealing import AnnealingConfig, AnnealingOptimizer
from repro.extensions.categorical_lhs import (
    CategoricalPairRule,
    CategoricalRule,
    fit_categorical_lhs,
    fit_categorical_pair,
)
from repro.extensions.factorial import FactorialReport, factorial_search
from repro.extensions.multidim import (
    MultiDimRule,
    combine_segmentations,
    fit_multidim,
)

__all__ = [
    "MultiDimRule",
    "combine_segmentations",
    "fit_multidim",
    "CategoricalRule",
    "CategoricalPairRule",
    "fit_categorical_lhs",
    "fit_categorical_pair",
    "AnnealingOptimizer",
    "AnnealingConfig",
    "factorial_search",
    "FactorialReport",
]
