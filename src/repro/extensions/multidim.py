"""Clusters over more than two attributes (paper Section 5).

"One way in which we can extend our proposed system is by iteratively
combining overlapping sets of two-attribute clustered association rules to
produce clusters that have an arbitrary number of attributes."

The combination rule implemented here: given a segmentation over
attributes ``(A, B)`` and one over ``(B, C)`` (same RHS criterion), every
pair of rules whose ``B`` intervals overlap proposes the box

``A in I_A  AND  B in (I_B ∩ I_B')  AND  C in I_C  =>  criterion``

Candidate boxes are then re-scored against the source data and kept only
when they clear the support and confidence thresholds — the overlap of two
2-D projections is necessary but not sufficient for a dense 3-D region,
so verification against tuples is what makes the combination sound.
Applying :func:`combine_segmentations` repeatedly grows the attribute set
one attribute at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.rules import Interval
from repro.core.segmentation import Segmentation
from repro.data.schema import Table


@dataclass(frozen=True)
class MultiDimRule:
    """A clustered rule over an arbitrary set of quantitative attributes.

    ``intervals`` maps attribute name to its :class:`Interval`; the rule
    reads ``AND_k (attr_k in I_k) => rhs_attribute = rhs_value``.
    """

    intervals: dict[str, Interval]
    rhs_attribute: str
    rhs_value: object
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("a multi-dimensional rule needs intervals")
        object.__setattr__(self, "intervals", dict(self.intervals))

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(sorted(self.intervals))

    def matches(self, table: Table) -> np.ndarray:
        """Vectorised membership over a table with all the attributes."""
        result = np.ones(len(table), dtype=bool)
        for attribute, interval in self.intervals.items():
            result &= interval.contains(table.column(attribute))
        return result

    def __str__(self) -> str:
        lhs = " AND ".join(
            self.intervals[name].describe(name) for name in self.attributes
        )
        return (
            f"{lhs} => {self.rhs_attribute} = {self.rhs_value} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f})"
        )


def _as_multidim(segmentation: Segmentation) -> list[MultiDimRule]:
    """Lift a 2-D segmentation's rules to the multi-dimensional form."""
    lifted = []
    for rule in segmentation.rules:
        lifted.append(
            MultiDimRule(
                intervals={
                    rule.x_attribute: rule.x_interval,
                    rule.y_attribute: rule.y_interval,
                },
                rhs_attribute=rule.rhs_attribute,
                rhs_value=rule.rhs_value,
                support=rule.support,
                confidence=rule.confidence,
            )
        )
    return lifted


def _score(intervals: dict[str, Interval], table: Table,
           rhs_attribute: str, rhs_value) -> tuple[float, float]:
    """Exact support and confidence of a box on the source data."""
    inside = np.ones(len(table), dtype=bool)
    for attribute, interval in intervals.items():
        inside &= interval.contains(table.column(attribute))
    total_inside = int(inside.sum())
    if total_inside == 0:
        return 0.0, 0.0
    labels = table.column(rhs_attribute)
    hits = int(np.sum(inside & np.asarray(labels == rhs_value)))
    return hits / len(table), hits / total_inside


def combine_segmentations(first, second, table: Table,
                          min_support: float,
                          min_confidence: float) -> list[MultiDimRule]:
    """Combine two rule sets sharing at least one attribute into boxes of
    the united attribute set.

    Parameters
    ----------
    first, second:
        Each a :class:`Segmentation` or a list of :class:`MultiDimRule`
        (so the combination can be chained).  Both must target the same
        RHS attribute and value.
    table:
        Source data used to verify candidate boxes.
    min_support, min_confidence:
        Thresholds a combined box must clear to survive.
    """
    rules_a = (
        _as_multidim(first) if isinstance(first, Segmentation) else
        list(first)
    )
    rules_b = (
        _as_multidim(second) if isinstance(second, Segmentation) else
        list(second)
    )
    if not rules_a or not rules_b:
        return []
    rhs_attribute = rules_a[0].rhs_attribute
    rhs_value = rules_a[0].rhs_value
    for rule in rules_a + rules_b:
        if (rule.rhs_attribute, rule.rhs_value) != (rhs_attribute,
                                                    rhs_value):
            raise ValueError(
                "cannot combine segmentations with different criteria"
            )

    shared = set(rules_a[0].intervals) & set(rules_b[0].intervals)
    if not shared:
        raise ValueError(
            "the rule sets share no attribute; combination needs overlap"
        )

    combined: list[MultiDimRule] = []
    seen: set[tuple] = set()
    for rule_a in rules_a:
        for rule_b in rules_b:
            intervals = _merge_intervals(rule_a, rule_b, shared)
            if intervals is None:
                continue
            key = tuple(
                (name, intervals[name].low, intervals[name].high)
                for name in sorted(intervals)
            )
            if key in seen:
                continue
            seen.add(key)
            support, confidence = _score(
                intervals, table, rhs_attribute, rhs_value
            )
            if support >= min_support and confidence >= min_confidence:
                combined.append(
                    MultiDimRule(
                        intervals=intervals,
                        rhs_attribute=rhs_attribute,
                        rhs_value=rhs_value,
                        support=support,
                        confidence=confidence,
                    )
                )
    combined.sort(key=lambda rule: -rule.support)
    return combined


def fit_multidim(table: Table, attributes: Sequence[str],
                 rhs_attribute: str, target_value,
                 min_support: float = 0.01,
                 min_confidence: float = 0.7,
                 arcs_config=None) -> list[MultiDimRule]:
    """End-to-end driver: ARCS over adjacent attribute pairs, chained.

    Fits one 2-D segmentation per consecutive attribute pair (each pair
    shares an attribute with the next, the overlap the combination step
    needs), then folds them left-to-right through
    :func:`combine_segmentations`, verifying every intermediate box on
    the data.  Returns boxes over all the attributes.

    ``attributes`` must name at least two quantitative columns; with
    exactly two this degrades gracefully to a plain ARCS fit lifted to
    the multi-dimensional rule form.
    """
    from repro.core.arcs import ARCS, ARCSConfig

    attributes = list(attributes)
    if len(attributes) < 2:
        raise ValueError("fit_multidim needs at least two attributes")
    arcs = ARCS(arcs_config or ARCSConfig())

    segmentations = []
    for x_attribute, y_attribute in zip(attributes, attributes[1:]):
        result = arcs.fit(
            table, x_attribute, y_attribute, rhs_attribute, target_value
        )
        segmentations.append(result.segmentation)

    current: list[MultiDimRule] | Segmentation = segmentations[0]
    if len(segmentations) == 1:
        return _as_multidim(segmentations[0])
    for next_segmentation in segmentations[1:]:
        current = combine_segmentations(
            current, next_segmentation, table,
            min_support=min_support, min_confidence=min_confidence,
        )
        if not current:
            return []
    return current


def _merge_intervals(rule_a: MultiDimRule, rule_b: MultiDimRule,
                     shared: set[str]) -> dict[str, Interval] | None:
    """Intersect on shared attributes, union the rest; ``None`` when any
    shared interval pair is disjoint."""
    intervals: dict[str, Interval] = {}
    for name in shared:
        intersection = rule_a.intervals[name].intersect(
            rule_b.intervals[name]
        )
        if intersection is None:
            return None
        intervals[name] = intersection
    for rule in (rule_a, rule_b):
        for name, interval in rule.intervals.items():
            if name not in shared:
                intervals[name] = interval
    return intervals
