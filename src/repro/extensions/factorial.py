"""Factorial-design threshold search (paper Section 5).

"The technique of factorial design by Fisher can greatly reduce the number
of experiments necessary when searching for 'optimal' solutions."  Here a
classic two-level full factorial (Box, Hunter & Hunter) runs over the two
ARCS factors — minimum support and minimum confidence — each at a low and
a high level:

* the four corner runs are evaluated (cluster → verify → MDL);
* the *main effect* of each factor is the average cost change from its
  low to its high level, and the *interaction effect* the usual
  half-difference of differences;
* the search range then shrinks toward the better level of each factor
  and the design repeats, for a fixed number of rounds.

Compared with the heuristic optimizer's lattice walk, each round costs
exactly four runs, and the effect estimates tell the user *which* factor
is driving segmentation quality — the experiment-economy argument the
paper cites Fisher for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binning.bin_array import BinArray
from repro.core.clusterer import GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.optimizer import (
    ThresholdLattice,
    TrialRecord,
    segmentation_from_outcome,
)
from repro.core.verifier import Verifier


@dataclass(frozen=True)
class RoundEffects:
    """Effect estimates of one factorial round (costs, in MDL bits)."""

    support_levels: tuple[float, float]
    confidence_levels: tuple[float, float]
    support_effect: float
    confidence_effect: float
    interaction_effect: float
    corner_costs: tuple[float, float, float, float]


@dataclass(frozen=True)
class FactorialReport:
    """The best trial found, its artefacts, and per-round effects."""

    best: TrialRecord
    segmentation: object
    rounds: tuple[RoundEffects, ...]
    history: tuple[TrialRecord, ...]


def factorial_search(bin_array: BinArray, rhs_code: int,
                     clusterer: GridClusterer, verifier: Verifier,
                     weights: MDLWeights | None = None,
                     rounds: int = 3,
                     shrink: float = 0.5) -> FactorialReport:
    """Run a shrinking two-level factorial over (support, confidence).

    Parameters
    ----------
    rounds:
        Number of shrink-and-repeat iterations (4 runs each, shared
        corners cached across rounds).
    shrink:
        Range contraction per round toward the better level of each
        factor (0.5 halves the range each round).
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not 0.0 < shrink < 1.0:
        raise ValueError("shrink must be in (0, 1)")
    weights = weights or MDLWeights()
    lattice = ThresholdLattice(bin_array, rhs_code)
    fractions = lattice.support_fractions()
    if not fractions:
        raise ValueError(
            "the target RHS value does not occur in the binned data"
        )
    support_lo, support_hi = fractions[0], fractions[-1]
    all_confidences = lattice.confidences_at(1)
    confidence_lo = all_confidences[0] if all_confidences else 0.0
    confidence_hi = all_confidences[-1] if all_confidences else 1.0

    cache: dict[tuple[float, float], tuple] = {}
    history: list[TrialRecord] = []

    def run(support: float, confidence: float):
        key = (round(support, 12), round(confidence, 12))
        if key not in cache:
            outcome = clusterer.cluster(
                bin_array, rhs_code, support, confidence
            )
            segmentation = segmentation_from_outcome(
                outcome, bin_array, rhs_code
            )
            report = verifier.verify(segmentation)
            trial = TrialRecord(
                min_support=support,
                min_confidence=confidence,
                n_clusters=len(segmentation),
                report=report,
                mdl_cost=weights.cost(len(segmentation),
                                      report.mean_errors),
            )
            cache[key] = (trial, segmentation)
            history.append(trial)
        return cache[key]

    round_effects: list[RoundEffects] = []
    best_trial = None
    best_segmentation = None
    for _ in range(rounds):
        corners = [
            run(support_lo, confidence_lo),
            run(support_hi, confidence_lo),
            run(support_lo, confidence_hi),
            run(support_hi, confidence_hi),
        ]
        # Empty segmentations cost infinity; cap them for the effect
        # contrasts so one bad corner still yields finite, directional
        # effect estimates.
        finite = [
            trial.mdl_cost for trial, _ in corners
            if trial.mdl_cost != float("inf")
        ]
        cap = (max(finite) if finite else 0.0) + 10.0
        costs = [min(trial.mdl_cost, cap) for trial, _ in corners]
        # Standard 2^2 effect contrasts on the (-, +) coding.
        support_effect = ((costs[1] + costs[3]) - (costs[0] + costs[2])) / 2
        confidence_effect = (
            (costs[2] + costs[3]) - (costs[0] + costs[1])
        ) / 2
        interaction = ((costs[0] + costs[3]) - (costs[1] + costs[2])) / 2
        round_effects.append(
            RoundEffects(
                support_levels=(support_lo, support_hi),
                confidence_levels=(confidence_lo, confidence_hi),
                support_effect=support_effect,
                confidence_effect=confidence_effect,
                interaction_effect=interaction,
                corner_costs=tuple(costs),
            )
        )
        for trial, segmentation in corners:
            if best_trial is None or trial.mdl_cost < best_trial.mdl_cost:
                best_trial, best_segmentation = trial, segmentation

        # Shrink toward the better level of each factor.
        support_span = (support_hi - support_lo) * shrink
        if support_effect > 0:  # high support hurts -> move range down
            support_hi = support_lo + support_span
        else:
            support_lo = support_hi - support_span
        confidence_span = (confidence_hi - confidence_lo) * shrink
        if confidence_effect > 0:
            confidence_hi = confidence_lo + confidence_span
        else:
            confidence_lo = confidence_hi - confidence_span

    if best_trial is None:
        raise ValueError("factorial search made no trials")
    return FactorialReport(
        best=best_trial,
        segmentation=best_segmentation,
        rounds=tuple(round_effects),
        history=tuple(history),
    )
