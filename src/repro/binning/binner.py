"""The Binner: one streaming pass from tuples to a BinArray (Section 3.1).

"The binner reads in tuples from the database and replaces the tuples'
attribute values with their corresponding bin number"; as it streams it
indexes the 2-D BinArray and bumps the per-RHS-value and total counters.
Changing the number of bins restarts the system (the BinArray must be
rebuilt), but changing support/confidence thresholds later never touches
the data again.

:class:`Binner` is the reusable object (fit layouts once, consume chunks);
:func:`bin_table` is the one-call convenience for in-memory tables.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import (
    EQUI_WIDTH,
    BinLayout,
    make_layout,
)
from repro.data.schema import Table
from repro.data.summary import profile_bin_array
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


def record_occupancy(bin_array: BinArray) -> None:
    """Publish a BinArray's occupancy statistics (one shared
    :func:`~repro.data.summary.profile_bin_array` pass) as the
    ``binner.*`` occupancy gauges."""
    profile = profile_bin_array(bin_array)
    metrics.set_gauge("binner.grid_cells", profile.grid_cells)
    metrics.set_gauge("binner.cells_occupied", profile.occupied_cells)
    metrics.set_gauge("binner.occupancy_fraction",
                      profile.occupancy_fraction)


@dataclass
class Binner:
    """Streams tuples into a :class:`BinArray`.

    Build one with :meth:`fit` (which fixes the bin layouts and the RHS
    encoding), then call :meth:`consume` for each chunk.  The accumulated
    :attr:`bin_array` is valid after any number of chunks.
    """

    x_layout: BinLayout
    y_layout: BinLayout
    rhs_attribute: str
    rhs_encoding: CategoricalEncoding
    bin_array: BinArray

    @classmethod
    def fit(cls, reference: Table, x_attribute: str, y_attribute: str,
            rhs_attribute: str, n_bins_x: int, n_bins_y: int,
            strategy: str = EQUI_WIDTH,
            target_value=None) -> "Binner":
        """Fix layouts and encoding from a reference table.

        ``reference`` supplies the value ranges (declared domains are
        preferred) and, for data-driven strategies, the values the edges
        are computed from.  It can be the full table or a representative
        sample — the layouts are then reused for any stream with the same
        schema.  Pass ``target_value`` to build the BinArray in the paper's
        reduced single-target memory mode.
        """
        x_spec = reference.spec(x_attribute)
        y_spec = reference.spec(y_attribute)
        if not (x_spec.is_quantitative and y_spec.is_quantitative):
            raise ValueError(
                "LHS attributes must be quantitative; use "
                "repro.extensions.categorical_lhs for categorical LHS"
            )
        x_low, x_high = reference.observed_range(x_attribute)
        y_low, y_high = reference.observed_range(y_attribute)
        x_layout = make_layout(
            strategy, x_attribute, reference.column(x_attribute),
            n_bins_x, low=x_low, high=x_high,
        )
        y_layout = make_layout(
            strategy, y_attribute, reference.column(y_attribute),
            n_bins_y, low=y_low, high=y_high,
        )
        rhs_encoding = CategoricalEncoding(
            rhs_attribute, reference.categorical_values(rhs_attribute)
        )
        target_code = (
            None if target_value is None
            else rhs_encoding.code_of(target_value)
        )
        bin_array = BinArray(
            x_layout, y_layout, rhs_encoding, target_code=target_code
        )
        return cls(
            x_layout=x_layout,
            y_layout=y_layout,
            rhs_attribute=rhs_attribute,
            rhs_encoding=rhs_encoding,
            bin_array=bin_array,
        )

    def consume(self, chunk: Table) -> None:
        """Bin one chunk of tuples into the BinArray."""
        x_bins = self.x_layout.assign(chunk.column(self.x_layout.attribute))
        y_bins = self.y_layout.assign(chunk.column(self.y_layout.attribute))
        rhs_codes = self.rhs_encoding.encode(
            chunk.column(self.rhs_attribute)
        )
        self.bin_array.add_chunk(x_bins, y_bins, rhs_codes)
        metrics.inc("binner.tuples_binned", len(chunk))
        metrics.inc("binner.chunks_consumed")

    def record_occupancy(self) -> None:
        """Publish the BinArray's occupancy statistics as gauges."""
        record_occupancy(self.bin_array)

    def consume_all(self, chunks: Iterable[Table]) -> BinArray:
        """Consume an iterable of chunks and return the BinArray."""
        for chunk in chunks:
            self.consume(chunk)
        return self.bin_array

    def assign_points(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Bin the LHS columns of ``table`` without accumulating counts.

        The verifier uses this to locate sample tuples on the grid.
        """
        x_bins = self.x_layout.assign(table.column(self.x_layout.attribute))
        y_bins = self.y_layout.assign(table.column(self.y_layout.attribute))
        return x_bins, y_bins


def bin_table(table: Table, x_attribute: str, y_attribute: str,
              rhs_attribute: str, n_bins_x: int = 50, n_bins_y: int = 50,
              strategy: str = EQUI_WIDTH, target_value=None,
              chunk_rows: int = 65536) -> Binner:
    """Fit a :class:`Binner` on ``table`` and stream the table through it.

    This is the paper's single pass: layouts come from the declared
    domains, then the data flows through in chunks.  Returns the binner
    (whose :attr:`~Binner.bin_array` is fully populated).
    """
    with trace("bin", strategy=strategy, n_bins_x=n_bins_x,
               n_bins_y=n_bins_y) as span:
        binner = Binner.fit(
            table, x_attribute, y_attribute, rhs_attribute,
            n_bins_x, n_bins_y, strategy=strategy,
            target_value=target_value,
        )
        binner.consume_all(table.iter_chunks(chunk_rows))
        binner.record_occupancy()
        span.set("tuples", len(table))
        logger.info(
            "binned %d tuples into a %dx%d %s grid (%d occupied cells)",
            len(table), n_bins_x, n_bins_y, strategy,
            int(np.count_nonzero(binner.bin_array.totals)),
        )
    return binner
