"""The BinArray: ARCS's in-memory count cube (paper Section 3.1).

For every ``(bin_x, bin_y)`` cell the BinArray holds the number of tuples
per RHS (segmentation) value and the cell's total tuple count — the paper's
``n_x * n_y * (n_seg + 1)`` array.  It is the only state the system keeps
about the data, which is what gives ARCS its constant-memory, single-pass
profile and makes re-mining at different thresholds "nearly instantaneous":
support and confidence of every candidate rule are pure array lookups.

A *single-target* memory mode mirrors the paper's ``n_seg = 1`` fallback:
only the criterion value's counts (plus totals) are kept, halving the cube
for high-cardinality RHS attributes at the cost of needing a re-bin to
segment on a different criterion value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import BinLayout


@dataclass
class BinArray:
    """Per-cell tuple counts over the binned two-attribute space.

    Attributes
    ----------
    x_layout, y_layout:
        The bin layouts of the two LHS attributes.
    rhs_encoding:
        Encoding of the RHS attribute's values.  In single-target mode this
        still names the full domain; only the stored counts shrink.
    target_code:
        ``None`` for the full cube; otherwise the single RHS code whose
        counts are kept.
    """

    x_layout: BinLayout
    y_layout: BinLayout
    rhs_encoding: CategoricalEncoding
    target_code: int | None = None
    counts: np.ndarray = field(init=False, repr=False)
    totals: np.ndarray = field(init=False, repr=False)
    n_total: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        n_x, n_y = self.x_layout.n_bins, self.y_layout.n_bins
        n_seg = 1 if self.target_code is not None else (
            self.rhs_encoding.cardinality
        )
        self.counts = np.zeros((n_x, n_y, n_seg), dtype=np.int64)
        self.totals = np.zeros((n_x, n_y), dtype=np.int64)
        self.n_total = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_x(self) -> int:
        return self.x_layout.n_bins

    @property
    def n_y(self) -> int:
        return self.y_layout.n_bins

    @property
    def single_target(self) -> bool:
        return self.target_code is not None

    def memory_cells(self) -> int:
        """Number of stored counters (the paper's memory footprint)."""
        return int(self.counts.size + self.totals.size)

    # ------------------------------------------------------------------
    # Accumulation (one streaming pass) and expiry (windowed streams)
    # ------------------------------------------------------------------
    def _validate_chunk(self, x_bins: np.ndarray, y_bins: np.ndarray,
                        rhs_codes: np.ndarray) -> None:
        """Reject malformed chunks before any counter is touched.

        A silent out-of-range index would either crash ``np.bincount``
        with an opaque message (negative values) or *alias* into a
        neighbouring cell through the flattened index arithmetic
        (too-large values) — both are data corruption, so every chunk is
        bounds-checked here, shared by :meth:`add_chunk` and
        :meth:`remove_chunk`.
        """
        if not (len(x_bins) == len(y_bins) == len(rhs_codes)):
            raise ValueError("chunk arrays must have equal length")
        for label, values, bound in (
            ("x_bins", x_bins, self.n_x),
            ("y_bins", y_bins, self.n_y),
            ("rhs_codes", rhs_codes, self.rhs_encoding.cardinality),
        ):
            if len(values) == 0:
                continue
            low = int(values.min())
            high = int(values.max())
            if low < 0 or high >= bound:
                bad = low if low < 0 else high
                raise ValueError(
                    f"{label} contains index {bad}, outside the valid "
                    f"range [0, {bound})"
                )

    def add_chunk(self, x_bins: np.ndarray, y_bins: np.ndarray,
                  rhs_codes: np.ndarray) -> None:
        """Accumulate one chunk of binned tuples.

        ``x_bins``/``y_bins`` are bin indices from the layouts;
        ``rhs_codes`` are RHS codes from the encoding.  All three arrays
        must be the same length, and every index must be in range
        (:meth:`_validate_chunk`).

        The scatter is a :func:`np.bincount` over flattened cell indices
        (an order of magnitude faster than ``np.add.at``'s generic
        buffered scatter; see ``benchmarks/perf_budget.py``).  Counts are
        integers, so the result is bit-identical to the per-tuple
        reference path (:func:`repro.perf.reference.add_chunk_scalar`).
        """
        x_bins = np.asarray(x_bins, dtype=np.int64)
        y_bins = np.asarray(y_bins, dtype=np.int64)
        rhs_codes = np.asarray(rhs_codes, dtype=np.int64)
        self._validate_chunk(x_bins, y_bins, rhs_codes)
        if len(x_bins) == 0:
            return
        count_delta, total_delta = self._chunk_grids(
            x_bins, y_bins, rhs_codes
        )
        self.totals += total_delta
        if self.single_target:
            self.counts[:, :, 0] += count_delta
        else:
            self.counts += count_delta
        self.n_total += len(x_bins)

    def remove_chunk(self, x_bins: np.ndarray, y_bins: np.ndarray,
                     rhs_codes: np.ndarray) -> None:
        """Expire one chunk of previously accumulated binned tuples.

        The exact inverse of :meth:`add_chunk` — the BinArray is an
        additive counter grid, so a window of tuples can slide or tumble
        without replaying the stream: expired tuples are subtracted as a
        delta.  Removing a chunk that was never added (any counter would
        go negative) raises :class:`ValueError` and leaves the array
        untouched; bounds validation is shared with :meth:`add_chunk`.

        Integer subtraction over the same :func:`np.bincount` grids as
        the accumulation path keeps the result bit-identical to the
        per-tuple reference (:func:`repro.perf.reference.remove_chunk_scalar`).
        """
        x_bins = np.asarray(x_bins, dtype=np.int64)
        y_bins = np.asarray(y_bins, dtype=np.int64)
        rhs_codes = np.asarray(rhs_codes, dtype=np.int64)
        self._validate_chunk(x_bins, y_bins, rhs_codes)
        if len(x_bins) == 0:
            return
        count_delta, total_delta = self._chunk_grids(
            x_bins, y_bins, rhs_codes
        )
        counts = (
            self.counts[:, :, 0] if self.single_target else self.counts
        )
        # Check-then-apply: a failed removal must not corrupt the grid.
        if (total_delta > self.totals).any() or (
            count_delta > counts
        ).any():
            raise ValueError(
                "remove_chunk would drive cell counts negative; the "
                "chunk was not (fully) accumulated in this BinArray"
            )
        self.totals -= total_delta
        counts -= count_delta
        self.n_total -= len(x_bins)

    def _chunk_grids(self, x_bins: np.ndarray, y_bins: np.ndarray,
                     rhs_codes: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """The per-cell delta grids one chunk contributes.

        Returns ``(count_delta, total_delta)``: the totals grid is
        always ``(n_x, n_y)``; the counts grid is ``(n_x, n_y)`` in
        single-target mode and ``(n_x, n_y, n_seg)`` otherwise.
        """
        n_x, n_y = self.n_x, self.n_y
        flat_cells = x_bins * n_y + y_bins
        total_delta = np.bincount(
            flat_cells, minlength=n_x * n_y
        ).reshape(n_x, n_y)
        if self.single_target:
            hit_cells = flat_cells[rhs_codes == self.target_code]
            count_delta = np.bincount(
                hit_cells, minlength=n_x * n_y
            ).reshape(n_x, n_y)
        else:
            n_seg = self.counts.shape[2]
            flat = flat_cells * n_seg + rhs_codes
            count_delta = np.bincount(
                flat, minlength=n_x * n_y * n_seg
            ).reshape(n_x, n_y, n_seg)
        return count_delta, total_delta

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _slot(self, rhs_code: int) -> int:
        if self.single_target:
            if rhs_code != self.target_code:
                raise ValueError(
                    f"BinArray was built in single-target mode for code "
                    f"{self.target_code}; cannot query code {rhs_code}"
                )
            return 0
        if not 0 <= rhs_code < self.rhs_encoding.cardinality:
            raise ValueError(f"RHS code {rhs_code} out of range")
        return rhs_code

    def count_grid(self, rhs_code: int) -> np.ndarray:
        """Per-cell tuple counts for one RHS value, shape ``(n_x, n_y)``."""
        return self.counts[:, :, self._slot(rhs_code)]

    def support_grid(self, rhs_code: int) -> np.ndarray:
        """Per-cell support (fraction of all tuples) for one RHS value."""
        if self.n_total == 0:
            return np.zeros((self.n_x, self.n_y))
        return self.count_grid(rhs_code) / float(self.n_total)

    def confidence_grid(self, rhs_code: int) -> np.ndarray:
        """Per-cell confidence for one RHS value (0 where the cell is
        empty)."""
        counts = self.count_grid(rhs_code).astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            confidence = np.where(
                self.totals > 0, counts / self.totals, 0.0
            )
        return confidence

    def cell_support(self, i: int, j: int, rhs_code: int) -> float:
        """Support of the rule ``X=i AND Y=j => C=code`` (paper Fig 3)."""
        if self.n_total == 0:
            return 0.0
        return float(self.count_grid(rhs_code)[i, j]) / self.n_total

    def cell_confidence(self, i: int, j: int, rhs_code: int) -> float:
        """Confidence of the rule ``X=i AND Y=j => C=code``."""
        total = int(self.totals[i, j])
        if total == 0:
            return 0.0
        return float(self.count_grid(rhs_code)[i, j]) / total

    def occupied_cells(self, rhs_code: int) -> int:
        """Number of cells with at least one tuple of the RHS value."""
        return int(np.count_nonzero(self.count_grid(rhs_code)))

    # ------------------------------------------------------------------
    # Threshold enumeration (paper Figure 10)
    # ------------------------------------------------------------------
    def unique_support_counts(self, rhs_code: int) -> np.ndarray:
        """The distinct nonzero per-cell counts for the RHS value, sorted
        ascending — the support axis of the paper's threshold structure."""
        counts = self.count_grid(rhs_code)
        distinct = np.unique(counts[counts > 0])
        return distinct

    def unique_confidences(self, rhs_code: int,
                           min_count: int = 1) -> np.ndarray:
        """Distinct confidences among cells whose count is at least
        ``min_count``, sorted ascending — one confidence list of the
        paper's Figure 10 structure."""
        counts = self.count_grid(rhs_code)
        mask = counts >= max(1, min_count)
        if not mask.any():
            return np.array([], dtype=np.float64)
        confidences = counts[mask] / self.totals[mask].astype(np.float64)
        return np.unique(confidences)

    # ------------------------------------------------------------------
    # Region aggregation (used when clusters are scored on the BinArray)
    # ------------------------------------------------------------------
    def region_counts(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int,
                      rhs_code: int) -> tuple[int, int]:
        """Return ``(target_count, total_count)`` over an inclusive bin
        rectangle, the aggregates behind a clustered rule's support and
        confidence."""
        if not (0 <= x_lo <= x_hi < self.n_x):
            raise ValueError(f"x range {x_lo}..{x_hi} out of bounds")
        if not (0 <= y_lo <= y_hi < self.n_y):
            raise ValueError(f"y range {y_lo}..{y_hi} out of bounds")
        block = self.count_grid(rhs_code)[x_lo:x_hi + 1, y_lo:y_hi + 1]
        totals = self.totals[x_lo:x_hi + 1, y_lo:y_hi + 1]
        return int(block.sum()), int(totals.sum())
