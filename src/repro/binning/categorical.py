"""Categorical value encoding (paper Section 2.1).

"For categorical attributes we also map the attribute values to a set of
consecutive integers and use these integers in place of the categorical
values."  The mapping happens before mining so the rule engine only ever
sees integer codes; this module owns that bijection and its inverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np


@dataclass(frozen=True)
class CategoricalEncoding:
    """A bijection between categorical values and codes ``0..n-1``.

    The value order is the declared domain order (or first-seen order when
    built from data), so codes are stable for a fixed schema.
    """

    attribute: str
    values: tuple

    def __post_init__(self) -> None:
        values = tuple(self.values)
        if len(values) == 0:
            raise ValueError(
                f"encoding for {self.attribute!r} needs at least one value"
            )
        if len(set(values)) != len(values):
            raise ValueError(
                f"duplicate values in encoding for {self.attribute!r}"
            )
        object.__setattr__(self, "values", values)

    @classmethod
    def from_values(cls, attribute: str,
                    observed: Sequence[Hashable]) -> "CategoricalEncoding":
        """Build an encoding from observed data in first-seen order."""
        seen: dict = {}
        for value in observed:
            if value not in seen:
                seen[value] = len(seen)
        return cls(attribute, tuple(seen))

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def code_of(self, value: Hashable) -> int:
        """Return the code of a single value."""
        try:
            return self._index()[value]
        except KeyError:
            raise KeyError(
                f"value {value!r} not in the domain of {self.attribute!r}"
            ) from None

    def _index(self) -> dict:
        # Built lazily and cached on the instance; frozen dataclasses allow
        # this via object.__setattr__ on first use.
        cached = self.__dict__.get("_index_cache")
        if cached is None:
            cached = {value: code for code, value in enumerate(self.values)}
            object.__setattr__(self, "_index_cache", cached)
        return cached

    def encode(self, values: Sequence[Hashable]) -> np.ndarray:
        """Map a sequence of values to an integer code array."""
        index = self._index()
        try:
            return np.fromiter(
                (index[value] for value in values),
                dtype=np.int64,
                count=len(values),
            )
        except KeyError as error:
            raise KeyError(
                f"value {error.args[0]!r} not in the domain of "
                f"{self.attribute!r}"
            ) from None

    def decode(self, codes: Sequence[int]) -> list:
        """Map integer codes back to values."""
        return [self.values[int(code)] for code in codes]
