"""Bin layout strategies for quantitative attributes (paper Section 2.1).

The paper partitions each quantitative LHS attribute into *equi-width* bins
(equal interval size) and notes that equi-depth bins (equal tuple count,
as in Srikant & Agrawal) and homogeneity-based bins (each bin internally
uniform, as in Whang et al.) would slot in unchanged.  All three are
implemented here behind a single :class:`BinLayout` abstraction so the rest
of the system is strategy-agnostic.

A :class:`BinLayout` is a monotone sequence of ``n_bins + 1`` edges over the
attribute's range.  Bin ``i`` covers the half-open interval
``[edges[i], edges[i+1])`` except the last bin, which is closed above so the
range maximum lands in a bin.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass

import numpy as np

logger = logging.getLogger(__name__)

EQUI_WIDTH = "equi-width"
EQUI_DEPTH = "equi-depth"
HOMOGENEITY = "homogeneity"

STRATEGIES = (EQUI_WIDTH, EQUI_DEPTH, HOMOGENEITY)


@dataclass(frozen=True)
class BinLayout:
    """A fixed partition of a quantitative attribute into bins.

    Attributes
    ----------
    attribute:
        Name of the attribute the layout partitions.
    edges:
        Strictly increasing array of ``n_bins + 1`` bin boundaries.
    """

    attribute: str
    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("a layout needs at least two edges")
        if not np.all(np.diff(edges) > 0):
            raise ValueError(
                f"edges for {self.attribute!r} must be strictly increasing"
            )
        object.__setattr__(self, "edges", edges)

    @property
    def n_bins(self) -> int:
        return len(self.edges) - 1

    @property
    def low(self) -> float:
        return float(self.edges[0])

    @property
    def high(self) -> float:
        return float(self.edges[-1])

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Map values to bin indices in ``[0, n_bins)``.

        Values outside the layout's range are clamped into the first or
        last bin — the generator clips perturbed values, so out-of-range
        inputs only occur when callers bin foreign data, and clamping is
        the least surprising behaviour there.  NaNs are rejected: a NaN
        would otherwise land silently in the last bin and corrupt its
        counts.
        """
        values = np.asarray(values, dtype=np.float64)
        if np.isnan(values).any():
            raise ValueError(
                f"column {self.attribute!r} contains NaN; clean the "
                "data before binning"
            )
        indices = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(indices, 0, self.n_bins - 1)

    def bin_interval(self, index: int) -> tuple[float, float]:
        """Return the ``(low, high)`` bounds of bin ``index``."""
        if not 0 <= index < self.n_bins:
            raise IndexError(
                f"bin {index} out of range for {self.n_bins} bins"
            )
        return float(self.edges[index]), float(self.edges[index + 1])

    def span_interval(self, first: int, last: int) -> tuple[float, float]:
        """Return the bounds of the contiguous bin range ``first..last``
        (inclusive), used when a cluster of bins is translated back to a
        value-space interval for a clustered rule."""
        low, _ = self.bin_interval(first)
        if last < first:
            raise ValueError(f"empty bin span {first}..{last}")
        _, high = self.bin_interval(last)
        return low, high


def equi_width_layout(attribute: str, low: float, high: float,
                      n_bins: int) -> BinLayout:
    """Equal-interval bins over ``[low, high]`` (the paper's default)."""
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    if not low < high:
        raise ValueError(f"empty range [{low}, {high}]")
    return BinLayout(attribute, np.linspace(low, high, n_bins + 1))


def equi_depth_layout(attribute: str, values: np.ndarray,
                      n_bins: int) -> BinLayout:
    """Quantile bins: each bin holds roughly the same number of tuples.

    Duplicate quantile edges (heavy ties) are collapsed, so the realised
    bin count can be lower than requested; the layout always covers the
    observed value range.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot build equi-depth bins from no data")
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.quantile(values, quantiles)
    edges = np.unique(edges)
    if len(edges) < 2:
        # Degenerate constant column: one bin of nominal width.
        center = float(edges[0])
        edges = np.array([center, center + 1.0])
    return BinLayout(attribute, edges)


def _uniformity_deficit(values: np.ndarray, low: float, high: float,
                        probes: int = 8) -> float:
    """How far the empirical CDF of ``values`` on ``[low, high]`` deviates
    from uniform (a Kolmogorov–Smirnov-style sup statistic on a probe
    grid).  Zero means perfectly uniform."""
    if len(values) == 0 or high <= low:
        return 0.0
    probe_points = np.linspace(low, high, probes + 2)[1:-1]
    empirical = np.searchsorted(np.sort(values), probe_points) / len(values)
    uniform = (probe_points - low) / (high - low)
    return float(np.max(np.abs(empirical - uniform)))


def homogeneity_layout(attribute: str, values: np.ndarray, n_bins: int,
                       tolerance: float = 0.05) -> BinLayout:
    """Homogeneity-based bins: split where the data is least uniform.

    Greedy top-down, following the homogeneity criterion of Whang, Kim
    and Wiederhold that the paper cites as an alternative binner:
    starting from one bin over the observed range, the bin whose
    contents deviate most from a uniform distribution (beyond
    ``tolerance``) is split at its median.  When every bin is already
    uniform but the budget is not exhausted, the most populous bin is
    split instead — ARCS needs the grid's *resolution* regardless, and
    on uniformity-signal-free data that degrades to balanced bins
    rather than a useless 1-bin layout.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValueError("cannot build homogeneity bins from no data")
    low, high = float(values[0]), float(values[-1])
    if low == high:
        return BinLayout(attribute, np.array([low, low + 1.0]))

    edges = [low, high]

    def bin_contents(index: int) -> np.ndarray:
        left, right = edges[index], edges[index + 1]
        return values[(values >= left) & (values <= right)]

    while len(edges) - 1 < n_bins:
        # Prefer the least-uniform bin; fall back to the most populous.
        worst_index, worst_margin = -1, 0.0
        fullest_index, fullest_count = -1, 1
        for i in range(len(edges) - 1):
            inside = bin_contents(i)
            # A bin with fewer than two distinct values cannot be
            # improved by splitting (point masses from boundary
            # clipping land here).
            if len(inside) < 2 or inside[0] == inside[-1]:
                continue
            score = _uniformity_deficit(inside, edges[i], edges[i + 1])
            # A small sample's empirical CDF deviates from uniform by
            # ~1.36/sqrt(n) (the 95% KS critical value) even when the
            # data IS uniform; only deviations beyond that are signal.
            threshold = max(tolerance, 1.36 / np.sqrt(len(inside)))
            margin = score - threshold
            if margin > worst_margin:
                worst_index, worst_margin = i, margin
            if len(inside) > fullest_count:
                fullest_index, fullest_count = i, len(inside)
        # Resolution guard: a grossly oversized bin starves the grid no
        # matter how uniform it is internally; splitting it first keeps
        # homogeneity binning usable as an ARCS layout.
        average = len(values) / n_bins
        if fullest_index >= 0 and fullest_count > 4 * average:
            split_index = fullest_index
        else:
            split_index = (
                worst_index if worst_index >= 0 else fullest_index
            )
        if split_index < 0:
            break
        left, right = edges[split_index], edges[split_index + 1]
        inside = bin_contents(split_index)
        split = float(np.median(inside))
        if not left < split < right:
            # The median collapsed onto an edge atom; isolate the atom
            # by splitting just above the bin's smallest distinct value
            # (one split, after which the atom bin is skipped forever).
            above = inside[inside > inside[0]]
            split = float(above[0]) if len(above) else (
                (left + right) / 2.0
            )
        if not left < split < right:
            break
        edges.insert(split_index + 1, split)
    return BinLayout(attribute, np.array(sorted(set(edges))))


def suggest_bin_count(n_tuples: int, target_per_cell: float = 12.0,
                      min_bins: int = 10, max_bins: int = 50) -> int:
    """A data-size-aware bin count for square grids.

    The paper presets 50 bins per attribute and its sweeps start at 20k
    tuples; below that, 2500 cells starve (a cell holding one stray
    tuple reports confidence 1.0 and support thresholds cannot separate
    signal from noise).  This heuristic sizes the grid so the *average
    cell* holds about ``target_per_cell`` tuples:
    ``bins = sqrt(n_tuples / target_per_cell)`` clamped to
    ``[min_bins, max_bins]`` — which reaches the paper's 50 bins at
    |D| >= 30k and degrades gracefully below (12 per cell keeps a 10%
    outlier background distinguishable from true regions).
    """
    if n_tuples <= 0:
        raise ValueError("n_tuples must be positive")
    if target_per_cell <= 0:
        raise ValueError("target_per_cell must be positive")
    if not 0 < min_bins <= max_bins:
        raise ValueError("need 0 < min_bins <= max_bins")
    raw = int(np.sqrt(n_tuples / target_per_cell))
    bins = int(np.clip(raw, min_bins, max_bins))
    logger.debug(
        "suggest_bin_count: %d tuples at ~%g per cell -> %d bins",
        n_tuples, target_per_cell, bins,
    )
    return bins


def make_layout(strategy: str, attribute: str, values: np.ndarray,
                n_bins: int, low: float | None = None,
                high: float | None = None) -> BinLayout:
    """Dispatch to a strategy by name (``equi-width`` is the paper default).

    ``low``/``high`` bound the equi-width layout; the data-driven
    strategies derive their edges from ``values``.
    """
    if strategy == EQUI_WIDTH:
        values = np.asarray(values, dtype=np.float64)
        if low is None:
            low = float(values.min())
        if high is None:
            high = float(values.max())
        return equi_width_layout(attribute, low, high, n_bins)
    if strategy == EQUI_DEPTH:
        return equi_depth_layout(attribute, values, n_bins)
    if strategy == HOMOGENEITY:
        return homogeneity_layout(attribute, values, n_bins)
    raise ValueError(
        f"unknown binning strategy {strategy!r}; expected one of {STRATEGIES}"
    )
