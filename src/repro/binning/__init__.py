"""Binning substrate (paper Section 3.1).

Quantitative attributes are partitioned into *bins* before mining; the
paper uses equi-width bins but names equi-depth and homogeneity-based bins
as drop-in alternatives, and all three are implemented in
:mod:`repro.binning.strategies`.  Categorical attributes are mapped to
consecutive integer codes (:mod:`repro.binning.categorical`).  The
:class:`~repro.binning.binner.Binner` streams tuples once and accumulates
the :class:`~repro.binning.bin_array.BinArray` — the in-memory count cube
that makes re-mining at new thresholds instantaneous.
"""

from repro.binning.bin_array import BinArray
from repro.binning.binner import Binner, bin_table
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import (
    BinLayout,
    equi_depth_layout,
    equi_width_layout,
    homogeneity_layout,
    make_layout,
)

__all__ = [
    "BinLayout",
    "equi_width_layout",
    "equi_depth_layout",
    "homogeneity_layout",
    "make_layout",
    "CategoricalEncoding",
    "BinArray",
    "Binner",
    "bin_table",
]
