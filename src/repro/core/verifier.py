"""The verifier: sampled error measurement (paper Section 3.6).

Given a segmentation, the verifier draws repeated k-out-of-n samples from
the source data and counts, per sample,

* **false positives** — tuples a cluster covers whose group is *not* the
  criterion value, and
* **false negatives** — tuples of the criterion group no cluster covers.

The per-sample error is ``FP + FN``; the relative error is that count over
the sample size.  Averaging over repeats ("a stronger statistical
technique") tightens the estimate, and the standard error across repeats
quantifies how tight.  The MDL scorer consumes the mean error count.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass

import numpy as np

from repro.core.segmentation import Segmentation
from repro.data.sampling import mean_and_stderr, repeated_k_of_n
from repro.data.schema import Table
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class VerificationReport:
    """The verifier's estimate for one segmentation.

    ``mean_errors`` is the average FP+FN *count* per sample (what MDL
    wants); ``error_rate`` is the same as a fraction of the sample size
    (what the paper's Figures 11/12 plot).
    """

    mean_false_positives: float
    mean_false_negatives: float
    sample_size: int
    repeats: int
    error_rate: float
    error_rate_stderr: float

    @property
    def mean_errors(self) -> float:
        return self.mean_false_positives + self.mean_false_negatives


@dataclass
class Verifier:
    """Estimates segmentation error on samples of one source table.

    Parameters
    ----------
    table:
        The source data, carrying the LHS columns and the group column.
    rhs_attribute, target_value:
        The criterion: rows with ``table[rhs_attribute] == target_value``
        belong to the segment being verified.
    sample_size:
        ``k`` of the k-out-of-n scheme.  Clamped to the table size.
    repeats:
        Number of independent samples averaged.
    seed:
        RNG seed; a fixed verifier gives identical estimates for identical
        segmentations, which keeps the optimizer's search deterministic.
    """

    table: Table
    rhs_attribute: str
    target_value: object
    sample_size: int = 1000
    repeats: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        self.sample_size = min(self.sample_size, len(self.table))

    def verify(self, segmentation: Segmentation) -> VerificationReport:
        """Estimate the segmentation's error by repeated sampling."""
        with trace("verify", sample_size=self.sample_size,
                   repeats=self.repeats) as span:
            labels = self.table.column(self.rhs_attribute)
            is_target = np.asarray(
                [label == self.target_value for label in labels],
                dtype=bool,
            )
            x_values = self.table.column(segmentation.x_attribute)
            y_values = self.table.column(segmentation.y_attribute)
            covered = segmentation.covers(x_values, y_values)

            rng = np.random.default_rng(self.seed)
            fp_counts, fn_counts, rates = [], [], []
            n = len(self.table)
            for indices in repeated_k_of_n(
                n, self.sample_size, self.repeats, rng
            ):
                sample_covered = covered[indices]
                sample_target = is_target[indices]
                false_positives = int(
                    np.sum(sample_covered & ~sample_target)
                )
                false_negatives = int(
                    np.sum(~sample_covered & sample_target)
                )
                fp_counts.append(false_positives)
                fn_counts.append(false_negatives)
                rates.append(
                    (false_positives + false_negatives) / self.sample_size
                )
            mean_rate, stderr = mean_and_stderr(rates)
            metrics.inc("verifier.samples_drawn", self.repeats)
            metrics.inc("verifier.tuples_sampled",
                        self.repeats * self.sample_size)
            span.set("error_rate", mean_rate)
            logger.debug(
                "verified %d rules on %d x %d samples: error %.4f",
                len(segmentation), self.repeats, self.sample_size,
                mean_rate,
            )
        return VerificationReport(
            mean_false_positives=float(np.mean(fp_counts)),
            mean_false_negatives=float(np.mean(fn_counts)),
            sample_size=self.sample_size,
            repeats=self.repeats,
            error_rate=mean_rate,
            error_rate_stderr=stderr,
        )

    def exact_error_rate(self, segmentation: Segmentation) -> float:
        """Full-table FP+FN rate (no sampling) — the ground truth the
        sampled estimate approximates; used by tests and the figure
        benchmarks where determinism matters more than speed."""
        with trace("verify.exact", tuples=len(self.table)) as span:
            labels = self.table.column(self.rhs_attribute)
            is_target = np.asarray(
                [label == self.target_value for label in labels],
                dtype=bool,
            )
            covered = segmentation.covers(
                self.table.column(segmentation.x_attribute),
                self.table.column(segmentation.y_attribute),
            )
            errors = np.sum(covered & ~is_target) + np.sum(
                ~covered & is_target
            )
            rate = float(errors) / len(self.table)
            metrics.inc("verifier.tuples_scanned", len(self.table))
            span.set("error_rate", rate)
        return rate
