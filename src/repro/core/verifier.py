"""The verifier: sampled error measurement (paper Section 3.6).

Given a segmentation, the verifier draws repeated k-out-of-n samples from
the source data and counts, per sample,

* **false positives** — tuples a cluster covers whose group is *not* the
  criterion value, and
* **false negatives** — tuples of the criterion group no cluster covers.

The per-sample error is ``FP + FN``; the relative error is that count over
the sample size.  Averaging over repeats ("a stronger statistical
technique") tightens the estimate, and the standard error across repeats
quantifies how tight.  The MDL scorer consumes the mean error count.

Hot path
--------
Cluster coverage and target membership are computed **once per
segmentation** as boolean vectors over the full table; every repeat is
then a pure gather + popcount, and all repeats are evaluated together as
one ``(repeats, k)`` array operation (:func:`count_repeat_errors`).

Each repeat draws its indices from its own deterministic generator
(:func:`repro.data.sampling.repeat_rng`), so the estimate for a fixed
seed does not depend on *where* the repeat runs.  That is what makes the
opt-in ``workers=N`` mode — repeats fanned out over a process pool —
bit-identical to the serial path.
"""

from __future__ import annotations

import logging

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.segmentation import Segmentation
from repro.data.sampling import mean_and_stderr, repeat_rng, sample_indices
from repro.data.schema import Table
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


def count_repeat_errors(covered: np.ndarray, is_target: np.ndarray,
                        sample_size: int, seed: int,
                        repeat_ids: Sequence[int],
                        ) -> tuple[np.ndarray, np.ndarray]:
    """FP and FN counts for a batch of repeats, as one array operation.

    ``covered``/``is_target`` are full-table boolean vectors; repeat ``r``
    draws its ``sample_size`` indices from ``repeat_rng(seed, r)``.  All
    the batch's samples are gathered into one ``(repeats, k)`` matrix and
    the per-repeat counts fall out of two vectorised comparisons.

    This function is the unit of work the parallel verifier ships to a
    worker process; because seeding is per repeat, any partition of
    ``repeat_ids`` over any number of processes produces the same counts.
    Returns ``(fp_counts, fn_counts)`` aligned with ``repeat_ids``.
    """
    n = len(covered)
    indices = np.stack([
        sample_indices(n, sample_size, repeat_rng(seed, repeat))
        for repeat in repeat_ids
    ])
    sample_covered = covered[indices]
    sample_target = is_target[indices]
    fp_counts = np.count_nonzero(sample_covered & ~sample_target, axis=1)
    fn_counts = np.count_nonzero(~sample_covered & sample_target, axis=1)
    return fp_counts.astype(np.int64), fn_counts.astype(np.int64)


def _count_block_with_metrics(covered: np.ndarray, is_target: np.ndarray,
                              sample_size: int, seed: int,
                              repeat_ids: Sequence[int],
                              ) -> tuple[np.ndarray, np.ndarray, dict]:
    """Worker-side wrapper: counts plus a metrics snapshot.

    A pool worker cannot see the parent's metrics registry, so it
    records its share of the verifier counters on a local registry and
    ships the snapshot home with the results; the parent merges it into
    its own registry (:meth:`MetricsRegistry.merge_snapshot`), keeping
    serial and parallel runs metric-identical.
    """
    registry = metrics.MetricsRegistry()
    registry.inc("verifier.samples_drawn", len(repeat_ids))
    registry.inc("verifier.tuples_sampled",
                 len(repeat_ids) * sample_size)
    fp_counts, fn_counts = count_repeat_errors(
        covered, is_target, sample_size, seed, repeat_ids
    )
    return fp_counts, fn_counts, registry.snapshot()


def target_mask(labels: np.ndarray, target_value) -> np.ndarray:
    """Boolean mask of rows whose label equals the target value.

    NumPy broadcasts ``==`` element-wise over object arrays, which is the
    fast path; the scalar fallback covers values whose ``__eq__`` refuses
    arrays or returns non-arrays.
    """
    comparison = labels == target_value
    if isinstance(comparison, np.ndarray) and comparison.dtype == bool:
        return comparison
    return np.asarray(
        [label == target_value for label in labels], dtype=bool
    )


@dataclass(frozen=True)
class VerificationReport:
    """The verifier's estimate for one segmentation.

    ``mean_errors`` is the average FP+FN *count* per sample (what MDL
    wants); ``error_rate`` is the same as a fraction of the sample size
    (what the paper's Figures 11/12 plot).
    """

    mean_false_positives: float
    mean_false_negatives: float
    sample_size: int
    repeats: int
    error_rate: float
    error_rate_stderr: float

    @property
    def mean_errors(self) -> float:
        return self.mean_false_positives + self.mean_false_negatives


@dataclass
class Verifier:
    """Estimates segmentation error on samples of one source table.

    Parameters
    ----------
    table:
        The source data, carrying the LHS columns and the group column.
    rhs_attribute, target_value:
        The criterion: rows with ``table[rhs_attribute] == target_value``
        belong to the segment being verified.
    sample_size:
        ``k`` of the k-out-of-n scheme.  Clamped to the table size.
    repeats:
        Number of independent samples averaged.
    seed:
        RNG seed; a fixed verifier gives identical estimates for identical
        segmentations, which keeps the optimizer's search deterministic.
        Repeat ``r`` always draws from ``repeat_rng(seed, r)``, so the
        estimate is independent of the ``workers`` setting.
    workers:
        Number of processes the repeats are fanned out over.  The default
        of 1 stays in-process (and is fastest below roughly a million
        tuples — coverage vectors must be shipped to workers); larger
        values split the repeats into contiguous blocks over a process
        pool and give a bit-identical report.
    """

    table: Table
    rhs_attribute: str
    target_value: object
    sample_size: int = 1000
    repeats: int = 5
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        self.sample_size = min(self.sample_size, len(self.table))

    # ------------------------------------------------------------------
    # Coverage precomputation (once per segmentation)
    # ------------------------------------------------------------------
    def _coverage(self, segmentation: Segmentation,
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Full-table cluster-coverage and target-membership vectors."""
        covered = segmentation.covers(
            self.table.column(segmentation.x_attribute),
            self.table.column(segmentation.y_attribute),
        )
        is_target = target_mask(
            self.table.column(self.rhs_attribute), self.target_value
        )
        return covered, is_target

    def verify(self, segmentation: Segmentation) -> VerificationReport:
        """Estimate the segmentation's error by repeated sampling."""
        with trace("verify", sample_size=self.sample_size,
                   repeats=self.repeats, workers=self.workers) as span:
            covered, is_target = self._coverage(segmentation)
            if self.workers == 1 or self.repeats == 1:
                fp_counts, fn_counts = count_repeat_errors(
                    covered, is_target, self.sample_size, self.seed,
                    range(self.repeats),
                )
                metrics.inc("verifier.samples_drawn", self.repeats)
                metrics.inc("verifier.tuples_sampled",
                            self.repeats * self.sample_size)
            else:
                # The workers record their share of the sampling
                # counters; totals match the serial branch exactly.
                fp_counts, fn_counts = self._count_parallel(
                    covered, is_target
                )
            rates = (fp_counts + fn_counts) / float(self.sample_size)
            mean_rate, stderr = mean_and_stderr(rates)
            span.set("error_rate", mean_rate)
            logger.debug(
                "verified %d rules on %d x %d samples: error %.4f",
                len(segmentation), self.repeats, self.sample_size,
                mean_rate,
            )
        return VerificationReport(
            mean_false_positives=float(np.mean(fp_counts)),
            mean_false_negatives=float(np.mean(fn_counts)),
            sample_size=self.sample_size,
            repeats=self.repeats,
            error_rate=mean_rate,
            error_rate_stderr=stderr,
        )

    def _count_parallel(self, covered: np.ndarray, is_target: np.ndarray,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Fan the repeats out over a process pool.

        Repeats are split into contiguous blocks (one per worker); the
        per-repeat seeding makes the concatenated result identical to the
        serial path no matter how the blocks land on processes.  A worker
        failure (crash, OOM-kill, unpicklable state) surfaces as a
        :class:`RuntimeError` naming the repeat block instead of hanging.
        """
        workers = min(self.workers, self.repeats)
        blocks = np.array_split(np.arange(self.repeats), workers)
        fp_parts: list[np.ndarray] = []
        fn_parts: list[np.ndarray] = []
        registry = metrics.active()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _count_block_with_metrics, covered, is_target,
                    self.sample_size, self.seed, block.tolist(),
                )
                for block in blocks
            ]
            for block, future in zip(blocks, futures):
                try:
                    fp_block, fn_block, snapshot = future.result()
                except Exception as error:
                    raise RuntimeError(
                        f"parallel verification failed on repeats "
                        f"{block[0]}..{block[-1]} "
                        f"({type(error).__name__}: {error}); rerun with "
                        f"workers=1 to isolate"
                    ) from error
                fp_parts.append(fp_block)
                fn_parts.append(fn_block)
                if registry is not None:
                    registry.merge_snapshot(snapshot)
        metrics.inc("verifier.parallel_batches", len(blocks))
        return np.concatenate(fp_parts), np.concatenate(fn_parts)

    def exact_error_rate(self, segmentation: Segmentation) -> float:
        """Full-table FP+FN rate (no sampling) — the ground truth the
        sampled estimate approximates; used by tests and the figure
        benchmarks where determinism matters more than speed."""
        with trace("verify.exact", tuples=len(self.table)) as span:
            covered, is_target = self._coverage(segmentation)
            errors = np.count_nonzero(
                covered & ~is_target
            ) + np.count_nonzero(~covered & is_target)
            rate = float(errors) / len(self.table)
            metrics.inc("verifier.tuples_scanned", len(self.table))
            span.set("error_rate", rate)
        return rate
