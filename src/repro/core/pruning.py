"""Dynamic cluster pruning (paper Section 3.5).

"Typically we have found that clusters smaller than 1% of the overall
graph are not useful in creating a generalized segmentation."  Pruning
drops those clusters, which also removes outliers and residual noise the
smoothing step missed.  When every cluster is already large enough, no
pruning happens — the set passes through untouched.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from typing import Sequence

from repro.core.rules import GridRect
from repro.obs import metrics

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PruningReport:
    """What pruning kept and what it dropped, for diagnostics."""

    kept: tuple[GridRect, ...]
    dropped: tuple[GridRect, ...]
    min_cells: int

    @property
    def n_pruned(self) -> int:
        return len(self.dropped)


def min_cells_for(grid_shape: tuple[int, int], fraction: float) -> int:
    """The cell-count threshold implied by a grid-area fraction.

    A fraction of 0.01 on a 50x50 grid gives 25 cells.  Always at least 1,
    so pruning never drops a cluster for being merely small when the
    fraction rounds to nothing.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    n_x, n_y = grid_shape
    if n_x <= 0 or n_y <= 0:
        raise ValueError(f"bad grid shape {grid_shape}")
    return max(1, int(fraction * n_x * n_y))


def prune_clusters(clusters: Sequence[GridRect],
                   grid_shape: tuple[int, int],
                   fraction: float = 0.01) -> PruningReport:
    """Drop clusters smaller than ``fraction`` of the grid area.

    Returns a :class:`PruningReport` with both partitions, preserving the
    input (greedy-selection) order within each.
    """
    threshold = min_cells_for(grid_shape, fraction)
    kept = tuple(rect for rect in clusters if rect.area >= threshold)
    dropped = tuple(rect for rect in clusters if rect.area < threshold)
    metrics.inc("pruning.clusters_dropped", len(dropped))
    metrics.inc("pruning.clusters_kept", len(kept))
    if dropped:
        logger.debug("pruning dropped %d of %d clusters (< %d cells)",
                     len(dropped), len(clusters), threshold)
    return PruningReport(kept=kept, dropped=dropped, min_cells=threshold)
