"""Rule data model: intervals, binned rules, rectangles, clustered rules.

Terminology follows paper Section 2.1.  An *association rule* on binned
two-attribute data is ``X = i AND Y = j => C = v`` for bin indices
``(i, j)`` (:class:`BinnedRule`).  A *clustered association rule* replaces
the equalities with bin-range inequalities,
``lo_x <= X < hi_x AND lo_y <= Y < hi_y => C = v``
(:class:`ClusteredRule`); geometrically it is an axis-aligned rectangle of
grid cells (:class:`GridRect`).  :class:`Interval` carries the value-space
bounds with the half-open convention the binner uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A value interval ``[low, high)`` (or ``[low, high]`` when closed).

    Bins are half-open except the last bin of a layout, which is closed so
    the domain maximum belongs to a bin; clustered rules inherit whichever
    convention their last bin uses.
    """

    low: float
    high: float
    closed_high: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high})")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, values) -> np.ndarray:
        """Vectorised membership test."""
        values = np.asarray(values, dtype=np.float64)
        upper = values <= self.high if self.closed_high else values < self.high
        return (values >= self.low) & upper

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share any points (treating both as
        half-open for the test; a shared endpoint only counts when the
        lower interval is closed above)."""
        if self.high < other.low or other.high < self.low:
            return False
        if self.high == other.low:
            return self.closed_high
        if other.high == self.low:
            return other.closed_high
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or ``None`` when disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low >= high:
            return None
        closed = (
            (self.closed_high if self.high <= other.high else True)
            and (other.closed_high if other.high <= self.high else True)
        )
        return Interval(low, high, closed_high=closed)

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval containing both."""
        high = max(self.high, other.high)
        closed = (
            self.closed_high if self.high >= other.high else False
        ) or (other.closed_high if other.high >= self.high else False)
        return Interval(min(self.low, other.low), high, closed_high=closed)

    def __str__(self) -> str:
        upper = "<=" if self.closed_high else "<"
        return f"[{self.low:g}, {self.high:g}{']' if self.closed_high else ')'}"

    def describe(self, attribute: str) -> str:
        """Render as the paper writes rules, e.g. ``40 <= age < 42``."""
        upper = "<=" if self.closed_high else "<"
        return f"{self.low:g} <= {attribute} {upper} {self.high:g}"


@dataclass(frozen=True)
class BinnedRule:
    """An association rule on binned data: ``X = x_bin AND Y = y_bin =>
    C = rhs_value`` with its support and confidence (paper Figure 3
    output)."""

    x_bin: int
    y_bin: int
    rhs_value: object
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if self.x_bin < 0 or self.y_bin < 0:
            raise ValueError("bin indices must be non-negative")
        if not 0.0 <= self.support <= 1.0:
            raise ValueError(f"support {self.support} outside [0, 1]")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside [0, 1]")


@dataclass(frozen=True, order=True)
class GridRect:
    """An inclusive rectangle of grid cells: bins ``x_lo..x_hi`` by
    ``y_lo..y_hi``.  This is the geometric form of a cluster."""

    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.x_lo <= self.x_hi):
            raise ValueError(f"bad x range {self.x_lo}..{self.x_hi}")
        if not (0 <= self.y_lo <= self.y_hi):
            raise ValueError(f"bad y range {self.y_lo}..{self.y_hi}")

    @property
    def width(self) -> int:
        """Extent along x, in bins."""
        return self.x_hi - self.x_lo + 1

    @property
    def height(self) -> int:
        """Extent along y, in bins."""
        return self.y_hi - self.y_lo + 1

    @property
    def area(self) -> int:
        """Number of cells covered."""
        return self.width * self.height

    def contains_cell(self, x: int, y: int) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def cells(self) -> Iterator[tuple[int, int]]:
        """Iterate the covered ``(x, y)`` cells."""
        for x in range(self.x_lo, self.x_hi + 1):
            for y in range(self.y_lo, self.y_hi + 1):
                yield x, y

    def overlaps(self, other: "GridRect") -> bool:
        return not (
            self.x_hi < other.x_lo or other.x_hi < self.x_lo
            or self.y_hi < other.y_lo or other.y_hi < self.y_lo
        )

    def intersect(self, other: "GridRect") -> "GridRect | None":
        """The overlapping sub-rectangle, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return GridRect(
            max(self.x_lo, other.x_lo), min(self.x_hi, other.x_hi),
            max(self.y_lo, other.y_lo), min(self.y_hi, other.y_hi),
        )

    def union_bounding(self, other: "GridRect") -> "GridRect":
        """The bounding box of both rectangles."""
        return GridRect(
            min(self.x_lo, other.x_lo), max(self.x_hi, other.x_hi),
            min(self.y_lo, other.y_lo), max(self.y_hi, other.y_hi),
        )

    def __str__(self) -> str:
        return (
            f"[x {self.x_lo}..{self.x_hi}] x [y {self.y_lo}..{self.y_hi}]"
        )


@dataclass(frozen=True)
class ClusteredRule:
    """A clustered association rule (paper Section 2.1):

    ``lo_x <= X < hi_x  AND  lo_y <= Y < hi_y  =>  C = rhs_value``

    with the aggregate support and confidence of the covered cells.  The
    originating bin rectangle is kept as provenance so the rule can be
    traced back onto the grid.
    """

    x_attribute: str
    y_attribute: str
    x_interval: Interval
    y_interval: Interval
    rhs_attribute: str
    rhs_value: object
    support: float
    confidence: float
    rect: GridRect | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.support <= 1.0:
            raise ValueError(f"support {self.support} outside [0, 1]")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside [0, 1]")

    def matches(self, x_values, y_values) -> np.ndarray:
        """Vectorised LHS membership test for points ``(x, y)``."""
        return self.x_interval.contains(x_values) & self.y_interval.contains(
            y_values
        )

    def __str__(self) -> str:
        lhs = (
            f"{self.x_interval.describe(self.x_attribute)} AND "
            f"{self.y_interval.describe(self.y_attribute)}"
        )
        return (
            f"{lhs} => {self.rhs_attribute} = {self.rhs_value} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f})"
        )
