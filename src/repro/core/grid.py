"""The bitmap grid of qualifying rule cells (paper Section 2.2).

After the rule engine emits the ``(i, j)`` pairs whose support and
confidence clear the thresholds for the target RHS value, the pairs become
a two-dimensional bitmap: cell ``(i, j)`` is set iff the rule
``X = i AND Y = j => C = target`` holds.  BitOp consumes the grid as one
arbitrary-precision integer per x-row (bit ``j`` of row ``i`` is cell
``(i, j)``), so the bitwise-AND and shift operations of paper Figure 6 are
literal machine/bigint operations here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.rules import BinnedRule, GridRect


@dataclass
class RuleGrid:
    """A boolean grid over bin space; ``cells[i, j]`` is x-bin i, y-bin j."""

    cells: np.ndarray

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells, dtype=bool)
        if cells.ndim != 2:
            raise ValueError(f"grid must be 2-D, got shape {cells.shape}")
        self.cells = cells

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_x: int, n_y: int) -> "RuleGrid":
        return cls(np.zeros((n_x, n_y), dtype=bool))

    @classmethod
    def from_rules(cls, rules: Iterable[BinnedRule], n_x: int,
                   n_y: int) -> "RuleGrid":
        """Plot binned rules onto an ``n_x`` by ``n_y`` grid."""
        grid = cls.empty(n_x, n_y)
        for rule in rules:
            if rule.x_bin >= n_x or rule.y_bin >= n_y:
                raise ValueError(
                    f"rule cell ({rule.x_bin}, {rule.y_bin}) outside "
                    f"{n_x}x{n_y} grid"
                )
            grid.cells[rule.x_bin, rule.y_bin] = True
        return grid

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]], n_x: int,
                   n_y: int) -> "RuleGrid":
        """Plot raw ``(i, j)`` pairs (the engine's output form)."""
        grid = cls.empty(n_x, n_y)
        for i, j in pairs:
            grid.cells[i, j] = True
        return grid

    # ------------------------------------------------------------------
    # Shape and content
    # ------------------------------------------------------------------
    @property
    def n_x(self) -> int:
        return self.cells.shape[0]

    @property
    def n_y(self) -> int:
        return self.cells.shape[1]

    @property
    def n_set(self) -> int:
        """Number of set cells."""
        return int(self.cells.sum())

    def is_empty(self) -> bool:
        return not self.cells.any()

    def set_pairs(self) -> list[tuple[int, int]]:
        """The set cells as sorted ``(x, y)`` pairs."""
        return [tuple(pair) for pair in np.argwhere(self.cells)]

    def copy(self) -> "RuleGrid":
        return RuleGrid(self.cells.copy())

    # ------------------------------------------------------------------
    # Bitmap form (BitOp input)
    # ------------------------------------------------------------------
    def row_bitmaps(self) -> list[int]:
        """One Python int per x-row; bit ``j`` set iff cell ``(i, j)`` is.

        Python ints are arbitrary precision, so a row of any width is one
        "register" and the AND/shift operations BitOp needs are single
        operations, mirroring the paper's implementation note.
        """
        rows = []
        for i in range(self.n_x):
            row_bits = 0
            for j in np.flatnonzero(self.cells[i]):
                row_bits |= 1 << int(j)
            rows.append(row_bits)
        return rows

    @classmethod
    def from_row_bitmaps(cls, rows: Sequence[int], n_y: int) -> "RuleGrid":
        """Inverse of :meth:`row_bitmaps`."""
        cells = np.zeros((len(rows), n_y), dtype=bool)
        for i, row_bits in enumerate(rows):
            j = 0
            while row_bits:
                if row_bits & 1:
                    cells[i, j] = True
                row_bits >>= 1
                j += 1
        return cls(cells)

    # ------------------------------------------------------------------
    # Rectangle operations
    # ------------------------------------------------------------------
    def covers(self, rect: GridRect) -> bool:
        """Whether every cell of ``rect`` is set."""
        block = self.cells[
            rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1
        ]
        return bool(block.all())

    def clear_rect(self, rect: GridRect) -> None:
        """Clear the cells of ``rect`` in place (greedy cover step)."""
        self.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = False

    def set_rect(self, rect: GridRect) -> None:
        """Set the cells of ``rect`` in place (test fixture helper)."""
        self.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = True

    def fraction_covered_by(self, rects: Iterable[GridRect]) -> float:
        """Fraction of set cells covered by the rectangles."""
        if self.is_empty():
            return 1.0
        covered = np.zeros_like(self.cells)
        for rect in rects:
            covered[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = True
        return float((self.cells & covered).sum()) / float(self.n_set)
