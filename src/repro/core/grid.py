"""The bitmap grid of qualifying rule cells (paper Section 2.2).

After the rule engine emits the ``(i, j)`` pairs whose support and
confidence clear the thresholds for the target RHS value, the pairs become
a two-dimensional bitmap: cell ``(i, j)`` is set iff the rule
``X = i AND Y = j => C = target`` holds.  BitOp consumes the grid as one
arbitrary-precision integer per x-row (bit ``j`` of row ``i`` is cell
``(i, j)``), so the bitwise-AND and shift operations of paper Figure 6 are
literal machine/bigint operations here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.rules import BinnedRule, GridRect


@dataclass
class RuleGrid:
    """A boolean grid over bin space; ``cells[i, j]`` is x-bin i, y-bin j."""

    cells: np.ndarray

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells, dtype=bool)
        if cells.ndim != 2:
            raise ValueError(f"grid must be 2-D, got shape {cells.shape}")
        self.cells = cells

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_x: int, n_y: int) -> "RuleGrid":
        return cls(np.zeros((n_x, n_y), dtype=bool))

    @classmethod
    def from_rules(cls, rules: Iterable[BinnedRule], n_x: int,
                   n_y: int) -> "RuleGrid":
        """Plot binned rules onto an ``n_x`` by ``n_y`` grid."""
        grid = cls.empty(n_x, n_y)
        for rule in rules:
            if rule.x_bin >= n_x or rule.y_bin >= n_y:
                raise ValueError(
                    f"rule cell ({rule.x_bin}, {rule.y_bin}) outside "
                    f"{n_x}x{n_y} grid"
                )
            grid.cells[rule.x_bin, rule.y_bin] = True
        return grid

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]], n_x: int,
                   n_y: int) -> "RuleGrid":
        """Plot raw ``(i, j)`` pairs (the engine's output form)."""
        grid = cls.empty(n_x, n_y)
        for i, j in pairs:
            grid.cells[i, j] = True
        return grid

    # ------------------------------------------------------------------
    # Shape and content
    # ------------------------------------------------------------------
    @property
    def n_x(self) -> int:
        return self.cells.shape[0]

    @property
    def n_y(self) -> int:
        return self.cells.shape[1]

    @property
    def n_set(self) -> int:
        """Number of set cells."""
        return int(self.cells.sum())

    def is_empty(self) -> bool:
        return not self.cells.any()

    def set_pairs(self) -> list[tuple[int, int]]:
        """The set cells as sorted ``(x, y)`` pairs."""
        return [tuple(pair) for pair in np.argwhere(self.cells)]

    def copy(self) -> "RuleGrid":
        return RuleGrid(self.cells.copy())

    # ------------------------------------------------------------------
    # Bitmap form (BitOp input)
    # ------------------------------------------------------------------
    def row_bitmaps(self) -> list[int]:
        """One Python int per x-row; bit ``j`` set iff cell ``(i, j)`` is.

        Python ints are arbitrary precision, so a row of any width is one
        "register" and the AND/shift operations BitOp needs are single
        operations, mirroring the paper's implementation note.

        The masks are built by packing each boolean row into bytes with
        :func:`np.packbits` and materialising one int per row, instead of
        OR-ing ``1 << j`` per set cell — same values
        (:func:`repro.perf.reference.row_bitmaps_scalar` is the oracle),
        but the per-cell work happens inside NumPy.
        """
        if self.n_y == 0:
            return [0] * self.n_x
        packed = np.packbits(self.cells, axis=1, bitorder="little")
        return [
            int.from_bytes(packed[i].tobytes(), "little")
            for i in range(self.n_x)
        ]

    @classmethod
    def from_row_bitmaps(cls, rows: Sequence[int], n_y: int) -> "RuleGrid":
        """Inverse of :meth:`row_bitmaps`."""
        n_bytes = (n_y + 7) // 8
        if not rows or n_bytes == 0:
            return cls(np.zeros((len(rows), n_y), dtype=bool))
        try:
            data = b"".join(
                int(row).to_bytes(n_bytes, "little") for row in rows
            )
        except OverflowError:
            raise ValueError(
                f"row bitmap has bits beyond column {n_y - 1}"
            ) from None
        packed = np.frombuffer(data, dtype=np.uint8)
        cells = np.unpackbits(
            packed.reshape(len(rows), n_bytes), axis=1,
            count=n_y, bitorder="little",
        )
        return cls(cells.astype(bool))

    # ------------------------------------------------------------------
    # Rectangle operations
    # ------------------------------------------------------------------
    def covers(self, rect: GridRect) -> bool:
        """Whether every cell of ``rect`` is set."""
        block = self.cells[
            rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1
        ]
        return bool(block.all())

    def clear_rect(self, rect: GridRect) -> None:
        """Clear the cells of ``rect`` in place (greedy cover step)."""
        self.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = False

    def set_rect(self, rect: GridRect) -> None:
        """Set the cells of ``rect`` in place (test fixture helper)."""
        self.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = True

    def fraction_covered_by(self, rects: Iterable[GridRect]) -> float:
        """Fraction of set cells covered by the rectangles."""
        if self.is_empty():
            return 1.0
        covered = np.zeros_like(self.cells)
        for rect in rects:
            covered[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1] = True
        return float((self.cells & covered).sum()) / float(self.n_set)
