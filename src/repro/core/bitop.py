"""The BitOp clustering algorithm (paper Section 3.3.1, Figure 6).

BitOp finds rectangular clusters of set cells in a bitmap grid using only
integer registers, bitwise AND and shifts.  For every start row it keeps a
running mask — the AND of the rows scanned so far.  While the mask is
unchanged the candidate rectangles keep growing taller; the moment the mask
changes (or empties, or the bitmap ends) each maximal run of consecutive
set bits in the *prior* mask is a candidate rectangle whose top edge is the
start row and whose height is the number of rows ANDed so far.

The published pseudocode (Figure 6) is OCR-garbled; this implementation
follows the worked example of Section 3.3.1 exactly and is validated in the
tests against a brute-force maximal-rectangle oracle.

The full clustering is the paper's greedy set cover: enumerate candidates,
take the largest, clear its cells, repeat — "such a greedy approach
produces near optimal clusters" (Cormen et al.), and runs in time linear in
the size of the final cluster set.

Two deliberately naive covers (:func:`single_cell_cover`,
:func:`component_bounding_boxes`) are included as ablation baselines: the
first is "no clustering at all" (one rule per cell), the second covers each
connected component with its bounding box (fast but over-covers concave
shapes, producing false positives BitOp avoids).
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


def runs_of_set_bits(mask: int) -> list[tuple[int, int]]:
    """Decompose an integer bitmask into maximal runs of consecutive set
    bits, returned as ``(first_bit, length)`` pairs in ascending order.

    Uses only shifts and masks: repeatedly strip trailing zeros, then
    measure the run of trailing ones.
    """
    runs = []
    position = 0
    while mask:
        # Skip the run of trailing zeros in one step.
        trailing_zeros = (mask & -mask).bit_length() - 1
        mask >>= trailing_zeros
        position += trailing_zeros
        # Measure the run of trailing ones: mask+1 flips them to a single
        # carry bit whose position is the run length.
        run_length = ((mask + 1) & ~mask).bit_length() - 1
        runs.append((position, run_length))
        mask >>= run_length
        position += run_length
    return runs


def enumerate_rectangles(rows: Sequence[int]) -> list[GridRect]:
    """Enumerate BitOp's candidate rectangles for a bitmap.

    ``rows[i]`` is the bitmap of x-row ``i`` (bit ``j`` = cell ``(i, j)``).
    For each start row, rectangles are emitted exactly when the running
    AND-mask is about to change, so every emitted rectangle is maximal in
    height for its (start row, column run); runs are maximal in width by
    construction.  Duplicate rectangles arising from different start rows
    are collapsed.
    """
    candidates: set[GridRect] = set()
    n_rows = len(rows)
    for start in range(n_rows):
        mask = rows[start]
        if mask == 0:
            continue
        height = 1
        for r in range(start + 1, n_rows):
            extended = mask & rows[r]
            if extended != mask:
                _emit(candidates, mask, start, height)
                mask = extended
                if mask == 0:
                    break
            height += 1
        if mask:
            _emit(candidates, mask, start, height)
    metrics.inc("bitop.rectangles_enumerated", len(candidates))
    return sorted(candidates)


def _emit(candidates: set[GridRect], mask: int, start_row: int,
          height: int) -> None:
    """Record one rectangle per run of set bits in ``mask``."""
    for first_bit, length in runs_of_set_bits(mask):
        candidates.add(
            GridRect(
                x_lo=start_row,
                x_hi=start_row + height - 1,
                y_lo=first_bit,
                y_hi=first_bit + length - 1,
            )
        )


def largest_rectangle(rows: Sequence[int]) -> GridRect | None:
    """The largest-area candidate rectangle, or ``None`` on an empty
    bitmap.  Candidates come back sorted, so ties break toward the
    lexicographically smallest rectangle and the cover is deterministic."""
    best: GridRect | None = None
    for rect in enumerate_rectangles(rows):
        if best is None or rect.area > best.area:
            best = rect
    return best


@dataclass(frozen=True)
class BitOpClusterer:
    """Greedy rectangle cover via BitOp (paper Sections 3.3.1 and 3.5).

    Parameters
    ----------
    min_cells:
        Terminate when the largest remaining rectangle covers fewer than
        this many cells ("if the algorithm cannot locate a sufficiently
        large cluster it terminates").  The default of 1 covers everything.
    max_clusters:
        Safety bound on the number of clusters returned; ``None`` means
        unbounded.  The paper's MDL step makes huge cluster counts
        uncompetitive anyway, so this is a guard rail, not policy.
    """

    min_cells: int = 1
    max_clusters: int | None = None

    def cluster(self, grid: RuleGrid) -> list[GridRect]:
        """Return a greedy rectangle cover of the set cells of ``grid``.

        The input grid is not modified.  Every returned rectangle was fully
        set at the moment it was selected, so rectangles may overlap the
        *original* set cells but never contain a cell that was clear.
        """
        if self.min_cells < 1:
            raise ValueError("min_cells must be at least 1")
        with trace("bitop") as span:
            working = grid.copy()
            rows = working.row_bitmaps()
            clusters: list[GridRect] = []
            while True:
                if self.max_clusters is not None and (
                    len(clusters) >= self.max_clusters
                ):
                    break
                best = largest_rectangle(rows)
                if best is None or best.area < self.min_cells:
                    break
                clusters.append(best)
                _clear_rows(rows, best)
            metrics.inc("bitop.clusters_found", len(clusters))
            span.set("clusters_found", len(clusters))
            logger.debug("BitOp covered the grid with %d rectangles",
                         len(clusters))
        return clusters


def _clear_rows(rows: list[int], rect: GridRect) -> None:
    """Clear a rectangle from the row-bitmap form in place.

    Rows are indexed by x; bits within a row are y positions, so the bit
    run to clear spans the rectangle's y extent (``rect.height``).
    """
    span_mask = ((1 << rect.height) - 1) << rect.y_lo
    clear = ~span_mask
    for i in range(rect.x_lo, rect.x_hi + 1):
        rows[i] &= clear


def _enumerate_from_start_rows(rows: Sequence[int],
                               start_rows: Sequence[int]) -> list[GridRect]:
    """Enumerate candidates whose top edge lies in ``start_rows``.

    Identical logic to :func:`enumerate_rectangles` restricted to a
    subset of start rows; the full enumeration is the union over a
    partition of start rows, which is what makes the algorithm
    embarrassingly parallel (paper Section 5: "parallel implementations
    of the algorithm would be straightforward").
    """
    candidates: set[GridRect] = set()
    n_rows = len(rows)
    for start in start_rows:
        mask = rows[start]
        if mask == 0:
            continue
        height = 1
        for r in range(start + 1, n_rows):
            extended = mask & rows[r]
            if extended != mask:
                _emit(candidates, mask, start, height)
                mask = extended
                if mask == 0:
                    break
            height += 1
        if mask:
            _emit(candidates, mask, start, height)
    return sorted(candidates)


def enumerate_rectangles_parallel(rows: Sequence[int],
                                  workers: int = 2) -> list[GridRect]:
    """Parallel candidate enumeration (the Section 5 future-work item).

    Start rows are independent, so they are partitioned round-robin
    across a process pool and the per-worker candidate sets are merged.
    Produces exactly :func:`enumerate_rectangles`'s output (asserted in
    tests).  Worth it only for large grids — per-process start-up
    dominates on the paper's 50x50 bitmaps, which is why the serial
    path stays the default.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers == 1 or len(rows) < 2 * workers:
        return enumerate_rectangles(rows)
    from concurrent.futures import ProcessPoolExecutor

    rows = list(rows)
    partitions = [
        list(range(shard, len(rows), workers)) for shard in range(workers)
    ]
    merged: set[GridRect] = set()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_enumerate_from_start_rows, rows, partition)
            for partition in partitions
        ]
        for future in futures:
            merged.update(future.result())
    return sorted(merged)


# ----------------------------------------------------------------------
# Ablation baselines (DESIGN.md experiment A2)
# ----------------------------------------------------------------------
def single_cell_cover(grid: RuleGrid) -> list[GridRect]:
    """The no-clustering baseline: one 1x1 rectangle per set cell.

    This is what plain (unclustered) association rule output corresponds
    to, and what the paper's clustered rules are meant to collapse.
    """
    return [GridRect(i, i, j, j) for i, j in grid.set_pairs()]


def component_bounding_boxes(grid: RuleGrid) -> list[GridRect]:
    """Cover each 4-connected component of set cells with its bounding box.

    A classic image-processing alternative: cheap, but a concave component
    gets a box containing unset cells, i.e. false-positive area that BitOp's
    exact rectangles avoid.  Used by the ablation benchmarks.
    """
    cells = grid.cells
    visited = np.zeros_like(cells)
    boxes: list[GridRect] = []
    for i, j in np.argwhere(cells & ~visited):
        if visited[i, j]:
            continue
        # Breadth-first flood fill of the component.
        stack = [(int(i), int(j))]
        visited[i, j] = True
        x_lo = x_hi = int(i)
        y_lo = y_hi = int(j)
        while stack:
            x, y = stack.pop()
            x_lo, x_hi = min(x_lo, x), max(x_hi, x)
            y_lo, y_hi = min(y_lo, y), max(y_hi, y)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                inside = 0 <= nx < grid.n_x and 0 <= ny < grid.n_y
                if inside and cells[nx, ny] and not visited[nx, ny]:
                    visited[nx, ny] = True
                    stack.append((nx, ny))
        boxes.append(GridRect(x_lo, x_hi, y_lo, y_hi))
    return boxes


def brute_force_maximal_rectangles(grid: RuleGrid) -> list[GridRect]:
    """Oracle enumerator for tests: all all-set rectangles that cannot be
    extended in any direction.  Quartic time — small grids only."""
    cells = grid.cells
    maximal: list[GridRect] = []
    n_x, n_y = grid.n_x, grid.n_y
    for x_lo in range(n_x):
        for x_hi in range(x_lo, n_x):
            for y_lo in range(n_y):
                for y_hi in range(y_lo, n_y):
                    rect = GridRect(x_lo, x_hi, y_lo, y_hi)
                    if not grid.covers(rect):
                        continue
                    if _is_extendable(cells, rect, n_x, n_y):
                        continue
                    maximal.append(rect)
    return sorted(set(maximal))


def _is_extendable(cells: np.ndarray, rect: GridRect, n_x: int,
                   n_y: int) -> bool:
    if rect.x_lo > 0 and cells[
        rect.x_lo - 1, rect.y_lo:rect.y_hi + 1
    ].all():
        return True
    if rect.x_hi < n_x - 1 and cells[
        rect.x_hi + 1, rect.y_lo:rect.y_hi + 1
    ].all():
        return True
    if rect.y_lo > 0 and cells[
        rect.x_lo:rect.x_hi + 1, rect.y_lo - 1
    ].all():
        return True
    if rect.y_hi < n_y - 1 and cells[
        rect.x_lo:rect.x_hi + 1, rect.y_hi + 1
    ].all():
        return True
    return False
