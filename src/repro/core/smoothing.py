"""Grid smoothing: the low-pass filter preprocessing step (Section 3.4).

Real grids arrive with jagged edges and small holes where no rule cleared
the thresholds (paper Figure 7a); those anomalies fragment what should be
one large cluster.  Before clustering, ARCS therefore passes the grid
through a two-dimensional *low-pass filter*: each cell is replaced by the
average of its neighbourhood, which fills pinholes, erodes isolated noise
cells and straightens edges (Figure 7b).

The paper omits the filter's details "for brevity"; here the filter is a
3x3 box mean with edge cells normalised by their actual neighbour count,
followed by a configurable activation threshold (default 0.5: a cell
survives iff at least half of its neighbourhood, itself included, is set).
Section 5 reports "promising results" from smoothing the association rule
*support values* instead of the binary grid; :func:`smooth_support`
implements that variant.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.core.grid import RuleGrid
from repro.obs import metrics, trace

logger = logging.getLogger(__name__)


def window_sums(values: np.ndarray, radius: int,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Sliding ``(2*radius+1)`` square window sums and window sizes.

    One 2-D convolution expressed through a summed-area table (double
    cumulative sum, the paper's "low-pass filter" as array ops): each
    window sum is four gathers into the integral image, so the cost is
    independent of the radius — where the shift-and-add reference
    (:func:`repro.perf.reference.neighbourhood_mean_scalar`) pays
    ``(2r+1)^2`` grid passes.  Windows are truncated at the grid edge;
    the returned ``counts`` are the actual window areas.

    On 0/1 grids every partial sum is an exact small integer, so the
    result is bit-identical to direct summation; on general floats it
    agrees to normal cumulative-sum rounding.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D grid, got shape {values.shape}")
    if radius < 1:
        raise ValueError("radius must be at least 1")
    n_x, n_y = values.shape
    integral = np.zeros((n_x + 1, n_y + 1), dtype=np.float64)
    integral[1:, 1:] = values.cumsum(axis=0).cumsum(axis=1)
    lo_x = np.maximum(np.arange(n_x) - radius, 0)
    hi_x = np.minimum(np.arange(n_x) + radius + 1, n_x)
    lo_y = np.maximum(np.arange(n_y) - radius, 0)
    hi_y = np.minimum(np.arange(n_y) + radius + 1, n_y)
    sums = (
        integral[hi_x[:, None], hi_y[None, :]]
        - integral[lo_x[:, None], hi_y[None, :]]
        - integral[hi_x[:, None], lo_y[None, :]]
        + integral[lo_x[:, None], lo_y[None, :]]
    )
    counts = ((hi_x - lo_x)[:, None] * (hi_y - lo_y)[None, :])
    return sums, counts.astype(np.float64)


def neighbourhood_mean(values: np.ndarray, radius: int = 1) -> np.ndarray:
    """Mean of each cell's ``(2*radius+1)`` square neighbourhood (itself
    included), with border neighbourhoods truncated at the grid edge rather
    than padded — so an edge cell is never diluted by phantom zeros."""
    sums, counts = window_sums(values, radius)
    return sums / counts


def smooth_binary(grid: RuleGrid, threshold: float = 0.5,
                  passes: int = 1, radius: int = 1) -> RuleGrid:
    """Low-pass filter a binary rule grid (the paper's default smoothing).

    Each pass replaces the grid with ``neighbourhood_mean >= threshold``.
    One pass with threshold 0.5 fills single-cell holes inside dense
    regions and removes isolated single cells; more passes smooth more
    aggressively.  Returns a new grid.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if passes < 0:
        raise ValueError("passes must be non-negative")
    with trace("smooth", variant="binary", passes=passes) as span:
        cells = grid.cells.astype(np.float64)
        for _ in range(passes):
            cells = (neighbourhood_mean(cells, radius=radius) >= threshold)
            cells = cells.astype(np.float64)
        smoothed = cells.astype(bool)
        flipped = int(np.sum(smoothed != grid.cells))
        metrics.inc("smoothing.cells_flipped", flipped)
        span.set("cells_flipped", flipped)
        logger.debug("binary smoothing flipped %d cells (%d passes)",
                     flipped, passes)
    return RuleGrid(smoothed)


def smooth_support(support_grid: np.ndarray, min_support: float,
                   passes: int = 1, radius: int = 1) -> RuleGrid:
    """Support-weighted smoothing (the Section 5 extension).

    Instead of thresholding first and smoothing the resulting bits, the
    per-cell *support values* are low-pass filtered and only then compared
    against the minimum support.  A pinhole surrounded by high-support
    cells inherits enough mass to survive, while a lone marginal cell is
    averaged away — using the magnitude information the binary variant
    discards.
    """
    if min_support < 0.0:
        raise ValueError("min_support must be non-negative")
    if passes < 1:
        raise ValueError("passes must be at least 1")
    with trace("smooth", variant="support", passes=passes) as span:
        values = np.asarray(support_grid, dtype=np.float64)
        original = values >= min_support
        for _ in range(passes):
            values = neighbourhood_mean(values, radius=radius)
        smoothed = values >= min_support
        flipped = int(np.sum(smoothed != original))
        metrics.inc("smoothing.cells_flipped", flipped)
        span.set("cells_flipped", flipped)
        logger.debug("support smoothing flipped %d cells (%d passes)",
                     flipped, passes)
    return RuleGrid(smoothed)
