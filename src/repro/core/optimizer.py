"""Threshold search: the lattice of Figure 10 and the heuristic optimizer.

Finding the support/confidence pair that yields the best segmentation is a
combinatorial optimisation the paper attacks heuristically (Section 3.7):

* Only threshold values that *actually occur* in the binned data matter —
  any other value is equivalent to the next occurring one.  The
  :class:`ThresholdLattice` enumerates the distinct per-cell support counts
  (one pass) and, per support level, the distinct confidences of the cells
  still alive at that support (second pass) — the paper's Figure 10
  structure.
* The search starts from a *low* support threshold and walks upward
  ("most 'optimal' segmentations were derived from grids with lower
  support thresholds"), letting dynamic pruning discard the noise a
  permissive threshold admits; support rises to shave background noise and
  outliers "until there is no improvement of the clustered association
  rules (within some epsilon)" or the time budget expires.

Each candidate pair runs the full downstream pipeline (cluster → verify →
MDL) and the pair with the lowest MDL cost wins.  Because the engine
re-mines from the resident BinArray, each trial costs array scans, not
data passes.
"""

from __future__ import annotations

import logging
import time
from dataclasses import asdict, dataclass, field
from dataclasses import replace as _replace

import numpy as np

from repro.core.segmentation import Segmentation
from repro.binning.bin_array import BinArray
from repro.core.clusterer import ClusteringOutcome, GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.verifier import VerificationReport, Verifier
from repro.obs import metrics, trace
from repro.obs.report import RunCapture, RunReport

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ThresholdLattice:
    """The support/confidence values that occur in a BinArray (Fig 10).

    ``support_counts`` are the distinct nonzero per-cell counts for the
    target RHS value, ascending; :meth:`confidences_at` gives the distinct
    confidences among cells whose count reaches a given support level.
    """

    bin_array: BinArray
    rhs_code: int
    support_counts: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        counts = self.bin_array.unique_support_counts(self.rhs_code)
        object.__setattr__(
            self, "support_counts", tuple(int(c) for c in counts)
        )

    @property
    def n_total(self) -> int:
        return self.bin_array.n_total

    def support_fractions(self) -> list[float]:
        """The occurring support thresholds as fractions of N."""
        if self.n_total == 0:
            return []
        return [count / self.n_total for count in self.support_counts]

    def confidences_at(self, support_count: int) -> list[float]:
        """Distinct confidences among cells with count >= the level."""
        values = self.bin_array.unique_confidences(
            self.rhs_code, min_count=support_count
        )
        return [float(v) for v in values]

    def coarsen_supports(self, max_levels: int) -> list[float]:
        """At most ``max_levels`` support fractions, evenly spread over the
        occurring values (always including the lowest, where the search
        starts, and the highest)."""
        fractions = self.support_fractions()
        return _spread(fractions, max_levels)

    def coarsen_confidences(self, support_count: int,
                            max_levels: int) -> list[float]:
        """At most ``max_levels`` confidence values at a support level."""
        return _spread(self.confidences_at(support_count), max_levels)


def _spread(values: list[float], max_levels: int) -> list[float]:
    if max_levels <= 0:
        raise ValueError("max_levels must be positive")
    if len(values) <= max_levels:
        return list(values)
    indices = np.unique(
        np.linspace(0, len(values) - 1, max_levels).round().astype(int)
    )
    return [values[i] for i in indices]


@dataclass(frozen=True)
class TrialRecord:
    """One optimizer trial: the thresholds and everything they produced."""

    min_support: float
    min_confidence: float
    n_clusters: int
    report: VerificationReport
    mdl_cost: float

    def __str__(self) -> str:
        return (
            f"support>={self.min_support:.5f} "
            f"confidence>={self.min_confidence:.3f}: "
            f"{self.n_clusters} clusters, "
            f"error={self.report.error_rate:.4f}, "
            f"mdl={self.mdl_cost:.3f}"
        )


@dataclass(frozen=True)
class OptimizerConfig:
    """Search-budget knobs for the heuristic optimizer.

    Parameters
    ----------
    max_support_levels:
        How many occurring support values to visit (spread over the full
        occurring range, lowest first — the paper's search direction).
    max_confidence_levels:
        How many occurring confidence values to try per support level.
    patience:
        Stop after this many consecutive support levels without an MDL
        improvement beyond ``epsilon`` (the paper's "no significant
        improvement" criterion).
    epsilon:
        Minimum MDL improvement that counts as progress.
    time_budget_seconds:
        Wall-clock budget; ``None`` disables the clock (the paper's
        verifier also stops when "the budgeted time has expired").
    """

    max_support_levels: int = 16
    max_confidence_levels: int = 8
    patience: int = 3
    epsilon: float = 1e-9
    time_budget_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_support_levels <= 0 or self.max_confidence_levels <= 0:
            raise ValueError("level counts must be positive")
        if self.patience <= 0:
            raise ValueError("patience must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")


@dataclass(frozen=True)
class OptimizerResult:
    """The winning trial, its artefacts, and the full search history."""

    best: TrialRecord
    segmentation: Segmentation
    outcome: ClusteringOutcome
    history: tuple[TrialRecord, ...]
    stopped_by: str
    run_report: RunReport | None = None

    @property
    def n_trials(self) -> int:
        return len(self.history)


@dataclass
class HeuristicOptimizer:
    """The feedback loop of paper Figure 2, minimising MDL cost.

    ``on_trial``, when set, is called with each :class:`TrialRecord` as
    it completes — the hook the CLI's verbose mode and progress
    reporting use.
    """

    clusterer: GridClusterer
    verifier: Verifier
    weights: MDLWeights = field(default_factory=MDLWeights)
    config: OptimizerConfig = field(default_factory=OptimizerConfig)
    on_trial: object = None

    def search(self, bin_array: BinArray,
               rhs_code: int) -> OptimizerResult:
        """Walk the threshold lattice from low support upward.

        Returns the lowest-MDL segmentation found.  Raises ``ValueError``
        when the target value never occurs (there is nothing to segment).

        When observability is enabled the search runs under a
        :class:`~repro.obs.report.RunCapture`: standalone searches get
        their own :class:`~repro.obs.report.RunReport` on
        ``result.run_report``, while a search inside ``ARCS.fit``
        contributes a child span to the enclosing run's report instead.
        """
        with RunCapture("optimizer.search", config={
            "optimizer": asdict(self.config),
            "mdl_weights": asdict(self.weights),
        }) as capture:
            result = self._search(bin_array, rhs_code)
        if capture.report is not None:
            result = _replace(result, run_report=capture.report)
        return result

    def _search(self, bin_array: BinArray,
                rhs_code: int) -> OptimizerResult:
        lattice = ThresholdLattice(bin_array, rhs_code)
        supports = lattice.coarsen_supports(self.config.max_support_levels)
        if not supports:
            raise ValueError(
                "the target RHS value does not occur in the binned data"
            )
        deadline = (
            None if self.config.time_budget_seconds is None
            else time.monotonic() + self.config.time_budget_seconds
        )

        history: list[TrialRecord] = []
        best: TrialRecord | None = None
        best_artifacts: tuple[Segmentation, ClusteringOutcome] | None = None
        stale_levels = 0
        stopped_by = "exhausted"

        for support in supports:
            if deadline is not None and time.monotonic() >= deadline:
                stopped_by = "time budget"
                break
            support_count = max(1, int(round(support * lattice.n_total)))
            confidences = lattice.coarsen_confidences(
                support_count, self.config.max_confidence_levels
            )
            level_improved = False
            for confidence in confidences:
                metrics.inc("optimizer.trials")
                trial_start = time.perf_counter()
                with trace("optimizer.trial", min_support=support,
                           min_confidence=confidence) as span:
                    trial, artifacts = self._run_trial(
                        bin_array, rhs_code, support, confidence
                    )
                    span.set("n_clusters", trial.n_clusters)
                    span.set("mdl_cost", trial.mdl_cost)
                metrics.observe("optimizer.trial_seconds",
                                time.perf_counter() - trial_start)
                logger.debug("trial %s", trial)
                history.append(trial)
                if self.on_trial is not None:
                    self.on_trial(trial)
                improved = best is None or (
                    trial.mdl_cost < best.mdl_cost - self.config.epsilon
                )
                if improved:
                    best = trial
                    best_artifacts = artifacts
                    level_improved = True
            if level_improved:
                stale_levels = 0
            else:
                stale_levels += 1
                if stale_levels >= self.config.patience:
                    stopped_by = "no improvement"
                    break

        if best is None or best_artifacts is None:
            raise ValueError("optimizer made no trials")
        segmentation, outcome = best_artifacts
        logger.info(
            "threshold search stopped by %s after %d trials; best %s",
            stopped_by, len(history), best,
        )
        return OptimizerResult(
            best=best,
            segmentation=segmentation,
            outcome=outcome,
            history=tuple(history),
            stopped_by=stopped_by,
        )

    def _run_trial(
        self, bin_array: BinArray, rhs_code: int, min_support: float,
        min_confidence: float,
    ) -> tuple[TrialRecord, tuple[Segmentation, ClusteringOutcome]]:
        outcome = self.clusterer.cluster(
            bin_array, rhs_code, min_support, min_confidence
        )
        segmentation = segmentation_from_outcome(
            outcome, bin_array, rhs_code
        )
        report = self.verifier.verify(segmentation)
        cost = self.weights.cost(len(segmentation), report.mean_errors)
        trial = TrialRecord(
            min_support=min_support,
            min_confidence=min_confidence,
            n_clusters=len(segmentation),
            report=report,
            mdl_cost=cost,
        )
        return trial, (segmentation, outcome)


def segmentation_from_outcome(outcome: ClusteringOutcome,
                              bin_array: BinArray,
                              rhs_code: int) -> Segmentation:
    """Wrap a clustering outcome's rules as a :class:`Segmentation`,
    handling the empty case explicitly."""
    return Segmentation(
        rules=outcome.rules,
        x_attribute=bin_array.x_layout.attribute,
        y_attribute=bin_array.y_layout.attribute,
        rhs_attribute=bin_array.rhs_encoding.attribute,
        rhs_value=bin_array.rhs_encoding.values[rhs_code],
    )
