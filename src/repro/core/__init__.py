"""The paper's primary contribution: ARCS and the BitOp algorithm.

Modules, in pipeline order (paper Figure 2):

* :mod:`repro.core.rules` — intervals, binned rules, grid rectangles and
  clustered association rules.
* :mod:`repro.core.grid` — the bitmap grid of qualifying rule cells.
* :mod:`repro.core.smoothing` — the low-pass filter preprocessing step.
* :mod:`repro.core.bitop` — the BitOp rectangle enumerator and the greedy
  cover built on it, plus naive cover baselines for ablations.
* :mod:`repro.core.pruning` — dynamic pruning of too-small clusters.
* :mod:`repro.core.clusterer` — the smoothing → BitOp → pruning pipeline.
* :mod:`repro.core.verifier` — sampled false-positive/false-negative error.
* :mod:`repro.core.mdl` — the MDL cost of a segmentation.
* :mod:`repro.core.optimizer` — the threshold lattice and the heuristic
  feedback-loop optimizer.
* :mod:`repro.core.arcs` — the end-to-end ARCS system.
"""

from repro.core.arcs import ARCS, ARCSConfig, ARCSResult
from repro.core.bitop import BitOpClusterer, enumerate_rectangles
from repro.core.clusterer import ClustererConfig, GridClusterer
from repro.core.grid import RuleGrid
from repro.core.mdl import mdl_cost
from repro.core.optimizer import HeuristicOptimizer, OptimizerConfig, ThresholdLattice
from repro.core.rules import BinnedRule, ClusteredRule, GridRect, Interval
from repro.core.smoothing import smooth_binary, smooth_support
from repro.core.verifier import VerificationReport, Verifier

__all__ = [
    "ARCS",
    "ARCSConfig",
    "ARCSResult",
    "BitOpClusterer",
    "enumerate_rectangles",
    "ClustererConfig",
    "GridClusterer",
    "RuleGrid",
    "mdl_cost",
    "HeuristicOptimizer",
    "OptimizerConfig",
    "ThresholdLattice",
    "BinnedRule",
    "ClusteredRule",
    "GridRect",
    "Interval",
    "smooth_binary",
    "smooth_support",
    "Verifier",
    "VerificationReport",
]
