"""MDL scoring of a segmentation (paper Section 3.6).

The Minimum Description Length principle: the best model minimises the
cost of describing the model plus the cost of describing the data given
the model.  Here the model is the set of clusters and the data cost is the
segmentation's total error on a sample:

``cost = w_c * log2(|C|) + w_e * log2(errors)``

The weights let the user bias toward fewer clusters (large ``w_c``) or
lower error (large ``w_e``); the paper's default is ``w_c = w_e = 1``.

Two boundary cases the paper leaves implicit are pinned down here (see
DESIGN.md): ``log2`` is applied to ``1 + x`` so zero clusters or zero
errors stay finite, and an *empty* segmentation is scored as infinitely
costly — a model that says nothing describes nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def mdl_cost(n_clusters: int, errors: float, cluster_weight: float = 1.0,
             error_weight: float = 1.0) -> float:
    """The MDL cost of a segmentation.

    Parameters
    ----------
    n_clusters:
        Number of clustered rules in the segmentation (``|C|``).
    errors:
        Summed false positives + false negatives measured by the verifier.
        May be a non-integer when averaged over repeated samples.
    cluster_weight, error_weight:
        The paper's ``w_c`` and ``w_e`` bias constants.
    """
    if n_clusters < 0:
        raise ValueError("n_clusters must be non-negative")
    if errors < 0:
        raise ValueError("errors must be non-negative")
    if cluster_weight < 0 or error_weight < 0:
        raise ValueError("weights must be non-negative")
    if n_clusters == 0:
        return math.inf
    model_cost = cluster_weight * math.log2(1 + n_clusters)
    data_cost = error_weight * math.log2(1 + errors)
    return model_cost + data_cost


@dataclass(frozen=True)
class MDLWeights:
    """The ``(w_c, w_e)`` bias pair, validated once and passed around."""

    cluster_weight: float = 1.0
    error_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cluster_weight < 0 or self.error_weight < 0:
            raise ValueError("MDL weights must be non-negative")

    def cost(self, n_clusters: int, errors: float) -> float:
        return mdl_cost(
            n_clusters, errors,
            cluster_weight=self.cluster_weight,
            error_weight=self.error_weight,
        )
