"""The grid clustering pipeline: mine → smooth → BitOp → prune → rules.

This is the middle of paper Figure 2: given a populated BinArray and one
threshold pair, produce the clustered association rules.  The steps are

1. the specialised engine emits qualifying cells (Section 3.2),
2. the grid is low-pass smoothed (Section 3.4) — binary by default, or
   over support values when ``support_weighted`` is on (Section 5),
3. BitOp greedily covers the grid with rectangles (Section 3.3),
4. too-small clusters are pruned (Section 3.5),
5. each surviving rectangle is translated back to value space and scored
   (support/confidence aggregated over its cells) as a
   :class:`~repro.core.rules.ClusteredRule`.

Clustered rule confidence is the aggregate over the rectangle's cells.
Because smoothing can add cells no individual rule occupied, a cluster's
own confidence can dip below the mining threshold; the paper's guarantee
("clustered association rules will always have a support and confidence of
at least that of the minimum threshold levels") holds exactly when
smoothing is off, and the verifier/MDL loop governs quality either way.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field

from repro.binning.bin_array import BinArray
from repro.core.bitop import BitOpClusterer
from repro.core.grid import RuleGrid
from repro.core.merging import merge_clusters
from repro.core.pruning import PruningReport, prune_clusters
from repro.core.rules import ClusteredRule, GridRect, Interval
from repro.core.smoothing import smooth_binary, smooth_support
from repro.mining.engine import rule_pairs
from repro.obs import trace

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ClustererConfig:
    """Knobs of the clustering pipeline.

    Parameters
    ----------
    smoothing:
        Apply the low-pass filter before BitOp (paper default: on).
    smoothing_threshold:
        Activation threshold of the binary filter.
    smoothing_passes:
        Number of filter applications.
    smoothing_min_axis:
        Skip the filter when either grid axis is shorter than this: a
        3x3 kernel on a 5-bin axis averages over 60% of the domain and
        fuses structures that are genuinely distinct (e.g. discrete
        attributes binned one-value-per-bin).
    support_weighted:
        Use the Section 5 support-value smoothing variant instead of the
        binary filter.
    prune_fraction:
        Clusters smaller than this fraction of the grid are pruned
        (paper default: 1%).
    min_cluster_cells:
        BitOp's own termination floor; pruning usually dominates it.
    merge_clusters:
        Consolidate cover fragments whose bounding hull is well covered
        (see :mod:`repro.core.merging`); needed to reproduce the paper's
        "exactly three clusters" result on perturbed data.
    merge_cover_fraction:
        Minimum hull coverage for a merge to be admissible.
    """

    smoothing: bool = True
    smoothing_threshold: float = 0.5
    smoothing_passes: int = 1
    smoothing_min_axis: int = 8
    support_weighted: bool = False
    prune_fraction: float = 0.01
    min_cluster_cells: int = 1
    merge_clusters: bool = True
    merge_cover_fraction: float = 0.8


@dataclass
class ClusteringOutcome:
    """Everything one pipeline run produced, for inspection and tests."""

    raw_grid: RuleGrid
    smoothed_grid: RuleGrid
    clusters: tuple[GridRect, ...]
    pruning: PruningReport
    rules: tuple[ClusteredRule, ...]

    @property
    def n_rules(self) -> int:
        return len(self.rules)


@dataclass
class GridClusterer:
    """Runs the pipeline for one (BinArray, target, thresholds) input."""

    config: ClustererConfig = field(default_factory=ClustererConfig)

    def cluster(self, bin_array: BinArray, rhs_code: int,
                min_support: float,
                min_confidence: float) -> ClusteringOutcome:
        """Produce clustered rules at the given thresholds."""
        with trace("cluster", min_support=min_support,
                   min_confidence=min_confidence):
            pairs = rule_pairs(
                bin_array, rhs_code, min_support, min_confidence
            )
            raw_grid = RuleGrid.from_pairs(
                pairs, bin_array.n_x, bin_array.n_y
            )
            smoothed = self._smooth(
                raw_grid, bin_array, rhs_code, min_support
            )
            bitop = BitOpClusterer(
                min_cells=self.config.min_cluster_cells
            )
            found = bitop.cluster(smoothed)
            if self.config.merge_clusters:
                with trace("merge") as span:
                    merged = merge_clusters(
                        found, smoothed,
                        cover_fraction=self.config.merge_cover_fraction,
                    )
                    span.set("clusters_before", len(found))
                    span.set("clusters_after", len(merged))
                    found = merged
            with trace("prune"):
                pruning = prune_clusters(
                    found, (bin_array.n_x, bin_array.n_y),
                    fraction=self.config.prune_fraction,
                )
            rules = tuple(
                clustered_rule_from_rect(rect, bin_array, rhs_code)
                for rect in pruning.kept
            )
            logger.debug(
                "clustered %d qualifying cells into %d rules "
                "(support>=%g confidence>=%g)",
                len(pairs), len(rules), min_support, min_confidence,
            )
        return ClusteringOutcome(
            raw_grid=raw_grid,
            smoothed_grid=smoothed,
            clusters=tuple(found),
            pruning=pruning,
            rules=rules,
        )

    def _smooth(self, grid: RuleGrid, bin_array: BinArray, rhs_code: int,
                min_support: float) -> RuleGrid:
        too_small = (
            min(grid.n_x, grid.n_y) < self.config.smoothing_min_axis
        )
        if (not self.config.smoothing or too_small
                or self.config.smoothing_passes == 0):
            return grid.copy()
        if self.config.support_weighted:
            return smooth_support(
                bin_array.support_grid(rhs_code),
                min_support=min_support,
                passes=self.config.smoothing_passes,
            )
        return smooth_binary(
            grid,
            threshold=self.config.smoothing_threshold,
            passes=self.config.smoothing_passes,
        )


def clustered_rule_from_rect(rect: GridRect, bin_array: BinArray,
                             rhs_code: int) -> ClusteredRule:
    """Translate a bin rectangle into a value-space clustered rule.

    The intervals span the rectangle's bins; support and confidence are
    aggregated over the rectangle's cells from the BinArray, which is the
    clustered rule's exact support/confidence on the binned data.
    """
    x_layout, y_layout = bin_array.x_layout, bin_array.y_layout
    x_low, x_high = x_layout.span_interval(rect.x_lo, rect.x_hi)
    y_low, y_high = y_layout.span_interval(rect.y_lo, rect.y_hi)
    target_count, total_count = bin_array.region_counts(
        rect.x_lo, rect.x_hi, rect.y_lo, rect.y_hi, rhs_code
    )
    support = (
        target_count / bin_array.n_total if bin_array.n_total else 0.0
    )
    confidence = target_count / total_count if total_count else 0.0
    return ClusteredRule(
        x_attribute=x_layout.attribute,
        y_attribute=y_layout.attribute,
        x_interval=Interval(
            x_low, x_high,
            closed_high=(rect.x_hi == x_layout.n_bins - 1),
        ),
        y_interval=Interval(
            y_low, y_high,
            closed_high=(rect.y_hi == y_layout.n_bins - 1),
        ),
        rhs_attribute=bin_array.rhs_encoding.attribute,
        rhs_value=bin_array.rhs_encoding.values[rhs_code],
        support=support,
        confidence=confidence,
        rect=rect,
    )
