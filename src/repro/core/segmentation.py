"""Segmentations: the collection of clustered rules for one criterion.

Paper Section 2.2: "We define a segmentation as the collection of all the
clustered association rules for a specific value of the criterion
attribute."  A :class:`Segmentation` answers the question the marketing
scenario asks — *does this point belong to the segment?* — by testing the
point against every rule's rectangle, and carries enough provenance
(attributes, criterion, rules) to be rendered for an end user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.rules import ClusteredRule
from repro.data.schema import Table


@dataclass(frozen=True)
class Segmentation:
    """All clustered association rules for one RHS criterion value.

    Rules share the same LHS attribute pair and the same RHS attribute and
    value; the constructor enforces that so a segmentation is always a
    coherent picture of one segment.
    """

    rules: tuple[ClusteredRule, ...]
    x_attribute: str
    y_attribute: str
    rhs_attribute: str
    rhs_value: object

    def __post_init__(self) -> None:
        rules = tuple(self.rules)
        object.__setattr__(self, "rules", rules)
        for rule in rules:
            consistent = (
                rule.x_attribute == self.x_attribute
                and rule.y_attribute == self.y_attribute
                and rule.rhs_attribute == self.rhs_attribute
                and rule.rhs_value == self.rhs_value
            )
            if not consistent:
                raise ValueError(
                    f"rule {rule} does not belong to segmentation over "
                    f"({self.x_attribute}, {self.y_attribute}) => "
                    f"{self.rhs_attribute} = {self.rhs_value}"
                )

    @classmethod
    def from_rules(cls, rules: Sequence[ClusteredRule]) -> "Segmentation":
        """Build from a non-empty rule list, inferring the attributes."""
        if not rules:
            raise ValueError(
                "cannot infer segmentation attributes from no rules; "
                "use the explicit constructor for an empty segmentation"
            )
        first = rules[0]
        return cls(
            rules=tuple(rules),
            x_attribute=first.x_attribute,
            y_attribute=first.y_attribute,
            rhs_attribute=first.rhs_attribute,
            rhs_value=first.rhs_value,
        )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[ClusteredRule]:
        return iter(self.rules)

    @property
    def is_empty(self) -> bool:
        return len(self.rules) == 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def covers(self, x_values, y_values) -> np.ndarray:
        """Vectorised: true where any rule's rectangle contains the point."""
        x_values = np.asarray(x_values, dtype=np.float64)
        covered = np.zeros(x_values.shape, dtype=bool)
        for rule in self.rules:
            covered |= rule.matches(x_values, y_values)
        return covered

    def covers_table(self, table: Table) -> np.ndarray:
        """Membership for every row of a table with the LHS columns."""
        return self.covers(
            table.column(self.x_attribute), table.column(self.y_attribute)
        )

    def predict_labels(self, table: Table, other_label) -> np.ndarray:
        """Label rows: the criterion value inside the segment, ``other``
        outside — the segmentation used as a one-vs-rest classifier, which
        is how the paper compares against C4.5."""
        covered = self.covers_table(table)
        labels = np.empty(len(table), dtype=object)
        labels[covered] = self.rhs_value
        labels[~covered] = other_label
        return labels

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable rule listing in the paper's style."""
        if self.is_empty:
            return (
                f"(empty segmentation for {self.rhs_attribute} = "
                f"{self.rhs_value})"
            )
        return "\n".join(str(rule) for rule in self.rules)

    def total_support(self) -> float:
        """Sum of the rules' supports (rules are disjoint rectangles in a
        greedy cover, so this approximates the segment's total support)."""
        return float(sum(rule.support for rule in self.rules))
