"""ARCS: the end-to-end Association Rule Clustering System (Figure 2).

:class:`ARCS` wires the whole paper together: bin the data once, then run
the feedback loop — mine at the current thresholds, smooth, BitOp-cluster,
prune, verify on samples, score with MDL, adjust the thresholds — until
the heuristic optimizer sees no further improvement or the time budget
runs out.  "Our system is fully automated and does not require any
user-specified thresholds": the caller names the two LHS attributes, the
RHS attribute and the criterion value, and gets a segmentation back.

The fitted :class:`ARCSResult` keeps the binner and BinArray, so
:meth:`ARCSResult.remine` demonstrates the paper's headline systems
property — re-mining at different thresholds without touching the data.
"""

from __future__ import annotations

import logging

from dataclasses import asdict, dataclass, field

from repro.core.segmentation import Segmentation
from repro.binning.binner import Binner, bin_table
from repro.binning.strategies import EQUI_WIDTH, suggest_bin_count
from repro.core.clusterer import (
    ClustererConfig,
    ClusteringOutcome,
    GridClusterer,
)
from repro.core.mdl import MDLWeights
from repro.core.optimizer import (
    HeuristicOptimizer,
    OptimizerConfig,
    OptimizerResult,
    TrialRecord,
    segmentation_from_outcome,
)
from repro.core.verifier import Verifier
from repro.data.schema import Table
from repro.obs import trace
from repro.obs.report import RunCapture, RunReport

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ARCSConfig:
    """All ARCS knobs, with the paper's defaults.

    Parameters
    ----------
    n_bins_x, n_bins_y:
        Bins per LHS attribute ("currently the number of bins for each
        attribute is preset at 50").
    auto_bins:
        Size the grid to the data instead:
        :func:`~repro.binning.strategies.suggest_bin_count` keeps the
        average occupied cell populated, reproducing the paper's 50
        bins at its sweep sizes and degrading gracefully on small
        tables (overrides ``n_bins_x``/``n_bins_y``).
    binning_strategy:
        ``equi-width`` (paper default), ``equi-depth`` or ``homogeneity``.
    clusterer:
        Smoothing/pruning configuration (paper defaults: smoothing on,
        1% pruning).
    optimizer:
        Threshold-search budget.
    mdl_weights:
        The ``(w_c, w_e)`` bias pair (paper default: 1, 1).
    sample_size, sample_repeats:
        The verifier's repeated k-out-of-n scheme.
    single_target_memory:
        Build the BinArray in the paper's reduced ``n_seg = 1`` mode.
    seed:
        Seed for the verifier's sampling.
    """

    n_bins_x: int = 50
    n_bins_y: int = 50
    auto_bins: bool = False
    binning_strategy: str = EQUI_WIDTH
    clusterer: ClustererConfig = field(default_factory=ClustererConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    mdl_weights: MDLWeights = field(default_factory=MDLWeights)
    sample_size: int = 1000
    sample_repeats: int = 5
    single_target_memory: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_bins_x <= 0 or self.n_bins_y <= 0:
            raise ValueError("bin counts must be positive")


@dataclass
class ARCSResult:
    """A fitted segmentation plus everything needed to inspect or re-mine.

    Attributes
    ----------
    segmentation:
        The clustered association rules for the criterion value.
    best_trial:
        The winning thresholds and their verification/MDL scores.
    history:
        Every trial the optimizer ran, in order.
    binner:
        The fitted binner (layouts, encoding, populated BinArray).
    outcome:
        The winning trial's full clustering pipeline artefacts.
    stopped_by:
        Why the search ended (``"no improvement"``, ``"time budget"`` or
        ``"exhausted"``).
    run_report:
        The :class:`~repro.obs.report.RunReport` of this fit (span tree,
        metrics, config fingerprint) when observability was enabled via
        :func:`repro.obs.enable`; ``None`` otherwise.
    """

    segmentation: Segmentation
    best_trial: TrialRecord
    history: tuple[TrialRecord, ...]
    binner: Binner
    outcome: ClusteringOutcome
    rhs_code: int
    clusterer: GridClusterer
    stopped_by: str
    run_report: RunReport | None = None

    @property
    def rules(self):
        """The clustered rules of the winning segmentation."""
        return self.segmentation.rules

    def remine(self, min_support: float,
               min_confidence: float) -> Segmentation:
        """Recompute the segmentation at explicit thresholds.

        No data pass happens — the BinArray is resident, so this is the
        paper's "nearly instantaneous" threshold change.
        """
        outcome = self.clusterer.cluster(
            self.binner.bin_array, self.rhs_code,
            min_support, min_confidence,
        )
        return segmentation_from_outcome(
            outcome, self.binner.bin_array, self.rhs_code
        )

    def describe(self) -> str:
        """Paper-style report: the rules, then the winning thresholds."""
        lines = [self.segmentation.describe(), "", str(self.best_trial)]
        return "\n".join(lines)


@dataclass
class ARCS:
    """The Association Rule Clustering System.

    Typical use::

        arcs = ARCS()
        result = arcs.fit(table, "age", "salary", "group", "A")
        print(result.segmentation.describe())

    After a call to :meth:`fit` or :meth:`fit_all` with observability
    enabled, :attr:`last_run_report` holds the run's
    :class:`~repro.obs.report.RunReport` (``fit_all`` produces one
    report covering every criterion value).
    """

    config: ARCSConfig = field(default_factory=ARCSConfig)
    last_run_report: RunReport | None = field(
        default=None, compare=False, repr=False
    )

    def fit(self, table: Table, x_attribute: str, y_attribute: str,
            rhs_attribute: str, target_value,
            verification_table: Table | None = None,
            on_trial=None) -> ARCSResult:
        """Run the full ARCS pipeline on ``table``.

        ``verification_table`` optionally supplies held-out data for the
        verifier; by default the verifier samples the training table, as
        the paper does ("a sample of tuples from the source database").
        ``on_trial`` is called with each optimizer
        :class:`~repro.core.optimizer.TrialRecord` as it completes
        (progress reporting).

        When observability is enabled (:func:`repro.obs.enable`) the
        whole fit runs under a run capture and the resulting
        :class:`~repro.obs.report.RunReport` is attached to the returned
        result as ``run_report``.
        """
        config = self.config
        logger.info(
            "ARCS.fit: %d tuples, LHS (%s, %s), criterion %s = %r",
            len(table), x_attribute, y_attribute, rhs_attribute,
            target_value,
        )
        with RunCapture("arcs.fit", config={
            "arcs": asdict(config),
            "x_attribute": x_attribute,
            "y_attribute": y_attribute,
            "rhs_attribute": rhs_attribute,
            "target_value": target_value,
        }) as capture:
            if config.auto_bins:
                bins = suggest_bin_count(len(table))
                n_bins_x = n_bins_y = bins
            else:
                n_bins_x, n_bins_y = config.n_bins_x, config.n_bins_y
            binner = bin_table(
                table, x_attribute, y_attribute, rhs_attribute,
                n_bins_x=n_bins_x,
                n_bins_y=n_bins_y,
                strategy=config.binning_strategy,
                target_value=(
                    target_value if config.single_target_memory else None
                ),
            )
            rhs_code = binner.rhs_encoding.code_of(target_value)
            clusterer = GridClusterer(config.clusterer)
            verifier = Verifier(
                table=verification_table or table,
                rhs_attribute=rhs_attribute,
                target_value=target_value,
                sample_size=config.sample_size,
                repeats=config.sample_repeats,
                seed=config.seed,
            )
            optimizer = HeuristicOptimizer(
                clusterer=clusterer,
                verifier=verifier,
                weights=config.mdl_weights,
                config=config.optimizer,
                on_trial=on_trial,
            )
            search: OptimizerResult = optimizer.search(
                binner.bin_array, rhs_code
            )
        self.last_run_report = capture.report
        return ARCSResult(
            segmentation=search.segmentation,
            best_trial=search.best,
            history=search.history,
            binner=binner,
            outcome=search.outcome,
            rhs_code=rhs_code,
            clusterer=clusterer,
            stopped_by=search.stopped_by,
            run_report=capture.report,
        )

    def fit_all(self, table: Table, x_attribute: str, y_attribute: str,
                rhs_attribute: str,
                verification_table: Table | None = None) -> dict:
        """One segmentation per RHS value, from a single binning pass.

        This is the paper's Section 3.1 memory argument made concrete:
        "by maintaining this data structure in memory we can compute an
        entirely new segmentation for a different value of the
        segmentation criteria without the need to re-bin the original
        data."  The BinArray holds counts for every RHS value, so only
        the optimizer loop runs per value.

        Returns a mapping from RHS value to :class:`ARCSResult`.  RHS
        values that never occur in the data are skipped.  Incompatible
        with ``single_target_memory`` (that mode only keeps one value's
        counts).
        """
        config = self.config
        if config.single_target_memory:
            raise ValueError(
                "fit_all needs the full BinArray; disable "
                "single_target_memory"
            )
        with RunCapture("arcs.fit_all", config={
            "arcs": asdict(config),
            "x_attribute": x_attribute,
            "y_attribute": y_attribute,
            "rhs_attribute": rhs_attribute,
        }) as capture:
            if config.auto_bins:
                bins = suggest_bin_count(len(table))
                n_bins_x = n_bins_y = bins
            else:
                n_bins_x, n_bins_y = config.n_bins_x, config.n_bins_y
            binner = bin_table(
                table, x_attribute, y_attribute, rhs_attribute,
                n_bins_x=n_bins_x,
                n_bins_y=n_bins_y,
                strategy=config.binning_strategy,
            )
            clusterer = GridClusterer(config.clusterer)

            results = {}
            for rhs_value in binner.rhs_encoding.values:
                rhs_code = binner.rhs_encoding.code_of(rhs_value)
                if not binner.bin_array.count_grid(rhs_code).any():
                    logger.debug("skipping %s = %r: no occurrences",
                                 rhs_attribute, rhs_value)
                    continue
                verifier = Verifier(
                    table=verification_table or table,
                    rhs_attribute=rhs_attribute,
                    target_value=rhs_value,
                    sample_size=config.sample_size,
                    repeats=config.sample_repeats,
                    seed=config.seed,
                )
                optimizer = HeuristicOptimizer(
                    clusterer=clusterer,
                    verifier=verifier,
                    weights=config.mdl_weights,
                    config=config.optimizer,
                )
                with trace("fit_value", rhs_value=rhs_value):
                    search = optimizer.search(
                        binner.bin_array, rhs_code
                    )
                results[rhs_value] = ARCSResult(
                    segmentation=search.segmentation,
                    best_trial=search.best,
                    history=search.history,
                    binner=binner,
                    outcome=search.outcome,
                    rhs_code=rhs_code,
                    clusterer=clusterer,
                    stopped_by=search.stopped_by,
                )
        self.last_run_report = capture.report
        return results
