"""Cluster hull-merging: recovering whole rectangles from jagged covers.

With noisy boundaries (perturbed data, bin edges not aligned with the true
region edges) the greedy BitOp cover tends to produce one large rectangle
plus thin slivers along the ragged sides of what is really a single
region.  The paper consistently reports *exactly* the generating
rectangles ("in every experimental run ... ARCS always produced three
clustered association rules"), which implies its smoothing/clustering
combination reassembles such fragments; Section 5 likewise floats "more
advanced filters ... for purposes of detecting edges and corners of
clusters".

This module implements that reassembly as an explicit post-pass: two
clusters are merged into their bounding hull when the hull is almost
entirely made of set cells in the (smoothed) grid.  The cover-fraction
guard keeps genuinely separate regions apart — merging only happens when
the space "between" the fragments is itself rule-dense.  The pass repeats
greedily, always taking the best-covered merge first, until no admissible
pair remains.
"""

from __future__ import annotations

import logging

from typing import Sequence

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect

logger = logging.getLogger(__name__)


def hull_cover_fraction(grid: RuleGrid, rect: GridRect) -> float:
    """Fraction of the rectangle's cells that are set in the grid."""
    block = grid.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1]
    return float(block.sum()) / float(rect.area)


def merge_clusters(clusters: Sequence[GridRect], grid: RuleGrid,
                   cover_fraction: float = 0.8) -> list[GridRect]:
    """Greedily merge cluster pairs whose bounding hull is well covered.

    Parameters
    ----------
    clusters:
        The rectangles to consolidate (typically BitOp's greedy cover).
    grid:
        The grid the cover was computed on (smoothed, if smoothing ran);
        hull coverage is measured against its set cells.
    cover_fraction:
        A merge is admissible when at least this fraction of the hull's
        cells are set.  1.0 only merges hulls that are completely set
        (lossless); lower values tolerate ragged boundaries.

    Returns the consolidated rectangle list.  The result never covers a
    completely unset row or column band at its border: hulls are trimmed
    back to the bounding box of the set cells they contain, so a merge
    cannot stretch a cluster into empty space.
    """
    if not 0.0 < cover_fraction <= 1.0:
        raise ValueError("cover_fraction must be in (0, 1]")
    merged = [_trim_to_content(grid, rect) for rect in clusters]
    merged = [rect for rect in merged if rect is not None]
    while len(merged) > 1:
        best_pair: tuple[int, int] | None = None
        best_hull: GridRect | None = None
        best_cover = cover_fraction
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                hull = merged[i].union_bounding(merged[j])
                cover = hull_cover_fraction(grid, hull)
                if cover >= best_cover:
                    better = (
                        best_hull is None
                        or cover > best_cover
                        or hull.area > best_hull.area
                    )
                    if better:
                        best_pair, best_hull = (i, j), hull
                        best_cover = cover
        if best_pair is None or best_hull is None:
            break
        i, j = best_pair
        trimmed = _trim_to_content(grid, best_hull)
        survivors = [
            rect for k, rect in enumerate(merged) if k not in (i, j)
        ]
        if trimmed is not None:
            survivors.append(trimmed)
        merged = survivors
    if len(merged) != len(clusters):
        logger.debug(
            "hull-merged %d clusters into %d (cover_fraction=%g)",
            len(clusters), len(merged), cover_fraction,
        )
    return merged


def _trim_to_content(grid: RuleGrid,
                     rect: GridRect) -> GridRect | None:
    """Shrink a rectangle to the bounding box of its set cells.

    Returns ``None`` when the rectangle contains no set cells at all.
    """
    block = grid.cells[rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1]
    if not block.any():
        return None
    rows = block.any(axis=1)
    cols = block.any(axis=0)
    first_row = int(rows.argmax())
    last_row = len(rows) - 1 - int(rows[::-1].argmax())
    first_col = int(cols.argmax())
    last_col = len(cols) - 1 - int(cols[::-1].argmax())
    return GridRect(
        rect.x_lo + first_row, rect.x_lo + last_row,
        rect.y_lo + first_col, rect.y_lo + last_col,
    )
