"""Sampling utilities for the ARCS verifier (paper Section 3.6).

The verifier estimates a segmentation's error on a *sample* of the source
database rather than a full pass.  To tighten the estimate the paper uses
"repeated k out of n sampling": draw several independent samples of k rows
and average the per-sample error rates.  These helpers produce the index
sets; the verifier owns the error computation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def repeat_rng(seed: int, repeat: int) -> np.random.Generator:
    """A deterministic generator for one repeat of a seeded experiment.

    Seeding each repeat independently (rather than drawing repeats from
    one sequential stream) makes repeat ``r``'s sample a pure function of
    ``(seed, r)`` — so a batch of repeats can be partitioned over worker
    processes in any way and still reproduce the serial draw exactly.
    """
    if repeat < 0:
        raise ValueError("repeat index must be non-negative")
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(repeat,))
    )


def sample_indices(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Return ``k`` distinct row indices drawn uniformly from ``range(n)``."""
    if not 0 < k <= n:
        raise ValueError(f"need 0 < k <= n, got k={k}, n={n}")
    return rng.choice(n, size=k, replace=False)


def repeated_k_of_n(n: int, k: int, repeats: int,
                    rng: np.random.Generator) -> Iterator[np.ndarray]:
    """Yield ``repeats`` independent k-of-n samples (paper Section 3.6).

    Each yielded array holds ``k`` distinct indices; successive samples are
    independent draws, so the same row may appear in several samples.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(repeats):
        yield sample_indices(n, k, rng)


def mean_and_stderr(values) -> tuple[float, float]:
    """Return the mean and standard error of a sequence of sample statistics.

    Used to report the verifier's error estimate together with its
    sampling uncertainty.  The standard error of a single value is zero.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("no values to aggregate")
    mean = float(array.mean())
    if array.size == 1:
        return mean, 0.0
    stderr = float(array.std(ddof=1) / np.sqrt(array.size))
    return mean, stderr
