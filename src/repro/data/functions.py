"""The ten classification functions of Agrawal, Imielinski and Swami.

The paper's evaluation (Section 4.1) generates synthetic tuples with the
attribute schema and classification functions defined in "Database Mining:
A Performance Perspective" (IEEE TKDE 5(6), 1993) — reference [2] of the
paper.  Function 2 is the one used in every reported experiment (paper
Figure 8):

* ``group = A`` iff
  ``(age < 40      and  50K <= salary <= 100K)`` or
  ``(40 <= age < 60 and  75K <= salary <= 125K)`` or
  ``(age >= 60     and  25K <= salary <=  75K)``

All ten functions are implemented so the generator substrate is complete;
each takes a :class:`~repro.data.schema.Table` carrying the demographic
attributes and returns a boolean array that is true where the tuple belongs
to "Group A".

For the functions whose Group-A region is a finite union of axis-aligned
rectangles in a two-attribute space (functions 1–3), :func:`true_regions`
exposes those rectangles so the exact (area-based) accuracy analysis of
paper Figure 9 can be computed without sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Table

GROUP_A = "A"
GROUP_OTHER = "other"

#: Identifiers accepted by :func:`classification_function`.
FUNCTION_IDS = tuple(range(1, 11))


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle in a two-attribute value space.

    Bounds follow the paper's convention of closed lower and open upper
    limits on ``age``-like axes, except where the original function text
    uses closed intervals (salary bands); membership is what
    :meth:`contains` says, and the stored bounds are only descriptive.
    """

    x_attribute: str
    x_lo: float
    x_hi: float
    y_attribute: str
    y_lo: float
    y_hi: float
    x_closed_hi: bool = False
    y_closed_hi: bool = True

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised membership test for points ``(x, y)``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        in_x = (x >= self.x_lo) & (
            (x <= self.x_hi) if self.x_closed_hi else (x < self.x_hi)
        )
        in_y = (y >= self.y_lo) & (
            (y <= self.y_hi) if self.y_closed_hi else (y < self.y_hi)
        )
        return in_x & in_y

    @property
    def area(self) -> float:
        return (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)


def _age_bands(age: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three age bands every disjunctive function shares."""
    young = age < 40
    middle = (age >= 40) & (age < 60)
    old = age >= 60
    return young, middle, old


def _between(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return (values >= lo) & (values <= hi)


def _function_1(t: Table) -> np.ndarray:
    age = t.column("age")
    return (age < 40) | (age >= 60)


def _function_2(t: Table) -> np.ndarray:
    age = t.column("age")
    salary = t.column("salary")
    young, middle, old = _age_bands(age)
    return (
        (young & _between(salary, 50_000, 100_000))
        | (middle & _between(salary, 75_000, 125_000))
        | (old & _between(salary, 25_000, 75_000))
    )


def _function_3(t: Table) -> np.ndarray:
    age = t.column("age")
    elevel = t.column("elevel")
    young, middle, old = _age_bands(age)
    return (
        (young & _between(elevel, 0, 1))
        | (middle & _between(elevel, 1, 3))
        | (old & _between(elevel, 2, 4))
    )


def _function_4(t: Table) -> np.ndarray:
    age = t.column("age")
    salary = t.column("salary")
    elevel = t.column("elevel")
    young, middle, old = _age_bands(age)
    young_ok = np.where(
        _between(elevel, 0, 1),
        _between(salary, 25_000, 75_000),
        _between(salary, 50_000, 100_000),
    )
    middle_ok = np.where(
        _between(elevel, 1, 3),
        _between(salary, 50_000, 100_000),
        _between(salary, 75_000, 125_000),
    )
    old_ok = np.where(
        _between(elevel, 2, 4),
        _between(salary, 50_000, 100_000),
        _between(salary, 25_000, 75_000),
    )
    return (young & young_ok) | (middle & middle_ok) | (old & old_ok)


def _function_5(t: Table) -> np.ndarray:
    age = t.column("age")
    salary = t.column("salary")
    loan = t.column("loan")
    young, middle, old = _age_bands(age)
    young_ok = np.where(
        _between(salary, 50_000, 100_000),
        _between(loan, 100_000, 300_000),
        _between(loan, 200_000, 400_000),
    )
    middle_ok = np.where(
        _between(salary, 75_000, 125_000),
        _between(loan, 200_000, 400_000),
        _between(loan, 300_000, 500_000),
    )
    old_ok = np.where(
        _between(salary, 25_000, 75_000),
        _between(loan, 300_000, 500_000),
        _between(loan, 100_000, 300_000),
    )
    return (young & young_ok) | (middle & middle_ok) | (old & old_ok)


def _function_6(t: Table) -> np.ndarray:
    age = t.column("age")
    total = t.column("salary") + t.column("commission")
    young, middle, old = _age_bands(age)
    return (
        (young & _between(total, 50_000, 100_000))
        | (middle & _between(total, 75_000, 125_000))
        | (old & _between(total, 25_000, 75_000))
    )


def _disposable_7(t: Table) -> np.ndarray:
    total = t.column("salary") + t.column("commission")
    return 0.67 * total - 0.2 * t.column("loan") - 20_000


def _function_7(t: Table) -> np.ndarray:
    return _disposable_7(t) > 0


def _function_8(t: Table) -> np.ndarray:
    total = t.column("salary") + t.column("commission")
    disposable = 0.67 * total - 5_000 * t.column("elevel") - 20_000
    return disposable > 0


def _function_9(t: Table) -> np.ndarray:
    total = t.column("salary") + t.column("commission")
    disposable = (
        0.67 * total
        - 5_000 * t.column("elevel")
        - 0.2 * t.column("loan")
        - 10_000
    )
    return disposable > 0


def _function_10(t: Table) -> np.ndarray:
    hyears = t.column("hyears")
    equity = np.where(
        hyears >= 20, 0.1 * t.column("hvalue") * (hyears - 20), 0.0
    )
    total = t.column("salary") + t.column("commission")
    disposable = 0.67 * total - 5_000 * t.column("elevel") + 0.2 * equity - 10_000
    return disposable > 0


_FUNCTIONS = {
    1: _function_1,
    2: _function_2,
    3: _function_3,
    4: _function_4,
    5: _function_5,
    6: _function_6,
    7: _function_7,
    8: _function_8,
    9: _function_9,
    10: _function_10,
}


def classification_function(function_id: int):
    """Return the labelling predicate for ``function_id`` (1–10).

    The returned callable maps a :class:`Table` to a boolean array that is
    true where the tuple belongs to Group A.
    """
    try:
        return _FUNCTIONS[function_id]
    except KeyError:
        raise ValueError(
            f"unknown classification function {function_id}; "
            f"valid ids are {FUNCTION_IDS}"
        ) from None


def label_table(table: Table, function_id: int,
                group_a: str = GROUP_A,
                group_other: str = GROUP_OTHER) -> np.ndarray:
    """Label every row of ``table`` with ``group_a`` or ``group_other``.

    Returns an object array of group labels suitable for a categorical
    column.
    """
    in_group_a = classification_function(function_id)(table)
    labels = np.empty(len(table), dtype=object)
    labels[in_group_a] = group_a
    labels[~in_group_a] = group_other
    return labels


#: Exact Group-A regions for the functions whose region is a finite union of
#: axis-aligned rectangles over two attributes.  Paper Figure 8 draws these
#: for Function 2.
_REGIONS: dict[int, tuple[Region, ...]] = {
    1: (
        Region("age", 20, 40, "salary", 20_000, 150_000, y_closed_hi=True),
        Region("age", 60, 80, "salary", 20_000, 150_000,
               x_closed_hi=True, y_closed_hi=True),
    ),
    2: (
        Region("age", 20, 40, "salary", 50_000, 100_000),
        Region("age", 40, 60, "salary", 75_000, 125_000),
        Region("age", 60, 80, "salary", 25_000, 75_000, x_closed_hi=True),
    ),
    3: (
        Region("age", 20, 40, "elevel", 0, 1),
        Region("age", 40, 60, "elevel", 1, 3),
        Region("age", 60, 80, "elevel", 2, 4, x_closed_hi=True),
    ),
}


def true_regions(function_id: int) -> tuple[Region, ...]:
    """Return the exact Group-A rectangles for ``function_id``.

    Only defined for functions 1–3, whose Group-A set is rectangular; the
    exact-accuracy analysis (paper Figure 9) uses these.  Raises
    ``ValueError`` for the other functions.
    """
    try:
        return _REGIONS[function_id]
    except KeyError:
        raise ValueError(
            f"function {function_id} has no rectangular region "
            f"decomposition; exact regions exist for {sorted(_REGIONS)}"
        ) from None
