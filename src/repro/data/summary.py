"""Dataset profiling: the quick look before choosing LHS attributes.

The ARCS workflow starts with a human choosing two LHS attributes and a
criterion (paper Section 1), which presumes a summary of what the table
holds.  :func:`profile_table` computes per-attribute statistics —
range, mean, quartiles and a coarse text histogram for quantitative
columns; cardinality and top values for categorical ones — and
:func:`format_profile` renders them for the terminal (the CLI's
``arcs describe`` command).

The same module owns the *bin-occupancy* statistics of a populated
BinArray (:func:`profile_bin_array`), so the binner's occupancy gauges,
the CLI's ``remine`` output and any ad-hoc inspection all share one
implementation — and the serialisable :class:`ReferenceProfile` derived
from the same grid (:func:`reference_profile`), which persistence embeds
in the model artefact and the serving monitor scores live traffic
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Table

#: Characters for the eight-level text histogram bars.
_BARS = " .:-=+*#"


@dataclass(frozen=True)
class QuantitativeProfile:
    """Summary statistics of one quantitative column."""

    name: str
    minimum: float
    maximum: float
    mean: float
    quartiles: tuple[float, float, float]
    histogram: str


@dataclass(frozen=True)
class CategoricalProfile:
    """Summary statistics of one categorical column."""

    name: str
    cardinality: int
    top_values: tuple[tuple[object, int], ...]


def _text_histogram(values: np.ndarray, bins: int = 24) -> str:
    counts, _ = np.histogram(values, bins=bins)
    peak = counts.max() if counts.size else 0
    if peak == 0:
        return " " * bins
    levels = np.ceil(counts / peak * (len(_BARS) - 1)).astype(int)
    return "".join(_BARS[level] for level in levels)


def profile_table(table: Table,
                  top_k: int = 5) -> list:
    """Profile every column; returns a list of per-attribute profiles
    in schema order."""
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    profiles = []
    for name, spec in table.schema.items():
        column = table.column(name)
        if spec.is_quantitative:
            values = column.astype(np.float64)
            if len(values) == 0:
                raise ValueError(f"cannot profile empty column {name!r}")
            q1, q2, q3 = np.quantile(values, [0.25, 0.5, 0.75])
            profiles.append(
                QuantitativeProfile(
                    name=name,
                    minimum=float(values.min()),
                    maximum=float(values.max()),
                    mean=float(values.mean()),
                    quartiles=(float(q1), float(q2), float(q3)),
                    histogram=_text_histogram(values),
                )
            )
        else:
            values, counts = np.unique(
                column.astype(str), return_counts=True
            )
            order = np.argsort(-counts)
            top = tuple(
                (values[i], int(counts[i])) for i in order[:top_k]
            )
            profiles.append(
                CategoricalProfile(
                    name=name,
                    cardinality=len(values),
                    top_values=top,
                )
            )
    return profiles


@dataclass(frozen=True)
class OccupancyProfile:
    """Bin-occupancy statistics of one populated BinArray."""

    grid_cells: int
    occupied_cells: int
    n_tuples: int
    max_cell_count: int
    mean_occupied_count: float

    @property
    def occupancy_fraction(self) -> float:
        if self.grid_cells == 0:
            return 0.0
        return self.occupied_cells / self.grid_cells


def profile_bin_array(bin_array) -> OccupancyProfile:
    """Occupancy statistics of any BinArray-shaped object (``totals``
    grid plus ``n_total``)."""
    totals = np.asarray(bin_array.totals)
    occupied = int(np.count_nonzero(totals))
    return OccupancyProfile(
        grid_cells=int(totals.size),
        occupied_cells=occupied,
        n_tuples=int(bin_array.n_total),
        max_cell_count=int(totals.max()) if totals.size else 0,
        mean_occupied_count=(
            float(totals.sum() / occupied) if occupied else 0.0
        ),
    )


@dataclass(frozen=True)
class ReferenceProfile:
    """Training occupancy distilled for drift scoring.

    The joint per-cell tuple counts of a populated BinArray plus the
    exact bin edges that produced them — everything the serving monitor
    needs to re-bin live traffic into the *training* grid and compare
    distributions, and small enough to embed in the model artefact.
    Marginals are derived, not stored.
    """

    x_attribute: str
    y_attribute: str
    x_edges: np.ndarray
    y_edges: np.ndarray
    totals: np.ndarray
    n_total: int

    def __post_init__(self):
        x_edges = np.asarray(self.x_edges, dtype=np.float64)
        y_edges = np.asarray(self.y_edges, dtype=np.float64)
        totals = np.asarray(self.totals, dtype=np.int64)
        if x_edges.ndim != 1 or x_edges.size < 2:
            raise ValueError("x_edges must be a 1-D array of >= 2 edges")
        if y_edges.ndim != 1 or y_edges.size < 2:
            raise ValueError("y_edges must be a 1-D array of >= 2 edges")
        expected_shape = (x_edges.size - 1, y_edges.size - 1)
        if totals.shape != expected_shape:
            raise ValueError(
                f"totals shape {totals.shape} does not match the edge "
                f"grid {expected_shape}"
            )
        if int(self.n_total) < 0:
            raise ValueError("n_total must be non-negative")
        for array in (x_edges, y_edges, totals):
            array.flags.writeable = False
        object.__setattr__(self, "x_edges", x_edges)
        object.__setattr__(self, "y_edges", y_edges)
        object.__setattr__(self, "totals", totals)
        object.__setattr__(self, "n_total", int(self.n_total))

    @property
    def n_x(self) -> int:
        return self.totals.shape[0]

    @property
    def n_y(self) -> int:
        return self.totals.shape[1]

    @property
    def x_counts(self) -> np.ndarray:
        """Marginal tuple counts per x bin."""
        return self.totals.sum(axis=1)

    @property
    def y_counts(self) -> np.ndarray:
        """Marginal tuple counts per y bin."""
        return self.totals.sum(axis=0)

    def occupancy(self) -> OccupancyProfile:
        return profile_bin_array(self)

    def to_dict(self) -> dict:
        """JSON-serialisable form (embedded in model artefacts)."""
        return {
            "x_attribute": self.x_attribute,
            "y_attribute": self.y_attribute,
            "x_edges": [float(edge) for edge in self.x_edges],
            "y_edges": [float(edge) for edge in self.y_edges],
            "totals": [
                [int(count) for count in row] for row in self.totals
            ],
            "n_total": self.n_total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReferenceProfile":
        """Inverse of :meth:`to_dict`; raises :class:`ValueError` on a
        malformed payload."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"reference profile must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            return cls(
                x_attribute=str(payload["x_attribute"]),
                y_attribute=str(payload["y_attribute"]),
                x_edges=np.asarray(payload["x_edges"], dtype=np.float64),
                y_edges=np.asarray(payload["y_edges"], dtype=np.float64),
                totals=np.asarray(payload["totals"], dtype=np.int64),
                n_total=int(payload["n_total"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed reference profile: {exc}"
            ) from exc


def reference_profile(bin_array) -> ReferenceProfile:
    """Distil a populated BinArray into a :class:`ReferenceProfile`."""
    return ReferenceProfile(
        x_attribute=bin_array.x_layout.attribute,
        y_attribute=bin_array.y_layout.attribute,
        x_edges=np.array(bin_array.x_layout.edges, dtype=np.float64),
        y_edges=np.array(bin_array.y_layout.edges, dtype=np.float64),
        totals=np.array(bin_array.totals, dtype=np.int64),
        n_total=int(bin_array.n_total),
    )


def format_occupancy(profile: OccupancyProfile) -> str:
    """One-line terminal rendering of an :class:`OccupancyProfile`."""
    return (
        f"{profile.n_tuples:,} tuples over {profile.grid_cells:,} cells: "
        f"{profile.occupied_cells:,} occupied "
        f"({profile.occupancy_fraction:.1%}), "
        f"mean {profile.mean_occupied_count:.1f} / "
        f"max {profile.max_cell_count} per occupied cell"
    )


def format_profile(profiles: list, n_rows: int) -> str:
    """Render profiles as an aligned terminal report."""
    lines = [f"{n_rows:,} rows, {len(profiles)} attributes", ""]
    for profile in profiles:
        if isinstance(profile, QuantitativeProfile):
            q1, q2, q3 = profile.quartiles
            lines.append(
                f"{profile.name:>12}  [{profile.minimum:g}, "
                f"{profile.maximum:g}]  mean={profile.mean:g}  "
                f"quartiles={q1:g}/{q2:g}/{q3:g}"
            )
            lines.append(f"{'':>12}  |{profile.histogram}|")
        else:
            rendered = ", ".join(
                f"{value} ({count})"
                for value, count in profile.top_values
            )
            lines.append(
                f"{profile.name:>12}  {profile.cardinality} distinct: "
                f"{rendered}"
            )
    return "\n".join(lines)
