"""Dataset profiling: the quick look before choosing LHS attributes.

The ARCS workflow starts with a human choosing two LHS attributes and a
criterion (paper Section 1), which presumes a summary of what the table
holds.  :func:`profile_table` computes per-attribute statistics —
range, mean, quartiles and a coarse text histogram for quantitative
columns; cardinality and top values for categorical ones — and
:func:`format_profile` renders them for the terminal (the CLI's
``arcs describe`` command).

The same module owns the *bin-occupancy* statistics of a populated
BinArray (:func:`profile_bin_array`), so the binner's occupancy gauges,
the CLI's ``remine`` output and any ad-hoc inspection all share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Table

#: Characters for the eight-level text histogram bars.
_BARS = " .:-=+*#"


@dataclass(frozen=True)
class QuantitativeProfile:
    """Summary statistics of one quantitative column."""

    name: str
    minimum: float
    maximum: float
    mean: float
    quartiles: tuple[float, float, float]
    histogram: str


@dataclass(frozen=True)
class CategoricalProfile:
    """Summary statistics of one categorical column."""

    name: str
    cardinality: int
    top_values: tuple[tuple[object, int], ...]


def _text_histogram(values: np.ndarray, bins: int = 24) -> str:
    counts, _ = np.histogram(values, bins=bins)
    peak = counts.max() if counts.size else 0
    if peak == 0:
        return " " * bins
    levels = np.ceil(counts / peak * (len(_BARS) - 1)).astype(int)
    return "".join(_BARS[level] for level in levels)


def profile_table(table: Table,
                  top_k: int = 5) -> list:
    """Profile every column; returns a list of per-attribute profiles
    in schema order."""
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    profiles = []
    for name, spec in table.schema.items():
        column = table.column(name)
        if spec.is_quantitative:
            values = column.astype(np.float64)
            if len(values) == 0:
                raise ValueError(f"cannot profile empty column {name!r}")
            q1, q2, q3 = np.quantile(values, [0.25, 0.5, 0.75])
            profiles.append(
                QuantitativeProfile(
                    name=name,
                    minimum=float(values.min()),
                    maximum=float(values.max()),
                    mean=float(values.mean()),
                    quartiles=(float(q1), float(q2), float(q3)),
                    histogram=_text_histogram(values),
                )
            )
        else:
            values, counts = np.unique(
                column.astype(str), return_counts=True
            )
            order = np.argsort(-counts)
            top = tuple(
                (values[i], int(counts[i])) for i in order[:top_k]
            )
            profiles.append(
                CategoricalProfile(
                    name=name,
                    cardinality=len(values),
                    top_values=top,
                )
            )
    return profiles


@dataclass(frozen=True)
class OccupancyProfile:
    """Bin-occupancy statistics of one populated BinArray."""

    grid_cells: int
    occupied_cells: int
    n_tuples: int
    max_cell_count: int
    mean_occupied_count: float

    @property
    def occupancy_fraction(self) -> float:
        if self.grid_cells == 0:
            return 0.0
        return self.occupied_cells / self.grid_cells


def profile_bin_array(bin_array) -> OccupancyProfile:
    """Occupancy statistics of any BinArray-shaped object (``totals``
    grid plus ``n_total``)."""
    totals = np.asarray(bin_array.totals)
    occupied = int(np.count_nonzero(totals))
    return OccupancyProfile(
        grid_cells=int(totals.size),
        occupied_cells=occupied,
        n_tuples=int(bin_array.n_total),
        max_cell_count=int(totals.max()) if totals.size else 0,
        mean_occupied_count=(
            float(totals.sum() / occupied) if occupied else 0.0
        ),
    )


def format_occupancy(profile: OccupancyProfile) -> str:
    """One-line terminal rendering of an :class:`OccupancyProfile`."""
    return (
        f"{profile.n_tuples:,} tuples over {profile.grid_cells:,} cells: "
        f"{profile.occupied_cells:,} occupied "
        f"({profile.occupancy_fraction:.1%}), "
        f"mean {profile.mean_occupied_count:.1f} / "
        f"max {profile.max_cell_count} per occupied cell"
    )


def format_profile(profiles: list, n_rows: int) -> str:
    """Render profiles as an aligned terminal report."""
    lines = [f"{n_rows:,} rows, {len(profiles)} attributes", ""]
    for profile in profiles:
        if isinstance(profile, QuantitativeProfile):
            q1, q2, q3 = profile.quartiles
            lines.append(
                f"{profile.name:>12}  [{profile.minimum:g}, "
                f"{profile.maximum:g}]  mean={profile.mean:g}  "
                f"quartiles={q1:g}/{q2:g}/{q3:g}"
            )
            lines.append(f"{'':>12}  |{profile.histogram}|")
        else:
            rendered = ", ".join(
                f"{value} ({count})"
                for value, count in profile.top_values
            )
            lines.append(
                f"{profile.name:>12}  {profile.cardinality} distinct: "
                f"{rendered}"
            )
    return "\n".join(lines)
