"""Noise models for the synthetic data (paper Sections 3.3 and 4.1).

Two distinct imperfections make the clustering problem hard, and the paper
names both:

* **Perturbation** models fuzzy boundaries between the function's disjuncts:
  after the group label is assigned, each labelled quantitative attribute is
  nudged by an additive amount drawn uniformly from
  ``[-p * width, +p * width]`` where ``width`` is the attribute's domain
  width and ``p`` the perturbation factor (paper: 5%).  Tuples near a region
  boundary can thus cross it while keeping the original label.

* **Outliers** are tuples "assigned to a given group label but [that] do not
  match any of the defining rules for that group" — we realise this by
  flipping the label of a uniformly chosen fraction ``U`` of tuples
  (paper: 10%).  A flipped tuple keeps its attribute values, so by
  construction it no longer satisfies its group's generating rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.schema import Table


def perturb_quantitative(table: Table, attributes: Sequence[str],
                         factor: float, rng: np.random.Generator) -> Table:
    """Return a copy of ``table`` with the named quantitative attributes
    perturbed additively by up to ``factor`` of their domain width.

    Perturbed values are clipped back into the attribute's declared (or
    observed) range so downstream binning never sees out-of-domain values.
    """
    if not 0.0 <= factor < 1.0:
        raise ValueError("perturbation factor must be in [0, 1)")
    result = table
    for name in attributes:
        spec = table.spec(name)
        if not spec.is_quantitative:
            raise ValueError(f"cannot perturb categorical attribute {name!r}")
        low, high = table.observed_range(name)
        width = high - low
        noise = rng.uniform(-factor * width, factor * width, size=len(table))
        perturbed = np.clip(table.column(name) + noise, low, high)
        result = result.with_column(spec, perturbed)
    return result


def inject_outliers(labels: np.ndarray, fraction: float,
                    rng: np.random.Generator,
                    groups: Sequence = ("A", "other")) -> np.ndarray:
    """Return a copy of ``labels`` with a ``fraction`` of entries flipped.

    For the two-group case each selected label becomes the other group; for
    more groups a uniformly random *different* group is chosen.  Selected
    indices are drawn without replacement, so the outlier fraction is exact
    up to rounding.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("outlier fraction must be in [0, 1)")
    groups = list(groups)
    if len(groups) < 2:
        raise ValueError("need at least two groups to create outliers")
    flipped = labels.copy()
    n_outliers = int(round(fraction * len(labels)))
    if n_outliers == 0:
        return flipped
    chosen = rng.choice(len(labels), size=n_outliers, replace=False)
    for index in chosen:
        current = flipped[index]
        alternatives = [group for group in groups if group != current]
        flipped[index] = alternatives[int(rng.integers(len(alternatives)))]
    return flipped
