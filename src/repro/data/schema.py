"""Attribute and table model used throughout the ARCS reproduction.

The paper operates on *tuple-oriented* (record) data rather than market
baskets: a fixed schema of attributes, each either *quantitative* (ordered,
continuous or integer-valued, e.g. ``age``, ``salary``) or *categorical*
(finite unordered domain, e.g. ``zipcode``, ``group``).  This module defines

* :class:`AttributeSpec` — the declared name, kind and domain of a column,
* :class:`Table` — an immutable-by-convention column-major table backed by
  NumPy arrays, with the handful of operations the rest of the system needs
  (column access, row subsetting, sampling, chunked streaming, CSV round
  trips via :mod:`repro.data.io`).

A :class:`Table` deliberately stays small: it is a substrate, not a
dataframe library.  Columns are NumPy arrays; quantitative columns are
``float64`` and categorical columns are ``object`` arrays of hashable
values.  All mutating-style operations return new tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

QUANTITATIVE = "quantitative"
CATEGORICAL = "categorical"

_VALID_KINDS = (QUANTITATIVE, CATEGORICAL)


class SchemaError(ValueError):
    """Raised when a table or attribute specification is inconsistent."""


@dataclass(frozen=True)
class AttributeSpec:
    """Declared metadata for a single table column.

    Parameters
    ----------
    name:
        Column name, unique within a table.
    kind:
        Either ``"quantitative"`` or ``"categorical"``.
    domain:
        For quantitative attributes, an optional ``(low, high)`` pair giving
        the closed value range the attribute is drawn from.  The binner uses
        this to lay out equi-width bins without a data pass; when absent the
        observed min/max are used instead.  For categorical attributes, an
        optional tuple of admissible values in canonical order.
    """

    name: str
    kind: str
    domain: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise SchemaError(
                f"attribute {self.name!r} has kind {self.kind!r}; "
                f"expected one of {_VALID_KINDS}"
            )
        if self.domain is not None:
            object.__setattr__(self, "domain", tuple(self.domain))
            if self.is_quantitative:
                if len(self.domain) != 2:
                    raise SchemaError(
                        f"quantitative attribute {self.name!r} needs a "
                        f"(low, high) domain, got {self.domain!r}"
                    )
                low, high = self.domain
                if not (float(low) < float(high)):
                    raise SchemaError(
                        f"attribute {self.name!r} has empty domain "
                        f"[{low}, {high}]"
                    )
            elif len(self.domain) == 0:
                raise SchemaError(
                    f"categorical attribute {self.name!r} has an empty domain"
                )

    @property
    def is_quantitative(self) -> bool:
        return self.kind == QUANTITATIVE

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    def quantitative_range(self) -> tuple[float, float] | None:
        """Return the declared ``(low, high)`` range, or ``None``."""
        if self.is_quantitative and self.domain is not None:
            low, high = self.domain
            return float(low), float(high)
        return None


def quantitative(name: str, low: float | None = None,
                 high: float | None = None) -> AttributeSpec:
    """Convenience constructor for a quantitative :class:`AttributeSpec`."""
    domain = None if low is None or high is None else (low, high)
    return AttributeSpec(name, QUANTITATIVE, domain)


def categorical(name: str, values: Sequence | None = None) -> AttributeSpec:
    """Convenience constructor for a categorical :class:`AttributeSpec`."""
    domain = None if values is None else tuple(values)
    return AttributeSpec(name, CATEGORICAL, domain)


def _as_column(spec: AttributeSpec, values: Sequence) -> np.ndarray:
    """Coerce raw values into the canonical array dtype for ``spec``."""
    if spec.is_quantitative:
        column = np.asarray(values, dtype=np.float64)
    else:
        column = np.empty(len(values), dtype=object)
        column[:] = list(values)
    return column


@dataclass
class Table:
    """A column-major table with a declared schema.

    Construct with :meth:`from_columns` or :meth:`from_rows`; the bare
    constructor assumes already-coerced arrays of equal length.

    Attributes
    ----------
    schema:
        Ordered mapping of attribute name to :class:`AttributeSpec`.
    columns:
        Mapping of attribute name to a NumPy array of values.
    """

    schema: dict[str, AttributeSpec]
    columns: dict[str, np.ndarray]
    _n_rows: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if set(self.schema) != set(self.columns):
            missing = set(self.schema) ^ set(self.columns)
            raise SchemaError(f"schema/columns mismatch on {sorted(missing)}")
        lengths = {name: len(col) for name, col in self.columns.items()}
        unique_lengths = set(lengths.values())
        if len(unique_lengths) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self._n_rows = unique_lengths.pop() if unique_lengths else 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, specs: Sequence[AttributeSpec],
                     columns: Mapping[str, Sequence]) -> "Table":
        """Build a table from attribute specs and per-column value sequences.

        Values are coerced to the canonical dtype for each attribute kind
        (``float64`` for quantitative, ``object`` for categorical).
        """
        schema = {spec.name: spec for spec in specs}
        if len(schema) != len(specs):
            names = [spec.name for spec in specs]
            raise SchemaError(f"duplicate attribute names in {names}")
        coerced = {}
        for name, spec in schema.items():
            if name not in columns:
                raise SchemaError(f"missing column {name!r}")
            coerced[name] = _as_column(spec, columns[name])
        return cls(schema=schema, columns=coerced)

    @classmethod
    def from_rows(cls, specs: Sequence[AttributeSpec],
                  rows: Iterable[Mapping]) -> "Table":
        """Build a table from an iterable of per-row mappings."""
        names = [spec.name for spec in specs]
        buffers: dict[str, list] = {name: [] for name in names}
        for row in rows:
            for name in names:
                buffers[name].append(row[name])
        return cls.from_columns(specs, buffers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def attribute_names(self) -> list[str]:
        return list(self.schema)

    def spec(self, name: str) -> AttributeSpec:
        """Return the :class:`AttributeSpec` for ``name``."""
        try:
            return self.schema[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; table has "
                f"{self.attribute_names}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """Return the backing array for ``name`` (do not mutate it)."""
        self.spec(name)
        return self.columns[name]

    def observed_range(self, name: str) -> tuple[float, float]:
        """Return the (declared or observed) value range of a quantitative
        attribute.

        Prefers the declared domain so that bin layouts are stable across
        data sets drawn from the same schema; falls back to the observed
        min/max of the column.
        """
        spec = self.spec(name)
        if not spec.is_quantitative:
            raise SchemaError(f"attribute {name!r} is not quantitative")
        declared = spec.quantitative_range()
        if declared is not None:
            return declared
        column = self.column(name)
        if len(column) == 0:
            raise SchemaError(f"cannot infer range of empty column {name!r}")
        return float(column.min()), float(column.max())

    def categorical_values(self, name: str) -> tuple:
        """Return the ordered distinct values of a categorical attribute.

        Uses the declared domain when present, otherwise the sorted
        distinct observed values.
        """
        spec = self.spec(name)
        if not spec.is_categorical:
            raise SchemaError(f"attribute {name!r} is not categorical")
        if spec.domain is not None:
            return spec.domain
        observed = set(self.column(name).tolist())
        return tuple(sorted(observed, key=repr))

    # ------------------------------------------------------------------
    # Row operations (each returns a new Table)
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Return a new table with the rows at ``indices`` (with repeats)."""
        index_array = np.asarray(indices, dtype=np.intp)
        columns = {name: col[index_array] for name, col in self.columns.items()}
        return Table(schema=dict(self.schema), columns=columns)

    def where(self, mask: np.ndarray) -> "Table":
        """Return a new table with the rows where boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise SchemaError(
                f"mask shape {mask.shape} does not match {self._n_rows} rows"
            )
        columns = {name: col[mask] for name, col in self.columns.items()}
        return Table(schema=dict(self.schema), columns=columns)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sample(self, k: int, rng: np.random.Generator) -> "Table":
        """Return ``k`` rows sampled uniformly without replacement."""
        if k > self._n_rows:
            raise SchemaError(
                f"cannot sample {k} rows from a table of {self._n_rows}"
            )
        return self.take(rng.choice(self._n_rows, size=k, replace=False))

    def with_column(self, spec: AttributeSpec, values: Sequence) -> "Table":
        """Return a new table with column ``spec.name`` added or replaced."""
        column = _as_column(spec, values)
        if len(column) != self._n_rows:
            raise SchemaError(
                f"new column {spec.name!r} has {len(column)} values for a "
                f"table of {self._n_rows} rows"
            )
        schema = dict(self.schema)
        schema[spec.name] = spec
        columns = dict(self.columns)
        columns[spec.name] = column
        return Table(schema=schema, columns=columns)

    def select(self, names: Sequence[str]) -> "Table":
        """Return a new table with only the named columns, in that order."""
        schema = {name: self.spec(name) for name in names}
        columns = {name: self.columns[name] for name in names}
        return Table(schema=schema, columns=columns)

    def concat(self, other: "Table") -> "Table":
        """Return the row-wise concatenation of two same-schema tables."""
        if list(self.schema) != list(other.schema):
            raise SchemaError("cannot concat tables with different schemas")
        columns = {
            name: np.concatenate([self.columns[name], other.columns[name]])
            for name in self.schema
        }
        return Table(schema=dict(self.schema), columns=columns)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def iter_chunks(self, chunk_rows: int) -> Iterator["Table"]:
        """Yield consecutive row slices of at most ``chunk_rows`` rows.

        The ARCS binner consumes chunks so that the full table never needs
        to be materialised by downstream code paths; this iterator is the
        in-memory analogue of the paper's streaming input.
        """
        if chunk_rows <= 0:
            raise SchemaError("chunk_rows must be positive")
        for start in range(0, self._n_rows, chunk_rows):
            stop = min(start + chunk_rows, self._n_rows)
            columns = {
                name: col[start:stop] for name, col in self.columns.items()
            }
            yield Table(schema=dict(self.schema), columns=columns)

    def iter_rows(self) -> Iterator[dict]:
        """Yield rows as dicts (slow; for tests and small tables only)."""
        names = self.attribute_names
        arrays = [self.columns[name] for name in names]
        for i in range(self._n_rows):
            yield {name: array[i] for name, array in zip(names, arrays)}
