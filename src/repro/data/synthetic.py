"""Synthetic demographic data generator (paper Section 4.1, Table 1).

The evaluation data follows Agrawal, Imielinski and Swami's generator: nine
demographic attributes with fixed distributions, a classification function
that assigns each tuple to "Group A" or "Group other", an optional
*perturbation factor* that fuzzes the attribute values after labelling (to
model fuzzy group boundaries), and an optional *outlier percentage* of
tuples whose label contradicts the generating rules.

Paper Table 1 instantiates this with Function 2, 20 thousand to 10 million
tuples, a 5% perturbation factor and 0% or 10% outliers, yielding roughly
40% Group A / 60% Group other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.functions import GROUP_A, GROUP_OTHER, label_table
from repro.data.perturbation import inject_outliers, perturb_quantitative
from repro.data.schema import AttributeSpec, Table, categorical, quantitative

#: Median house-price multiplier per zipcode, indexed by zipcode 0–8; the
#: original generator makes house value depend on zipcode this way.
_ZIPCODE_COUNT = 9

#: The demographic schema of Agrawal et al. (paper reference [2]).
DEMOGRAPHIC_ATTRIBUTES: tuple[AttributeSpec, ...] = (
    quantitative("salary", 20_000, 150_000),
    quantitative("commission", 0, 75_000),
    quantitative("age", 20, 80),
    quantitative("elevel", 0, 4),
    quantitative("car", 1, 20),
    categorical("zipcode", tuple(range(_ZIPCODE_COUNT))),
    quantitative("hvalue", 0, 13_500_000),
    quantitative("hyears", 1, 30),
    quantitative("loan", 0, 500_000),
)

#: The label column added by the generator.
GROUP_ATTRIBUTE = AttributeSpec(
    "group", "categorical", (GROUP_A, GROUP_OTHER)
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic data set (paper Table 1).

    Parameters
    ----------
    n_tuples:
        Number of rows to generate (paper: 20k – 10M).
    function_id:
        Which of the ten classification functions labels the data
        (paper: Function 2).
    perturbation:
        Fraction ``p`` of each labelled attribute's domain width used as the
        additive perturbation amplitude after labelling (paper: 5%).
    outlier_fraction:
        Fraction ``U`` of tuples whose group label is flipped so the tuple
        no longer obeys the generating rules (paper: 0% and 10%).
    perturbed_attributes:
        The quantitative attributes to perturb; defaults to the attributes
        Function 2 reads (``age`` and ``salary``).
    seed:
        Seed for the NumPy generator; every run is reproducible.
    """

    n_tuples: int
    function_id: int = 2
    perturbation: float = 0.05
    outlier_fraction: float = 0.0
    perturbed_attributes: tuple[str, ...] = ("age", "salary")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tuples <= 0:
            raise ValueError("n_tuples must be positive")
        if not 0.0 <= self.perturbation < 1.0:
            raise ValueError("perturbation must be in [0, 1)")
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")


def _base_attributes(n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Draw the nine demographic attributes per the original generator."""
    salary = rng.uniform(20_000, 150_000, size=n)
    # Commission is zero for high earners, otherwise uniform 10k–75k.
    commission = np.where(
        salary >= 75_000, 0.0, rng.uniform(10_000, 75_000, size=n)
    )
    age = rng.uniform(20, 80, size=n)
    elevel = rng.integers(0, 5, size=n).astype(np.float64)
    car = rng.integers(1, 21, size=n).astype(np.float64)
    zipcode = rng.integers(0, _ZIPCODE_COUNT, size=n)
    # House value depends on zipcode: uniform in 0.5k*100k .. 1.5k*100k for
    # multiplier k in 1..9 derived from the zipcode.
    k = (zipcode + 1).astype(np.float64)
    hvalue = rng.uniform(0.5 * k * 100_000, 1.5 * k * 100_000)
    hyears = rng.uniform(1, 30, size=n)
    loan = rng.uniform(0, 500_000, size=n)
    return {
        "salary": salary,
        "commission": commission,
        "age": age,
        "elevel": elevel,
        "car": car,
        "zipcode": [int(z) for z in zipcode],
        "hvalue": hvalue,
        "hyears": hyears,
        "loan": loan,
    }


def generate_synthetic(config: SyntheticConfig) -> Table:
    """Generate a labelled synthetic table per ``config``.

    The pipeline mirrors the paper's generator: draw attributes, assign the
    group label with the classification function, perturb the labelled
    attributes by the perturbation factor, then flip the labels of an
    ``outlier_fraction`` of tuples.  The returned table carries the nine
    demographic columns plus a categorical ``group`` column.
    """
    rng = np.random.default_rng(config.seed)
    columns = _base_attributes(config.n_tuples, rng)
    table = Table.from_columns(DEMOGRAPHIC_ATTRIBUTES, columns)

    labels = label_table(table, config.function_id)

    if config.perturbation > 0.0:
        table = perturb_quantitative(
            table, config.perturbed_attributes, config.perturbation, rng
        )

    if config.outlier_fraction > 0.0:
        labels = inject_outliers(
            labels, config.outlier_fraction, rng,
            groups=(GROUP_A, GROUP_OTHER),
        )

    return table.with_column(GROUP_ATTRIBUTE, labels)


def group_fractions(table: Table, group_column: str = "group") -> dict:
    """Return the fraction of rows per group label (paper Table 1 check)."""
    labels = table.column(group_column)
    values, counts = np.unique(labels.astype(str), return_counts=True)
    total = float(len(table))
    return {value: count / total for value, count in zip(values, counts)}
