"""Data substrate for the ARCS reproduction.

This subpackage provides everything the paper's evaluation needs on the data
side: the attribute/table model (:mod:`repro.data.schema`), the synthetic
data generator of Agrawal, Imielinski and Swami with all ten classification
functions (:mod:`repro.data.synthetic`, :mod:`repro.data.functions`), the
perturbation and outlier-injection models (:mod:`repro.data.perturbation`),
CSV and streaming I/O (:mod:`repro.data.io`) and the repeated k-out-of-n
sampling used by the ARCS verifier (:mod:`repro.data.sampling`).
"""

from repro.data.functions import (
    FUNCTION_IDS,
    classification_function,
    label_table,
    true_regions,
)
from repro.data.perturbation import inject_outliers, perturb_quantitative
from repro.data.sampling import repeated_k_of_n, sample_indices
from repro.data.schema import AttributeSpec, Table
from repro.data.synthetic import (
    DEMOGRAPHIC_ATTRIBUTES,
    SyntheticConfig,
    generate_synthetic,
)

__all__ = [
    "AttributeSpec",
    "Table",
    "SyntheticConfig",
    "generate_synthetic",
    "DEMOGRAPHIC_ATTRIBUTES",
    "FUNCTION_IDS",
    "classification_function",
    "label_table",
    "true_regions",
    "perturb_quantitative",
    "inject_outliers",
    "sample_indices",
    "repeated_k_of_n",
]
