"""CSV and streaming I/O for :class:`~repro.data.schema.Table`.

The paper's scale-up experiment (Figure 15) streams tuples from disk and
notes that ARCS needs "only a constant amount of main memory regardless of
the size of the database" because it keeps nothing but the BinArray and the
bitmap.  :func:`stream_csv` is the matching ingestion path here: it yields
fixed-size table chunks so the binner can consume arbitrarily large files
without materialising them.
"""

from __future__ import annotations

import csv
import logging
from pathlib import Path
from typing import Iterator, Sequence

from repro.data.schema import AttributeSpec, Table

logger = logging.getLogger(__name__)


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as a header-first CSV file."""
    names = table.attribute_names
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.column(name) for name in names]
        for i in range(len(table)):
            writer.writerow([column[i] for column in columns])


def _parse_row(specs: Sequence[AttributeSpec], row: Sequence[str],
               line_number: int) -> list:
    if len(row) != len(specs):
        raise ValueError(
            f"line {line_number}: expected {len(specs)} fields, "
            f"got {len(row)}"
        )
    values = []
    for spec, text in zip(specs, row):
        if spec.is_quantitative:
            try:
                values.append(float(text))
            except ValueError:
                raise ValueError(
                    f"line {line_number}: {text!r} is not a number for "
                    f"quantitative attribute {spec.name!r}"
                ) from None
        else:
            values.append(text)
    return values


def read_csv(path: str | Path, specs: Sequence[AttributeSpec]) -> Table:
    """Read a whole CSV file into a :class:`Table`.

    The header row must name exactly the attributes in ``specs`` (order in
    the file may differ from ``specs``).
    """
    chunks = list(stream_csv(path, specs, chunk_rows=65536))
    if not chunks:
        return Table.from_columns(specs, {spec.name: [] for spec in specs})
    table = chunks[0]
    for chunk in chunks[1:]:
        table = table.concat(chunk)
    logger.debug("read %d tuples from %s (%d chunks)",
                 len(table), path, len(chunks))
    return table


def stream_csv(path: str | Path, specs: Sequence[AttributeSpec],
               chunk_rows: int = 65536) -> Iterator[Table]:
    """Yield :class:`Table` chunks of at most ``chunk_rows`` rows from a CSV.

    This is the constant-memory ingestion path: only one chunk is resident
    at a time, matching the paper's streaming claim for the binner.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    spec_by_name = {spec.name: spec for spec in specs}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return
        unknown = [name for name in header if name not in spec_by_name]
        missing = [name for name in spec_by_name if name not in header]
        if unknown or missing:
            raise ValueError(
                f"CSV header mismatch: unknown={unknown}, missing={missing}"
            )
        ordered_specs = [spec_by_name[name] for name in header]
        buffer: list[list] = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            buffer.append(_parse_row(ordered_specs, row, line_number))
            if len(buffer) >= chunk_rows:
                yield _chunk_to_table(ordered_specs, buffer)
                buffer = []
        if buffer:
            yield _chunk_to_table(ordered_specs, buffer)


def _chunk_to_table(specs: Sequence[AttributeSpec],
                    rows: list[list]) -> Table:
    columns = {
        spec.name: [row[i] for row in rows] for i, spec in enumerate(specs)
    }
    return Table.from_columns(specs, columns)
