"""Plain-text tables for the benchmark harness.

Every benchmark prints the rows/series the paper's corresponding table or
figure reports; these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """An aligned monospace table with a header rule."""
    rendered = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered))
        if rendered else len(header)
        for i, header in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    parts = [line(list(headers)), line(["-" * width for width in widths])]
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series_table(x_name: str, x_values: Sequence,
                        series: dict[str, Sequence]) -> str:
    """A figure-style table: one x column plus one column per series."""
    headers = [x_name, *series]
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_trial_history(trials: Sequence) -> str:
    """The optimizer's search transcript as an aligned table.

    Accepts any sequence of :class:`~repro.core.optimizer.TrialRecord`;
    a fitted :class:`~repro.core.arcs.ARCSResult` exposes one as
    ``result.history``.
    """
    headers = ["min support", "min confidence", "clusters",
               "error rate", "MDL cost"]
    rows = [
        [f"{trial.min_support:.6f}", f"{trial.min_confidence:.4f}",
         trial.n_clusters, trial.report.error_rate,
         "inf" if trial.mdl_cost == float("inf")
         else f"{trial.mdl_cost:.3f}"]
        for trial in trials
    ]
    return format_table(headers, rows)
