"""Presentation layer: ASCII grids and experiment reports.

The paper's figures are grids of rule cells with cluster outlines
(Figures 1, 4, 5, 7).  :mod:`repro.viz.ascii` renders those as monospace
text, and :mod:`repro.viz.report` formats benchmark sweeps as the aligned
tables the benchmark harness prints.
"""

from repro.viz.ascii import render_grid, render_side_by_side
from repro.viz.report import (
    format_series_table,
    format_table,
    format_trial_history,
)

__all__ = [
    "render_grid",
    "render_side_by_side",
    "format_table",
    "format_series_table",
    "format_trial_history",
]
