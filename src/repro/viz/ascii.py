"""ASCII rendering of rule grids and clusters (paper Figures 1/4/5/7).

Orientation follows the paper's figures: the y attribute (salary) grows
upward, the x attribute (age) grows rightward.  Set cells print as ``#``,
clear cells as ``.``, and cells inside a cluster rectangle are marked
``o`` (or ``@`` when the cell is also set) so cluster outlines are visible
against the rule mass.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect

SET, CLEAR = "#", "."
IN_CLUSTER_SET, IN_CLUSTER_CLEAR = "@", "o"


def render_grid(grid: RuleGrid, clusters: Sequence[GridRect] = (),
                x_label: str = "x", y_label: str = "y") -> str:
    """Render a grid (and optional cluster rectangles) as ASCII art."""
    lines = [f"{y_label} ^"]
    for j in range(grid.n_y - 1, -1, -1):
        row_chars = []
        for i in range(grid.n_x):
            inside = any(rect.contains_cell(i, j) for rect in clusters)
            if grid.cells[i, j]:
                row_chars.append(IN_CLUSTER_SET if inside else SET)
            else:
                row_chars.append(IN_CLUSTER_CLEAR if inside else CLEAR)
        lines.append("  | " + "".join(row_chars))
    lines.append("  +-" + "-" * grid.n_x + f"> {x_label}")
    return "\n".join(lines)


def render_side_by_side(left: RuleGrid, right: RuleGrid,
                        left_title: str = "before",
                        right_title: str = "after",
                        gap: int = 4) -> str:
    """Two grids next to each other (the Figure 7 before/after layout)."""
    if left.n_y != right.n_y:
        raise ValueError("grids must have the same height to pair")
    spacer = " " * gap
    lines = [
        f"{left_title:<{left.n_x}}{spacer}{right_title}",
    ]
    for j in range(left.n_y - 1, -1, -1):
        left_row = "".join(
            SET if left.cells[i, j] else CLEAR for i in range(left.n_x)
        )
        right_row = "".join(
            SET if right.cells[i, j] else CLEAR for i in range(right.n_x)
        )
        lines.append(f"{left_row}{spacer}{right_row}")
    return "\n".join(lines)
