"""ASCII rendering of rule grids and clusters (paper Figures 1/4/5/7).

Orientation follows the paper's figures: the y attribute (salary) grows
upward, the x attribute (age) grows rightward.  Set cells print as ``#``,
clear cells as ``.``, and cells inside a cluster rectangle are marked
``o`` (or ``@`` when the cell is also set) so cluster outlines are visible
against the rule mass.

:func:`render_delta_grid` reuses the same orientation for occupancy
*drift*: given two count grids over the same bins it marks where the
observed distribution grew (``+``), shrank (``-``) or held steady
(``.``), which is how ``arcs drift`` shows *where* a PSI score comes
from.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect

SET, CLEAR = "#", "."
IN_CLUSTER_SET, IN_CLUSTER_CLEAR = "@", "o"
GREW, SHRANK, STEADY, EMPTY = "+", "-", ".", " "


def render_grid(grid: RuleGrid, clusters: Sequence[GridRect] = (),
                x_label: str = "x", y_label: str = "y") -> str:
    """Render a grid (and optional cluster rectangles) as ASCII art."""
    lines = [f"{y_label} ^"]
    for j in range(grid.n_y - 1, -1, -1):
        row_chars = []
        for i in range(grid.n_x):
            inside = any(rect.contains_cell(i, j) for rect in clusters)
            if grid.cells[i, j]:
                row_chars.append(IN_CLUSTER_SET if inside else SET)
            else:
                row_chars.append(IN_CLUSTER_CLEAR if inside else CLEAR)
        lines.append("  | " + "".join(row_chars))
    lines.append("  +-" + "-" * grid.n_x + f"> {x_label}")
    return "\n".join(lines)


def render_delta_grid(reference, observed, x_label: str = "x",
                      y_label: str = "y",
                      rel_tol: float = 0.25) -> str:
    """Render the per-cell shift between two occupancy grids.

    Both arguments are count grids of the same shape (``n_x`` by
    ``n_y``); each is normalised to a probability distribution and the
    cells are marked ``+`` where the observed share grew, ``-`` where it
    shrank, ``.`` where it held steady and blank where both sides are
    empty.  A shift counts as grown/shrunk when the share change
    exceeds ``rel_tol`` of the two shares' combined mass, so uniform
    noise on small counts does not light up the whole grid.
    """
    reference = np.asarray(reference, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if reference.ndim != 2 or observed.ndim != 2:
        raise ValueError("delta grids must be 2-D count arrays")
    if reference.shape != observed.shape:
        raise ValueError(
            f"grid shapes differ: {reference.shape} vs {observed.shape}"
        )
    if rel_tol < 0:
        raise ValueError("rel_tol must be non-negative")
    reference_total = reference.sum()
    observed_total = observed.sum()
    p = reference / reference_total if reference_total > 0 \
        else np.zeros_like(reference)
    q = observed / observed_total if observed_total > 0 \
        else np.zeros_like(observed)
    n_x, n_y = reference.shape
    lines = [f"{y_label} ^"]
    for j in range(n_y - 1, -1, -1):
        row_chars = []
        for i in range(n_x):
            mass = p[i, j] + q[i, j]
            if mass == 0.0:
                row_chars.append(EMPTY)
            elif abs(q[i, j] - p[i, j]) <= rel_tol * mass:
                row_chars.append(STEADY)
            elif q[i, j] > p[i, j]:
                row_chars.append(GREW)
            else:
                row_chars.append(SHRANK)
        lines.append("  | " + "".join(row_chars))
    lines.append("  +-" + "-" * n_x + f"> {x_label}")
    return "\n".join(lines)


def render_side_by_side(left: RuleGrid, right: RuleGrid,
                        left_title: str = "before",
                        right_title: str = "after",
                        gap: int = 4) -> str:
    """Two grids next to each other (the Figure 7 before/after layout)."""
    if left.n_y != right.n_y:
        raise ValueError("grids must have the same height to pair")
    spacer = " " * gap
    lines = [
        f"{left_title:<{left.n_x}}{spacer}{right_title}",
    ]
    for j in range(left.n_y - 1, -1, -1):
        left_row = "".join(
            SET if left.cells[i, j] else CLEAR for i in range(left.n_x)
        )
        right_row = "".join(
            SET if right.cells[i, j] else CLEAR for i in range(right.n_x)
        )
        lines.append(f"{left_row}{spacer}{right_row}")
    return "\n".join(lines)
