"""Unit tests for the dataset profiler."""

import numpy as np
import pytest

from repro.data.schema import Table, categorical, quantitative
from repro.data.summary import (
    CategoricalProfile,
    QuantitativeProfile,
    format_profile,
    profile_table,
)


@pytest.fixture()
def mixed_table(fresh_rng):
    n = 2_000
    return Table.from_columns(
        [quantitative("income", 0, 100_000),
         categorical("region", ("n", "s", "e", "w"))],
        {
            "income": fresh_rng.uniform(0, 100_000, n),
            "region": (["n"] * 1_000 + ["s"] * 600 + ["e"] * 300
                       + ["w"] * 100),
        },
    )


class TestProfileTable:
    def test_profiles_in_schema_order(self, mixed_table):
        profiles = profile_table(mixed_table)
        assert isinstance(profiles[0], QuantitativeProfile)
        assert isinstance(profiles[1], CategoricalProfile)
        assert profiles[0].name == "income"

    def test_quantitative_statistics(self, mixed_table):
        profile = profile_table(mixed_table)[0]
        assert 0 <= profile.minimum < profile.maximum <= 100_000
        q1, q2, q3 = profile.quartiles
        assert q1 < q2 < q3
        assert abs(profile.mean - 50_000) < 5_000
        assert len(profile.histogram) == 24

    def test_uniform_histogram_is_flat(self, mixed_table):
        profile = profile_table(mixed_table)[0]
        # All bars near the peak level for uniform data.
        assert len(set(profile.histogram)) <= 3

    def test_categorical_top_values_ordered(self, mixed_table):
        profile = profile_table(mixed_table)[1]
        assert profile.cardinality == 4
        values = [value for value, _ in profile.top_values]
        counts = [count for _, count in profile.top_values]
        assert values[0] == "n"
        assert counts == sorted(counts, reverse=True)

    def test_top_k_limits(self, mixed_table):
        profile = profile_table(mixed_table, top_k=2)[1]
        assert len(profile.top_values) == 2

    def test_rejects_bad_top_k(self, mixed_table):
        with pytest.raises(ValueError):
            profile_table(mixed_table, top_k=0)

    def test_rejects_empty_column(self):
        empty = Table.from_columns(
            [quantitative("x")], {"x": []}
        )
        with pytest.raises(ValueError):
            profile_table(empty)


class TestFormatProfile:
    def test_report_mentions_every_attribute(self, mixed_table):
        text = format_profile(profile_table(mixed_table),
                              len(mixed_table))
        assert "income" in text and "region" in text
        assert "2,000 rows" in text
        assert "|" in text  # histogram frame


class TestDescribeCommand:
    def test_cli_describe(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "d.csv"
        main(["generate", str(path), "--tuples", "500"])
        capsys.readouterr()
        assert main(["describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "salary" in out and "group" in out
        assert "500 rows" in out
