"""Integration tests for the `arcs` command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dataset(tmp_path):
    path = tmp_path / "data.csv"
    code = main([
        "generate", str(path),
        "--tuples", "8000", "--seed", "5",
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        code = main(["generate", str(path), "--tuples", "500"])
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert "salary" in header and "group" in header
        assert "wrote 500 tuples" in capsys.readouterr().out

    def test_outlier_flag(self, tmp_path):
        path = tmp_path / "out.csv"
        assert main([
            "generate", str(path), "--tuples", "300",
            "--outliers", "0.1",
        ]) == 0

    def test_rejects_unknown_function(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", str(tmp_path / "x.csv"),
                  "--function", "11"])


class TestFit:
    def test_fit_prints_segmentation(self, dataset, capsys):
        code = main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "30",
            "--support-levels", "5", "--confidence-levels", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "group = A" in out
        assert "support>=" in out

    def test_fit_verbose_prints_trials(self, dataset, capsys):
        code = main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "20",
            "--support-levels", "3", "--confidence-levels", "3",
            "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Multiple trial lines precede the final report.
        assert out.count("clusters, error=") >= 3

    def test_fit_metrics_out_writes_run_report(self, dataset, tmp_path,
                                               capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "20",
            "--support-levels", "3", "--confidence-levels", "3",
            "--metrics-out", str(report_path),
        ])
        assert code == 0
        assert "run report written" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "arcs-run-report"
        assert payload["name"] == "arcs.fit"
        assert payload["trace"]["name"] == "arcs.fit"
        counters = payload["metrics"]["counters"]
        assert counters["binner.tuples_binned"] == 8000
        assert counters["optimizer.trials"] >= 1
        # The CLI-driven enablement must not leak into the process.
        from repro import obs
        assert not obs.enabled()

    def test_fit_trace_prints_span_summary(self, dataset, capsys):
        code = main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "20",
            "--support-levels", "3", "--confidence-levels", "3",
            "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "run arcs.fit" in out
        assert "optimizer.trial" in out
        assert "binner.tuples_binned" in out

    def test_fit_saves_artefacts(self, dataset, tmp_path, capsys):
        seg_path = tmp_path / "seg.json"
        bins_path = tmp_path / "bins.npz"
        code = main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "25",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-segmentation", str(seg_path),
            "--save-binarray", str(bins_path),
        ])
        assert code == 0
        payload = json.loads(seg_path.read_text())
        assert payload["rhs_value"] == "A"
        assert bins_path.exists()


class TestTelemetryExports:
    """The shared --trace-out / --events-out / --profile-out flags."""

    FIT = [
        "--x", "age", "--y", "salary",
        "--rhs", "group", "--target", "A",
        "--bins", "20",
        "--support-levels", "3", "--confidence-levels", "3",
    ]

    def test_trace_out_writes_chrome_trace(self, dataset, tmp_path,
                                           capsys):
        trace_path = tmp_path / "trace.json"
        code = main(["fit", str(dataset), *self.FIT,
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert f"chrome trace written to {trace_path}" \
            in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, events
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
        assert any(e["name"] == "arcs.fit" for e in slices)

    def test_events_out_writes_run_and_stage_events(self, dataset,
                                                    tmp_path):
        events_path = tmp_path / "events.jsonl"
        code = main(["fit", str(dataset), *self.FIT,
                     "--events-out", str(events_path)])
        assert code == 0
        lines = [json.loads(line)
                 for line in events_path.read_text().splitlines()]
        types = {line["type"] for line in lines}
        assert "run" in types and "stage" in types
        run = next(line for line in lines if line["type"] == "run")
        assert run["name"] == "arcs.fit"
        assert run["error"] is None
        # The sink must not leak past the command.
        from repro.obs import events as events_mod
        assert not events_mod.events_enabled()

    def test_profile_out_writes_collapsed_stacks(self, dataset,
                                                 tmp_path, capsys):
        profile_path = tmp_path / "profile.txt"
        code = main(["fit", str(dataset), *self.FIT,
                     "--profile-out", str(profile_path)])
        assert code == 0
        assert f"written to {profile_path}" in capsys.readouterr().out
        assert profile_path.exists()
        for line in profile_path.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 1

    def test_rejects_unwritable_export_path(self, dataset, tmp_path):
        bad = tmp_path / "no-such-dir" / "trace.json"
        with pytest.raises(SystemExit) as exc:
            main(["fit", str(dataset), *self.FIT,
                  "--trace-out", str(bad)])
        assert "does not exist" in str(exc.value)


class TestFitAll:
    def test_prints_one_section_per_group(self, dataset, capsys):
        code = main([
            "fit-all", str(dataset),
            "--x", "age", "--y", "salary", "--rhs", "group",
            "--bins", "25",
            "--support-levels", "4", "--confidence-levels", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "group = A" in out
        assert "group = other" in out


class TestRemineAndInspect:
    @pytest.fixture()
    def artefacts(self, dataset, tmp_path):
        seg_path = tmp_path / "seg.json"
        bins_path = tmp_path / "bins.npz"
        main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "25",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-segmentation", str(seg_path),
            "--save-binarray", str(bins_path),
        ])
        return seg_path, bins_path

    def test_remine_from_saved_binarray(self, artefacts, capsys):
        _, bins_path = artefacts
        code = main([
            "remine", str(bins_path),
            "--target", "A",
            "--min-support", "0.0005", "--min-confidence", "0.6",
        ])
        assert code == 0
        assert "re-mined" in capsys.readouterr().out

    def test_inspect_prints_rules(self, artefacts, capsys):
        seg_path, _ = artefacts
        code = main(["inspect", str(seg_path)])
        assert code == 0
        assert "group = A" in capsys.readouterr().out

    def test_inspect_evaluates_against_csv(self, artefacts, dataset,
                                           capsys):
        seg_path, _ = artefacts
        code = main([
            "inspect", str(seg_path), "--evaluate", str(dataset),
        ])
        assert code == 0
        assert "error rate" in capsys.readouterr().out


class TestScore:
    @pytest.fixture()
    def model_path(self, dataset, tmp_path):
        seg_path = tmp_path / "seg.json"
        assert main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "25",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-segmentation", str(seg_path),
        ]) == 0
        return seg_path

    def test_score_prints_summary_and_provenance(self, model_path,
                                                 dataset, capsys):
        code = main(["score", str(model_path), "--input", str(dataset)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scored 8,000 tuples" in out
        assert "in segment group = A" in out
        assert "saved by repro" in out

    def test_score_writes_predictions_csv(self, model_path, dataset,
                                          tmp_path, capsys):
        out_path = tmp_path / "preds.csv"
        code = main([
            "score", str(model_path), "--input", str(dataset),
            "--output", str(out_path),
        ])
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert lines[0] == "age,salary,rule,in_segment"
        assert len(lines) == 8001
        assert "predictions written" in capsys.readouterr().out

    def test_score_metrics_out_includes_serve_counters(
            self, model_path, dataset, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "score", str(model_path), "--input", str(dataset),
            "--metrics-out", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["name"] == "cli.score"
        counters = payload["metrics"]["counters"]
        assert counters["serve.tuples_scored"] == 8000
        span_names = [child["name"]
                      for child in payload["trace"]["children"]]
        assert "load" in span_names and "score" in span_names

    def test_inspect_prints_provenance(self, model_path, capsys):
        assert main(["inspect", str(model_path)]) == 0
        assert "saved by repro" in capsys.readouterr().out


class TestUsageErrors:
    def test_version_flag_exits_zero(self, capsys):
        import repro
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"arcs {repro.__version__}"

    def test_unknown_subcommand_is_exit_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        assert "usage: arcs" in capsys.readouterr().err

    def test_missing_subcommand_is_exit_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        assert "usage: arcs" in capsys.readouterr().err


class TestFailurePaths:
    def test_fit_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main([
                "fit", str(tmp_path / "nope.csv"),
                "--x", "age", "--y", "salary",
                "--rhs", "group", "--target", "A",
            ])

    def test_fit_unknown_attribute(self, dataset):
        from repro.data.schema import SchemaError
        with pytest.raises(SchemaError):
            main([
                "fit", str(dataset),
                "--x", "height", "--y", "salary",
                "--rhs", "group", "--target", "A",
            ])

    def test_fit_unknown_target(self, dataset):
        with pytest.raises(KeyError):
            main([
                "fit", str(dataset),
                "--x", "age", "--y", "salary",
                "--rhs", "group", "--target", "no-such-group",
                "--support-levels", "3", "--confidence-levels", "3",
            ])

    def test_remine_rejects_non_binarray(self, tmp_path):
        import numpy as np
        from repro.persistence import PersistenceError
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, data=np.zeros(2))
        with pytest.raises(PersistenceError):
            main([
                "remine", str(bogus), "--target", "A",
                "--min-support", "0.01", "--min-confidence", "0.5",
            ])

    def test_inspect_rejects_non_segmentation(self, tmp_path):
        from repro.persistence import PersistenceError
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "other"}')
        with pytest.raises(PersistenceError):
            main(["inspect", str(bogus)])

    def test_no_command_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestDrift:
    @pytest.fixture()
    def snapshots(self, dataset, tmp_path):
        seg_path = tmp_path / "seg.json"
        bins_path = tmp_path / "bins.npz"
        assert main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "25",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-segmentation", str(seg_path),
            "--save-binarray", str(bins_path),
        ]) == 0
        return seg_path, bins_path

    def test_segmentation_vs_binarray(self, snapshots, capsys):
        seg_path, bins_path = snapshots
        code = main(["drift", str(seg_path), str(bins_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PSI" in out and "JS (bits)" in out
        for attribute in ("age", "salary", "joint"):
            assert attribute in out
        # The two snapshots describe the same training data: every
        # divergence row is (numerically) zero.
        assert out.count("0.0000") >= 6
        # The ASCII delta grid rides along, in grid orientation.
        assert "> age" in out
        assert "salary ^" in out

    def test_detects_a_shifted_snapshot(self, snapshots, dataset,
                                        tmp_path, capsys):
        seg_path, _ = snapshots
        skewed_bins = tmp_path / "skewed.npz"
        # Re-fit on a different generated dataset: different seed,
        # different mass placement.
        skewed_csv = tmp_path / "skewed.csv"
        assert main([
            "generate", str(skewed_csv),
            "--tuples", "4000", "--seed", "99",
        ]) == 0
        assert main([
            "fit", str(skewed_csv),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "25",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-binarray", str(skewed_bins),
        ]) == 0
        code = main(["drift", str(seg_path), str(skewed_bins)])
        assert code == 0
        out = capsys.readouterr().out
        assert "joint" in out

    def test_stats_capture_as_observed_side(self, snapshots, tmp_path,
                                            capsys):
        import numpy as np

        from repro.serve import ModelRegistry, PredictionService

        seg_path, _ = snapshots
        model_dir = tmp_path / "models"
        model_dir.mkdir()
        (model_dir / "traffic.json").write_text(seg_path.read_text())
        service = PredictionService(
            ModelRegistry(model_dir, refresh_interval=0).load()
        )
        rng = np.random.default_rng(3)
        service.predict_batch({
            "model": "traffic",
            "x": rng.uniform(20, 80, 100).tolist(),
            "y": rng.uniform(20_000, 140_000, 100).tolist(),
        })
        status, body = service.dispatch("stats", None)
        assert status == 200
        capture_path = tmp_path / "stats.json"
        capture_path.write_text(json.dumps(body))
        code = main(["drift", str(seg_path), str(capture_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "100 tuples" in out
        assert "joint" in out

    def test_model_flag_required_for_multi_model_captures(
            self, snapshots, tmp_path):
        seg_path, _ = snapshots
        capture = tmp_path / "stats.json"
        capture.write_text(json.dumps({
            "models": {"a": {}, "b": {}},
        }))
        with pytest.raises(SystemExit, match="--model"):
            main(["drift", str(seg_path), str(capture)])

    def test_rejects_artefact_without_reference(self, snapshots,
                                                tmp_path):
        from repro.core.rules import ClusteredRule, Interval
        from repro.core.segmentation import Segmentation
        from repro.persistence import save_segmentation

        _, bins_path = snapshots
        bare = tmp_path / "bare.json"
        save_segmentation(Segmentation.from_rules([ClusteredRule(
            "age", "salary", Interval(0, 1), Interval(0, 1),
            "group", "A", support=0.1, confidence=0.9,
        )]), bare)
        with pytest.raises(SystemExit, match="no embedded reference"):
            main(["drift", str(bare), str(bins_path)])

    def test_rejects_mismatched_grids(self, snapshots, dataset,
                                      tmp_path):
        seg_path, _ = snapshots
        other_bins = tmp_path / "other.npz"
        assert main([
            "fit", str(dataset),
            "--x", "age", "--y", "salary",
            "--rhs", "group", "--target", "A",
            "--bins", "10",
            "--support-levels", "5", "--confidence-levels", "4",
            "--save-binarray", str(other_bins),
        ]) == 0
        with pytest.raises(SystemExit, match="incompatible"):
            main(["drift", str(seg_path), str(other_bins)])

    def test_rejects_non_snapshot_json(self, snapshots, tmp_path):
        seg_path, _ = snapshots
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="neither"):
            main(["drift", str(seg_path), str(bogus)])


class TestServeFlags:
    def _parse(self, argv):
        from repro.cli import _build_parser

        return _build_parser().parse_args(argv)

    def test_serve_defaults_to_threaded_unbatched(self, tmp_path):
        args = self._parse(["serve", str(tmp_path)])
        assert args.workers == 0
        # None = unset, so an explicit "--batch-window 0" stays
        # distinguishable from the default.
        assert args.batch_window is None
        assert args.max_batch is None
        assert args.queue_depth is None

    def test_explicit_zero_batch_window_is_not_the_default(self,
                                                           tmp_path):
        args = self._parse(["serve", str(tmp_path), "--workers", "2",
                            "--batch-window", "0"])
        assert args.batch_window == 0.0

    def test_batch_window_resolution_by_mode(self):
        from repro.cli import _batch_window_seconds
        from repro.serve.batching import DEFAULT_MAX_DELAY_SECONDS

        # Unset: workers default to coalescing, threaded stays off.
        assert _batch_window_seconds(None, 0) == 0.0
        assert _batch_window_seconds(None, 4) == DEFAULT_MAX_DELAY_SECONDS
        # Explicit 0 opts out of batching in either mode.
        assert _batch_window_seconds(0.0, 4) == 0.0
        assert _batch_window_seconds(0.0, 0) == 0.0
        # Milliseconds convert to seconds.
        assert _batch_window_seconds(5.0, 0) == 0.005
        assert _batch_window_seconds(5.0, 4) == 0.005

    def test_serve_accepts_worker_and_batching_flags(self, tmp_path):
        args = self._parse([
            "serve", str(tmp_path), "--workers", "4",
            "--batch-window", "5", "--max-batch", "512",
            "--queue-depth", "64",
        ])
        assert args.workers == 4
        assert args.batch_window == 5.0
        assert args.max_batch == 512
        assert args.queue_depth == 64

    def test_serve_rejects_negative_workers(self, tmp_path):
        tmp_path.joinpath("models").mkdir()
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", str(tmp_path / "models"),
                  "--workers", "-1"])

    def test_serve_rejects_negative_batch_window(self, tmp_path):
        tmp_path.joinpath("models").mkdir()
        with pytest.raises(SystemExit, match="--batch-window"):
            main(["serve", str(tmp_path / "models"),
                  "--batch-window", "-2"])
