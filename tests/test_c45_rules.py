"""Unit tests for the C4.5RULES-style rule extractor."""

import numpy as np
import pytest

from repro.baselines.c45_rules import (
    C45Rules,
    Condition,
    ExtractedRule,
    _paths_to_leaves,
)
from repro.baselines.decision_tree import C45Tree, TreeConfig
from repro.data.schema import Table, categorical, quantitative


def band_table(n=2000, seed=0):
    """One salary band defines the positive class."""
    rng = np.random.default_rng(seed)
    salary = rng.uniform(0, 100, n)
    labels = np.where((salary >= 40) & (salary <= 60), "A", "other")
    return Table.from_columns(
        [quantitative("salary", 0, 100),
         categorical("group", ("A", "other"))],
        {"salary": salary, "group": labels.tolist()},
    )


@pytest.fixture(scope="module")
def fitted_rules():
    table = band_table()
    tree = C45Tree().fit(table, ["salary"], "group")
    return table, tree, C45Rules.from_tree(tree, table)


class TestCondition:
    def test_le(self, tiny_table):
        condition = Condition("age", "<=", 40)
        assert list(condition.holds(tiny_table)) == [
            True, True, True, False, False, False
        ]

    def test_gt(self, tiny_table):
        condition = Condition("age", ">", 40)
        assert condition.holds(tiny_table).sum() == 3

    def test_eq(self, tiny_table):
        condition = Condition("group", "==", "A")
        assert condition.holds(tiny_table).sum() == 4

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Condition("age", "!=", 40)


class TestExtractedRule:
    def test_accuracy(self):
        rule = ExtractedRule(
            conditions=(Condition("age", "<=", 40),),
            label="A", coverage=10, errors=2, pessimistic=3.0,
        )
        assert rule.accuracy == pytest.approx(0.8)

    def test_empty_antecedent_matches_all(self, tiny_table):
        rule = ExtractedRule((), "A", 6, 2, 3.0)
        assert rule.matches(tiny_table).all()
        assert "TRUE" in str(rule)


class TestPathExtraction:
    def test_paths_cover_all_leaves(self, fitted_rules):
        _, tree, _ = fitted_rules
        paths = _paths_to_leaves(tree.root)
        assert len(paths) == tree.n_leaves

    def test_path_conditions_route_to_leaf_label(self):
        table = band_table(500, seed=3)
        tree = C45Tree().fit(table, ["salary"], "group")
        for conditions, label in _paths_to_leaves(tree.root):
            mask = np.ones(len(table), dtype=bool)
            for condition in conditions:
                mask &= condition.holds(table)
            if mask.any():
                predicted = tree.predict(table.where(mask))
                assert (predicted == label).all()


class TestFromTree:
    def test_rule_set_smaller_than_leaf_count(self, fitted_rules):
        _, tree, rules = fitted_rules
        assert 0 < len(rules) <= tree.n_leaves

    def test_band_recovered(self, fitted_rules):
        """Some A-rule's conditions should reconstruct the 40..60 band."""
        _, _, rules = fitted_rules
        a_rules = rules.rules_for("A")
        assert a_rules
        best = max(a_rules, key=lambda rule: rule.coverage)
        assert best.accuracy > 0.9

    def test_predict_accuracy(self, fitted_rules):
        table, _, rules = fitted_rules
        predicted = rules.predict(table)
        accuracy = float(np.mean(predicted == table.column("group")))
        assert accuracy > 0.95

    def test_default_label_is_valid_group(self, fitted_rules):
        _, _, rules = fitted_rules
        assert rules.default_label in ("A", "other")

    def test_describe_mentions_default(self, fitted_rules):
        _, _, rules = fitted_rules
        assert "DEFAULT" in rules.describe()

    def test_unfitted_tree_rejected(self, fitted_rules):
        table, _, _ = fitted_rules
        with pytest.raises(ValueError):
            C45Rules.from_tree(C45Tree(), table)

    def test_simplification_drops_conditions(self):
        """Deep noisy paths must come out shorter after generalisation."""
        table = band_table(3000, seed=5)
        tree = C45Tree(TreeConfig(prune=False)).fit(
            table, ["salary"], "group"
        )
        rules = C45Rules.from_tree(tree, table)
        raw_lengths = [
            len(conditions)
            for conditions, _ in _paths_to_leaves(tree.root)
        ]
        kept_lengths = [len(rule.conditions) for rule in rules.rules]
        assert max(kept_lengths, default=0) <= max(raw_lengths)
        assert np.mean(kept_lengths) < np.mean(raw_lengths)

    def test_rule_count_far_below_path_count_on_noisy_data(self, f2_table):
        """The MDL subset-selection step is what keeps the rule count in
        the dozens (paper Figures 13/14)."""
        sample = f2_table.head(5000)
        tree = C45Tree().fit(sample, ["age", "salary"], "group")
        rules = C45Rules.from_tree(tree, sample)
        assert len(rules) < tree.n_leaves / 2
        assert len(rules) < 60
