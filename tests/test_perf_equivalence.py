"""Equivalence tests: vectorised hot-path kernels vs scalar references.

The fast kernels (bincount binner scatter, matrix-form verifier counts,
summed-area-table smoothing, packbits row masks) must produce
*bit-identical* results to the straightforward scalar implementations
kept in :mod:`repro.perf.reference` — including edge bins, empty inputs
and empty grids.  The perf-budget harness relies on these pairs agreeing
before it times them.
"""

import numpy as np
import pytest

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout
from repro.core.grid import RuleGrid
from repro.core.smoothing import neighbourhood_mean, window_sums
from repro.core.verifier import count_repeat_errors
from repro.perf import reference


def make_layouts(n_bins=10):
    return (
        equi_width_layout("x", 0.0, 100.0, n_bins),
        equi_width_layout("y", -5.0, 5.0, n_bins),
    )


def make_cube(target_code=None, n_bins=10):
    x_layout, y_layout = make_layouts(n_bins)
    encoding = CategoricalEncoding("group", ("A", "B", "other"))
    return BinArray(x_layout, y_layout, encoding, target_code=target_code)


class TestBinnerEquivalence:
    def assert_cubes_equal(self, slow, fast):
        assert np.array_equal(slow.counts, fast.counts)
        assert np.array_equal(slow.totals, fast.totals)
        assert slow.n_total == fast.n_total

    def accumulate_both(self, x_values, y_values, codes, target_code=None):
        x_layout, y_layout = make_layouts()
        slow, fast = (
            make_cube(target_code), make_cube(target_code)
        )
        reference.add_chunk_scalar(
            slow,
            reference.assign_bins_scalar(x_layout, x_values),
            reference.assign_bins_scalar(y_layout, y_values),
            codes,
        )
        fast.add_chunk(
            x_layout.assign(x_values), y_layout.assign(y_values), codes
        )
        self.assert_cubes_equal(slow, fast)
        return fast

    def test_random_chunk_identical(self):
        rng = np.random.default_rng(1)
        n = 5000
        self.accumulate_both(
            rng.uniform(0, 100, n), rng.uniform(-5, 5, n),
            rng.integers(0, 3, n, dtype=np.int64),
        )

    def test_edge_values_identical(self):
        """Domain bounds, exact bin edges and out-of-range values land in
        the same bins on both paths."""
        x_values = np.array([0.0, 10.0, 99.999, 100.0, -3.0, 250.0, 50.0])
        y_values = np.array([-5.0, -1.0, 4.999, 5.0, -80.0, 80.0, 0.0])
        codes = np.array([0, 1, 2, 0, 1, 2, 0], dtype=np.int64)
        fast = self.accumulate_both(x_values, y_values, codes)
        # Clamping: the out-of-range tuples landed in the outermost bins.
        assert fast.totals[0].sum() >= 1
        assert fast.totals[-1].sum() >= 1

    def test_empty_chunk_identical(self):
        empty = np.array([], dtype=np.float64)
        fast = self.accumulate_both(
            empty, empty, np.array([], dtype=np.int64)
        )
        assert fast.n_total == 0
        assert not fast.totals.any()

    def test_single_target_mode_identical(self):
        rng = np.random.default_rng(2)
        n = 3000
        self.accumulate_both(
            rng.uniform(0, 100, n), rng.uniform(-5, 5, n),
            rng.integers(0, 3, n, dtype=np.int64),
            target_code=1,
        )

    def test_multiple_chunks_accumulate_identically(self):
        rng = np.random.default_rng(3)
        x_layout, y_layout = make_layouts()
        slow, fast = make_cube(), make_cube()
        for _ in range(4):
            n = int(rng.integers(1, 800))
            x_values = rng.uniform(0, 100, n)
            y_values = rng.uniform(-5, 5, n)
            codes = rng.integers(0, 3, n, dtype=np.int64)
            reference.add_chunk_scalar(
                slow,
                reference.assign_bins_scalar(x_layout, x_values),
                reference.assign_bins_scalar(y_layout, y_values),
                codes,
            )
            fast.add_chunk(
                x_layout.assign(x_values), y_layout.assign(y_values),
                codes,
            )
        self.assert_cubes_equal(slow, fast)

    def test_remove_chunk_matches_scalar_reference(self):
        """The inverse scatter is bit-identical to the per-tuple loop,
        across full-cube and single-target modes."""
        rng = np.random.default_rng(4)
        for target_code in (None, 1):
            n_x = rng.integers(0, 10, 4_000, dtype=np.int64)
            n_y = rng.integers(0, 10, 4_000, dtype=np.int64)
            codes = rng.integers(0, 3, 4_000, dtype=np.int64)
            slow, fast = make_cube(target_code), make_cube(target_code)
            for cube in (slow, fast):
                cube.add_chunk(n_x, n_y, codes)
            # Remove a random half of what was accumulated.
            keep = rng.random(4_000) < 0.5
            reference.remove_chunk_scalar(
                slow, n_x[keep], n_y[keep], codes[keep]
            )
            fast.remove_chunk(n_x[keep], n_y[keep], codes[keep])
            self.assert_cubes_equal(slow, fast)

    def test_remove_chunk_empty_identical(self):
        empty = np.array([], dtype=np.int64)
        slow, fast = make_cube(), make_cube()
        reference.remove_chunk_scalar(slow, empty, empty, empty)
        fast.remove_chunk(empty, empty, empty)
        self.assert_cubes_equal(slow, fast)

    def test_scalar_reference_underflow_check(self):
        cube = make_cube()
        cube.add_chunk(
            np.array([0]), np.array([0]), np.array([0])
        )
        with pytest.raises(ValueError, match="no tuples"):
            reference.remove_chunk_scalar(
                cube, np.array([1]), np.array([1]), np.array([0])
            )

    def test_scalar_assignment_matches_layout(self):
        layout = equi_width_layout("x", 0.0, 1.0, 7)
        values = np.concatenate([
            np.linspace(-0.5, 1.5, 101), layout.edges
        ])
        assert np.array_equal(
            reference.assign_bins_scalar(layout, values),
            layout.assign(values),
        )


class TestVerifierEquivalence:
    def test_counts_identical(self):
        rng = np.random.default_rng(4)
        covered = rng.random(2000) < 0.3
        is_target = rng.random(2000) < 0.25
        slow = reference.count_repeat_errors_scalar(
            covered, is_target, 150, seed=9, repeat_ids=range(8)
        )
        fast = count_repeat_errors(
            covered, is_target, 150, seed=9, repeat_ids=range(8)
        )
        assert np.array_equal(slow[0], fast[0])
        assert np.array_equal(slow[1], fast[1])

    def test_counts_identical_for_degenerate_coverage(self):
        n = 500
        for covered in (np.zeros(n, bool), np.ones(n, bool)):
            is_target = np.arange(n) % 3 == 0
            slow = reference.count_repeat_errors_scalar(
                covered, is_target, n, seed=0, repeat_ids=range(3)
            )
            fast = count_repeat_errors(
                covered, is_target, n, seed=0, repeat_ids=range(3)
            )
            assert np.array_equal(slow[0], fast[0])
            assert np.array_equal(slow[1], fast[1])

    def test_repeat_ids_are_position_independent(self):
        """Repeat r draws the same sample whether computed alone or in a
        batch — the property the parallel fan-out relies on."""
        rng = np.random.default_rng(5)
        covered = rng.random(800) < 0.5
        is_target = rng.random(800) < 0.5
        batched = count_repeat_errors(
            covered, is_target, 100, seed=3, repeat_ids=range(6)
        )
        for repeat in range(6):
            alone = count_repeat_errors(
                covered, is_target, 100, seed=3, repeat_ids=[repeat]
            )
            assert alone[0][0] == batched[0][repeat]
            assert alone[1][0] == batched[1][repeat]


class TestSmoothingEquivalence:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_binary_grid_bit_identical(self, radius):
        """On 0/1 grids every partial sum is an exact integer, so the
        summed-area table matches shift-and-add bit for bit."""
        rng = np.random.default_rng(6)
        grid = (rng.random((23, 31)) < 0.4).astype(np.float64)
        fast = neighbourhood_mean(grid, radius=radius)
        slow = reference.neighbourhood_mean_scalar(grid, radius=radius)
        assert np.array_equal(fast, slow)

    def test_float_grid_matches_to_rounding(self):
        rng = np.random.default_rng(7)
        grid = rng.random((40, 17))
        fast = neighbourhood_mean(grid, radius=2)
        slow = reference.neighbourhood_mean_scalar(grid, radius=2)
        assert np.allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_radius_larger_than_grid(self):
        grid = np.eye(3)
        fast = neighbourhood_mean(grid, radius=10)
        slow = reference.neighbourhood_mean_scalar(grid, radius=10)
        assert np.array_equal(fast, slow)
        # Every window is the whole grid: the global mean everywhere.
        assert np.allclose(fast, grid.mean())

    def test_window_sums_counts_are_window_areas(self):
        sums, counts = window_sums(np.ones((4, 4)), radius=1)
        assert counts[0, 0] == 4.0   # corner
        assert counts[0, 1] == 6.0   # edge
        assert counts[1, 1] == 9.0   # interior
        assert np.array_equal(sums, counts)  # all-ones grid


class TestRowBitmapEquivalence:
    @pytest.mark.parametrize("shape", [(1, 1), (5, 3), (20, 64),
                                       (13, 65), (8, 200)])
    def test_random_grids_identical(self, shape):
        rng = np.random.default_rng(8)
        cells = rng.random(shape) < 0.5
        grid = RuleGrid(cells)
        assert grid.row_bitmaps() == reference.row_bitmaps_scalar(cells)

    def test_empty_and_full_rows(self):
        cells = np.zeros((4, 70), dtype=bool)
        cells[1, :] = True
        cells[3, 69] = True
        grid = RuleGrid(cells)
        rows = grid.row_bitmaps()
        assert rows == reference.row_bitmaps_scalar(cells)
        assert rows[0] == 0
        assert rows[1] == (1 << 70) - 1
        assert rows[3] == 1 << 69

    def test_round_trip(self):
        rng = np.random.default_rng(9)
        cells = rng.random((12, 77)) < 0.3
        grid = RuleGrid(cells)
        back = RuleGrid.from_row_bitmaps(grid.row_bitmaps(), 77)
        assert np.array_equal(back.cells, cells)

    def test_from_row_bitmaps_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            RuleGrid.from_row_bitmaps([1 << 10], n_y=8)


class TestDriftEquivalence:
    """The /stats acceptance bar: vectorised PSI/JS vs scalar oracles,
    exact equality (``==``), not approx."""

    @pytest.mark.parametrize("n_bins", [1, 4, 50, 500, 2500])
    def test_psi_bit_identical(self, n_bins):
        from repro.obs.drift import psi

        rng = np.random.default_rng(53)
        expected = rng.integers(0, 1000, n_bins)
        observed = rng.integers(0, 1000, n_bins)
        expected[0] = observed[-1] = 1  # never all-zero
        assert psi(expected, observed) == reference.psi_scalar(
            expected, observed
        )

    @pytest.mark.parametrize("n_bins", [1, 4, 50, 500, 2500])
    def test_js_bit_identical(self, n_bins):
        from repro.obs.drift import js_divergence

        rng = np.random.default_rng(59)
        expected = rng.integers(0, 1000, n_bins)
        observed = rng.integers(0, 1000, n_bins)
        expected[0] = observed[-1] = 1
        assert js_divergence(expected, observed) == \
            reference.js_divergence_scalar(expected, observed)

    def test_sparse_grids_with_empty_bins_identical(self):
        from repro.obs.drift import js_divergence, psi

        rng = np.random.default_rng(61)
        # 2-D joint grids, mostly empty — the clip/zero-term paths.
        expected = rng.integers(0, 5, (30, 40))
        observed = np.where(rng.random((30, 40)) < 0.9, 0,
                            rng.integers(1, 50, (30, 40)))
        expected[0, 0] = observed[0, 0] = 1
        assert psi(expected, observed) == reference.psi_scalar(
            expected, observed
        )
        assert js_divergence(expected, observed) == \
            reference.js_divergence_scalar(expected, observed)

    def test_oracles_enforce_the_same_contract(self):
        from repro.obs.drift import js_divergence, psi

        for fast, slow in ((psi, reference.psi_scalar),
                           (js_divergence,
                            reference.js_divergence_scalar)):
            for bad in (([], [1]), ([1, -2], [1, 1]),
                        ([0, 0], [1, 1]), ([1, 1, 1], [1, 1])):
                with pytest.raises(ValueError):
                    fast(*bad)
                with pytest.raises(ValueError):
                    slow(*bad)


class TestScorerEquivalence:
    def _segmentation(self, rng, n_rules=12):
        from repro.core.rules import ClusteredRule, Interval
        from repro.core.segmentation import Segmentation

        rules = []
        for index in range(n_rules):
            x_lo, y_lo = rng.uniform(0, 80, 2)
            rules.append(ClusteredRule(
                "age", "salary",
                Interval(x_lo, x_lo + rng.uniform(1, 20),
                         closed_high=bool(index % 2)),
                Interval(y_lo, y_lo + rng.uniform(1, 20),
                         closed_high=bool(index % 3 == 0)),
                "group", "A", support=0.1, confidence=0.9,
            ))
        return Segmentation.from_rules(rules)

    def test_random_batches_identical(self):
        from repro.serve.scorer import compile_scorer

        rng = np.random.default_rng(41)
        segmentation = self._segmentation(rng)
        xs = rng.uniform(-10, 110, 3000)
        ys = rng.uniform(-10, 110, 3000)
        assert np.array_equal(
            compile_scorer(segmentation).score_batch(xs, ys),
            reference.score_batch_scalar(segmentation, xs, ys),
        )

    def test_boundary_values_identical(self):
        from repro.serve.scorer import compile_scorer

        rng = np.random.default_rng(43)
        segmentation = self._segmentation(rng, n_rules=8)
        # Query exactly on every interval endpoint, in both axes.
        bounds = np.array(sorted({
            float(bound)
            for rule in segmentation.rules
            for interval in (rule.x_interval, rule.y_interval)
            for bound in (interval.low, interval.high)
        }))
        xs, ys = map(np.ravel, np.meshgrid(bounds, bounds))
        assert np.array_equal(
            compile_scorer(segmentation).score_batch(xs, ys),
            reference.score_batch_scalar(segmentation, xs, ys),
        )

    def test_empty_batch_identical(self):
        from repro.serve.scorer import compile_scorer

        rng = np.random.default_rng(47)
        segmentation = self._segmentation(rng, n_rules=3)
        empty = np.array([], dtype=np.float64)
        assert np.array_equal(
            compile_scorer(segmentation).score_batch(empty, empty),
            reference.score_batch_scalar(segmentation, empty, empty),
        )
