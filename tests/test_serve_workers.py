"""Tests for multi-process serving (repro.serve.workers).

Covers the shared-memory table codec (bit-identical to the compiled
scorer and the scalar oracle), the publish/ack/retire protocol, and the
pre-fork :class:`MultiProcessServer` end to end over live HTTP —
including graceful drain, worker restart and hot reload.
"""

import gc
import json
import multiprocessing
import os
import re
import signal
import struct
import threading
import time
import urllib.error
import urllib.request
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.rules import ClusteredRule, Interval
from repro.obs.prometheus import parse_prometheus
from repro.core.segmentation import Segmentation
from repro.perf.reference import score_batch_scalar
from repro.persistence import save_segmentation
from repro.serve import (
    ModelRegistry,
    MultiProcessServer,
    SharedScorerCache,
    WorkerConfig,
    WorkerError,
    compile_scorer,
)
from repro.serve.workers import (
    ScorerPublisher,
    _close_mapping_when_views_die,
    attach_scorer,
    block_name,
    publish_tables,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multi-process serving needs the fork start method",
)


def make_rule(x_lo, x_hi, y_lo, y_hi, *, rhs="A"):
    return ClusteredRule(
        "age", "salary", Interval(x_lo, x_hi), Interval(y_lo, y_hi),
        "group", rhs, support=0.1, confidence=0.9,
    )


@pytest.fixture()
def segmentation():
    return Segmentation.from_rules([
        make_rule(20, 40, 50_000, 100_000),
        make_rule(60, 80, 25_000, 75_000),
    ])


@pytest.fixture()
def model_dir(tmp_path, segmentation):
    directory = tmp_path / "models"
    directory.mkdir()
    save_segmentation(segmentation, directory / "groupA.json")
    return directory


def _get(url, path, timeout=5):
    try:
        with urllib.request.urlopen(url + path,
                                    timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _post(url, path, payload, timeout=5):
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request,
                                    timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout  # wall-clock: ok
    while time.monotonic() < deadline:  # wall-clock: ok
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Shared-memory codec
# ----------------------------------------------------------------------
class TestSharedTables:
    def test_attach_round_trips_bit_identical(self, segmentation):
        scorer = compile_scorer(segmentation)
        name = f"arcstest{os.getpid():x}_roundtrip"
        shm = publish_tables(scorer, name)
        try:
            attached, handle = attach_scorer(name, segmentation)
            try:
                assert np.array_equal(attached.x_edges, scorer.x_edges)
                assert np.array_equal(attached.y_edges, scorer.y_edges)
                assert np.array_equal(attached.table, scorer.table)
                rng = np.random.default_rng(7)
                x = rng.uniform(0, 100, 1000)
                y = rng.uniform(0, 120_000, 1000)
                expected = score_batch_scalar(segmentation, x, y)
                assert np.array_equal(
                    attached.score_batch(x, y), expected
                )
                assert np.array_equal(
                    scorer.score_batch(x, y), expected
                )
            finally:
                handle.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attached_tables_are_read_only(self, segmentation):
        scorer = compile_scorer(segmentation)
        name = f"arcstest{os.getpid():x}_readonly"
        shm = publish_tables(scorer, name)
        try:
            attached, handle = attach_scorer(name, segmentation)
            try:
                with pytest.raises(ValueError):
                    attached.table[0, 0] = 99
            finally:
                handle.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attach_missing_block_raises(self, segmentation):
        with pytest.raises(FileNotFoundError):
            attach_scorer(f"arcstest{os.getpid():x}_ghost",
                          segmentation)

    def test_publish_replaces_stale_block(self, segmentation):
        scorer = compile_scorer(segmentation)
        name = f"arcstest{os.getpid():x}_stale"
        first = publish_tables(scorer, name)
        first.close()  # simulate a crashed publisher: never unlinked
        second = publish_tables(scorer, name)
        try:
            attached, handle = attach_scorer(name, segmentation)
            handle.close()
        finally:
            second.close()
            second.unlink()

    def test_header_never_overlaps_first_array(self):
        # The header's offset digits feed back into its own encoded
        # length; sweep header sizes (rule counts) and assert the
        # stored header always fits below the first array region and
        # the tables round-trip bit-identically.
        for n_rules in (1, 3, 7, 15, 31):
            seg = Segmentation.from_rules([
                make_rule(i, i + 0.5, 10.0 * i, 10.0 * i + 5.0)
                for i in range(n_rules)
            ])
            scorer = compile_scorer(seg)
            name = f"arcstest{os.getpid():x}_fix{n_rules}"
            shm = publish_tables(scorer, name)
            try:
                (length,) = struct.unpack_from("<Q", shm.buf, 0)
                header = json.loads(bytes(shm.buf[8:8 + length]))
                first_offset = min(
                    spec["offset"] for spec in header.values()
                )
                assert 8 + length <= first_offset
                attached, _handle = attach_scorer(name, seg)
                assert np.array_equal(attached.table, scorer.table)
                assert np.array_equal(attached.x_edges, scorer.x_edges)
                assert np.array_equal(attached.y_edges, scorer.y_edges)
            finally:
                shm.close()
                shm.unlink()


class TestDeferredMappingClose:
    def test_mapping_survives_until_last_view_dies(self):
        shm = SharedMemory(
            create=True, name=f"arcstest{os.getpid():x}_defer",
            size=1024,
        )
        name = shm.name
        views = [
            np.ndarray((8,), dtype=np.uint8, buffer=shm.buf,
                       offset=8 * i)
            for i in range(3)
        ]
        views[0][:] = 3
        _close_mapping_when_views_die(shm, tuple(views))
        survivor = views.pop(0)
        del views
        del shm  # SharedMemory.__del__ would close; finalizers hold it
        gc.collect()
        # Two views died and the handle was dropped, but the surviving
        # view must still read through a live mapping (a dangling one
        # would segfault the process, not raise).
        assert survivor[0] == 3
        del survivor
        gc.collect()
        # The close fired (not the unlink): the name is re-attachable.
        cleanup = SharedMemory(name=name)
        cleanup.close()
        cleanup.unlink()


class TestSharedScorerCache:
    def test_falls_back_to_local_compile(self, model_dir,
                                         segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=-1).load()
        cache = SharedScorerCache(f"arcstest{os.getpid():x}nope")
        try:
            model = registry.models()[0]
            scorer = cache.resolve(model)
            x, y = [25.0, 5.0], [60_000.0, 1.0]
            assert np.array_equal(
                scorer.score_batch(x, y),
                score_batch_scalar(segmentation, x, y),
            )
            # Cached: same object on the next resolve.
            assert cache.resolve(model) is scorer
        finally:
            cache.close()

    def test_prefers_published_block(self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=-1).load()
        model = registry.models()[0]
        prefix = f"arcstest{os.getpid():x}pub"
        scorer = compile_compile = compile_scorer(model.segmentation)
        shm = publish_tables(
            scorer, block_name(prefix, model.model_id)
        )
        cache = SharedScorerCache(prefix)
        try:
            resolved = cache.resolve(model)
            # An attached scorer's arrays live in the shared block,
            # not in the LRU-cached compile.
            assert resolved is not compile_compile
            assert np.array_equal(resolved.table, scorer.table)
        finally:
            cache.close()
            shm.close()
            shm.unlink()

    def test_sync_keeps_mapping_alive_for_inflight_scorers(
            self, model_dir):
        registry = ModelRegistry(model_dir, refresh_interval=-1).load()
        model = registry.models()[0]
        prefix = f"arcstest{os.getpid():x}inflt"
        published = publish_tables(
            compile_scorer(model.segmentation),
            block_name(prefix, model.model_id),
        )
        cache = SharedScorerCache(prefix)
        try:
            scorer = cache.resolve(model)
            # A hot reload drops the model while this "request" still
            # holds the scorer: the entry goes away, but the shared
            # views must stay valid (a closed mapping would segfault).
            cache.sync(set())
            with cache._lock:
                assert cache._entries == {}
            x, y = [25.0, 70.0], [60_000.0, 30_000.0]
            assert np.array_equal(
                scorer.score_batch(x, y),
                score_batch_scalar(model.segmentation, x, y),
            )
        finally:
            cache.close()
            published.close()
            published.unlink()

    def test_corrupt_block_falls_back_to_local_compile(
            self, model_dir, segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=-1).load()
        model = registry.models()[0]
        prefix = f"arcstest{os.getpid():x}bad"
        shm = SharedMemory(
            create=True, name=block_name(prefix, model.model_id),
            size=1024,
        )
        shm.buf[:8] = struct.pack("<Q", 64)
        shm.buf[8:72] = b"{" * 64  # torn header: not valid JSON
        cache = SharedScorerCache(prefix)
        try:
            scorer = cache.resolve(model)  # must degrade, not raise
            x, y = [25.0], [60_000.0]
            assert np.array_equal(
                scorer.score_batch(x, y),
                score_batch_scalar(segmentation, x, y),
            )
        finally:
            cache.close()
            shm.close()
            shm.unlink()


class TestScorerPublisher:
    def test_sync_publishes_and_retires(self, model_dir, tmp_path,
                                        segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        publisher = ScorerPublisher(f"arcstest{os.getpid():x}ret")
        try:
            generation = publisher.sync(registry.models())
            model_id = registry.models()[0].model_id
            name = publisher.block_for(model_id)
            attached, handle = attach_scorer(name, segmentation)
            handle.close()
            # Drop the artefact: the next sync retires its block, but
            # the name survives until every worker acks.
            (model_dir / "groupA.json").unlink()
            registry.refresh()
            retire_generation = publisher.sync(registry.models())
            assert retire_generation == generation + 1
            publisher.note_ack(0, generation)
            attached, handle = attach_scorer(name, segmentation)
            handle.close()
            # Both (all) workers past the retire generation: unlinked.
            publisher.note_ack(0, retire_generation)
            with pytest.raises(FileNotFoundError):
                attach_scorer(name, segmentation)
        finally:
            publisher.close()

    def test_externally_removed_block_tolerated(self, model_dir,
                                                segmentation):
        # An operator (or a tmpfs cleaner) removed the file under
        # /dev/shm: retirement bookkeeping and shutdown must both
        # survive, not wedge the ack loop or hang drain.
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        publisher = ScorerPublisher(f"arcstest{os.getpid():x}ext")
        try:
            generation = publisher.sync(registry.models())
            model_id = registry.models()[0].model_id
            name = publisher.block_for(model_id)
            stolen = SharedMemory(name=name)
            stolen.close()
            stolen.unlink()
            (model_dir / "groupA.json").unlink()
            registry.refresh()
            retire_generation = publisher.sync(registry.models())
            assert retire_generation == generation + 1
            publisher.note_ack(0, retire_generation)  # must not raise
        finally:
            publisher.close()  # must not raise either

    def test_spawned_but_unacked_worker_blocks_unlink(
            self, model_dir, segmentation):
        # The startup window: worker 1 is forked (registered) but has
        # never acked; a retirement must wait for its first ack even
        # though every worker that HAS acked is already past it.
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        publisher = ScorerPublisher(f"arcstest{os.getpid():x}seed")
        try:
            publisher.sync(registry.models())
            publisher.register_worker(0)
            publisher.register_worker(1)
            name = publisher.block_for(registry.models()[0].model_id)
            (model_dir / "groupA.json").unlink()
            registry.refresh()
            retire_generation = publisher.sync(registry.models())
            publisher.note_ack(0, retire_generation)
            attached, handle = attach_scorer(name, segmentation)
            handle.close()
            publisher.note_ack(1, retire_generation)
            with pytest.raises(FileNotFoundError):
                attach_scorer(name, segmentation)
        finally:
            publisher.close()

    def test_dead_worker_acks_reset(self, model_dir, segmentation):
        registry = ModelRegistry(model_dir, refresh_interval=0).load()
        publisher = ScorerPublisher(f"arcstest{os.getpid():x}rst")
        try:
            generation = publisher.sync(registry.models())
            publisher.note_ack(0, generation)
            publisher.note_ack(1, generation)
            publisher.reset_worker(1)
            model_id = registry.models()[0].model_id
            name = publisher.block_for(model_id)
            (model_dir / "groupA.json").unlink()
            registry.refresh()
            retire_generation = publisher.sync(registry.models())
            publisher.note_ack(0, retire_generation)
            # Worker 1 restarted and has not re-acked: block stays.
            attached, handle = attach_scorer(name, segmentation)
            handle.close()
            publisher.note_ack(1, retire_generation)
            with pytest.raises(FileNotFoundError):
                attach_scorer(name, segmentation)
        finally:
            publisher.close()


# ----------------------------------------------------------------------
# The pre-fork server, live over HTTP
# ----------------------------------------------------------------------
@pytest.fixture()
def pool(model_dir):
    server = MultiProcessServer(
        model_dir, port=0, workers=2, refresh_interval=-1,
        config=WorkerConfig(batch_window_seconds=0.001),
    )
    server.start()
    yield server
    server.drain(timeout=15.0)


class TestMultiProcessServer:
    def test_rejects_bad_worker_count(self, model_dir):
        with pytest.raises(WorkerError, match="at least 1"):
            MultiProcessServer(model_dir, port=0, workers=0)

    def test_serves_predictions_bit_identical(self, pool,
                                              segmentation):
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 100, 256)
        y = rng.uniform(0, 120_000, 256)
        status, body = _post(pool.url, "/predict_batch", {
            "model": "groupA", "x": x.tolist(), "y": y.tolist(),
        })
        assert status == 200
        expected = score_batch_scalar(segmentation, x, y)
        assert np.array_equal(
            np.asarray(body["rule"], dtype=np.int64), expected
        )

    def test_healthz_reports_worker_identity(self, pool):
        status, body = _get(pool.url, "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["workers"] == 2
        assert body["worker"] in (0, 1)

    def test_queue_depth_gauge_in_exposition(self, pool):
        request = urllib.request.Request(
            pool.url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            text = response.read().decode()
        assert "arcs_serve_queue_depth" in text

    def test_drain_joins_workers_and_unlinks_blocks(self, model_dir):
        server = MultiProcessServer(
            model_dir, port=0, workers=2, refresh_interval=-1,
        )
        server.start()
        pids = server.worker_pids()
        model_id = server.registry.models()[0].model_id
        shm_path = Path("/dev/shm") / server.publisher.block_for(
            model_id
        )
        if Path("/dev/shm").is_dir():
            assert shm_path.exists()
        server.drain(timeout=15.0)
        assert server.wait(timeout=1.0)
        for pid in pids:
            # A zombie still answers signal 0 until reaped; join did
            # the reaping, so the pid must be gone (or recycled).
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        if Path("/dev/shm").is_dir():
            assert not shm_path.exists()
        # New scoring work is refused outright: the socket is closed.
        with pytest.raises(OSError):
            _post(server.url, "/predict",
                  {"model": "groupA", "x": 25, "y": 60_000}, timeout=2)
        server.drain()  # idempotent

    def test_watchdog_restarts_killed_worker(self, pool):
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(
            lambda: victim not in pool.worker_pids()
            and len(pool.worker_pids()) == 2
        )

        def answers():
            try:
                status, _ = _get(pool.url, "/healthz", timeout=2)
                return status == 200
            except OSError:
                return False

        assert _wait_until(answers)

    def test_hot_reload_serves_new_model(self, pool, model_dir):
        second = Segmentation.from_rules(
            [make_rule(0, 10, 0, 10, rhs="B")]
        )
        save_segmentation(second, model_dir / "groupB.json")
        assert pool.poll_models()

        def new_model_answers():
            status, body = _post(pool.url, "/predict",
                                 {"model": "groupB", "x": 5, "y": 5})
            return status == 200 and body["in_segment"]

        # Workers pick up the sync on their control loop; both must
        # converge (the kernel round-robins accepts, so poll plenty).
        assert _wait_until(new_model_answers)
        assert _wait_until(lambda: all(
            new_model_answers() for _ in range(8)
        ))


# ----------------------------------------------------------------------
# Fleet telemetry over live HTTP
# ----------------------------------------------------------------------
def _exchange(url, path, headers=None, payload=None, timeout=5):
    """(status, response headers, body bytes) — for header assertions."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request,
                                    timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestFleetTelemetry:
    @pytest.fixture()
    def fleet_pool(self, model_dir, tmp_path):
        events_path = tmp_path / "events.jsonl"
        server = MultiProcessServer(
            model_dir, port=0, workers=2, refresh_interval=-1,
            config=WorkerConfig(batch_window_seconds=0.001,
                                telemetry_interval=0.1,
                                events_out=str(events_path)),
        )
        server.start()
        yield server, events_path
        server.drain(timeout=15.0)

    @staticmethod
    def _worker_predict_sum(fleet):
        return sum(
            int(entry["counters"].get("serve.requests_predict", 0))
            for entry in fleet["workers"].values()
        )

    def _converged(self, url, expected):
        def check():
            status, fleet = _get(url, "/fleet")
            return (status == 200 and fleet.get("mode") == "fleet"
                    and len(fleet["workers"]) == 2
                    and self._worker_predict_sum(fleet) == expected)
        return check

    def test_any_worker_scrape_reports_the_exact_fleet_sum(
            self, fleet_pool):
        server, _ = fleet_pool
        total = 24
        for _ in range(total):
            status, _body = _post(server.url, "/predict",
                                  {"model": "groupA", "x": 25,
                                   "y": 60_000})
            assert status == 200
        # Wait for both workers' telemetry to reach the parent and the
        # re-published document to cover every predict sent.
        assert _wait_until(self._converged(server.url, total))
        status, fleet = _get(server.url, "/fleet")
        assert status == 200
        assert {entry["pid"] for entry in fleet["workers"].values()} \
            == set(server.worker_pids())
        for entry in fleet["workers"].values():
            assert entry["spawn_generation"] == 1
            assert entry["restarts"] == 0
            assert entry["uptime_seconds"] > 0
            assert entry["draining"] is False
            assert entry["last_snapshot_age_seconds"] >= 0
            assert "ack_latency_seconds" in entry
            assert entry["events"]["emitted"] > 0
        assert fleet["published_age_seconds"] >= 0
        # Two scrapes land wherever the kernel round-robins the accepts;
        # the predict-family counter must be the same exact fleet-wide
        # number from either worker, equal to the per-worker sum.
        for _ in range(2):
            status, _headers, body = _exchange(
                server.url, "/metrics?format=prometheus"
            )
            assert status == 200
            families = parse_prometheus(body.decode())
            samples = (
                families["arcs_serve_requests_predict_total"]["samples"]
            )
            assert [(labels, float(value))
                    for _n, labels, value in samples] \
                == [({}, float(total))]
            # Gauges in the fleet view are per-source readings: every
            # sample carries a worker label, none is a bare sum.
            for family in families.values():
                if family["kind"] != "gauge":
                    continue
                for _name, labels, _value in family["samples"]:
                    assert "worker" in labels

    def test_metrics_scope_local_still_serves_one_process(
            self, fleet_pool):
        server, _ = fleet_pool
        status, body = _get(server.url, "/metrics?scope=local")
        assert status == 200
        assert body["scope"] == "local"
        status, _body = _get(server.url, "/metrics?scope=cluster")
        assert status == 400

    def test_request_id_round_trips_into_the_access_log(
            self, fleet_pool):
        server, events_path = fleet_pool
        inbound = "it-correlates-0042"
        status, headers, _body = _exchange(
            server.url, "/predict",
            headers={"X-Arcs-Request-Id": inbound},
            payload={"model": "groupA", "x": 25, "y": 60_000},
        )
        assert status == 200
        assert headers["X-Arcs-Request-Id"] == inbound

        def logged(request_id):
            def check():
                if not events_path.exists():
                    return False
                for line in events_path.read_text().splitlines():
                    event = json.loads(line)
                    if (event.get("request_id") == request_id
                            and event["type"] == "request"):
                        assert event["endpoint"] == "predict"
                        assert event["pid"] in server.worker_pids()
                        assert event["worker"] in (0, 1)
                        return True
                return False
            return check

        assert _wait_until(logged(inbound))
        # Without an inbound header the server assigns one and still
        # echoes it back; the same generated id lands in the log.
        status, headers, _body = _exchange(
            server.url, "/predict",
            payload={"model": "groupA", "x": 25, "y": 60_000},
        )
        assert status == 200
        generated = headers["X-Arcs-Request-Id"]
        assert re.fullmatch(r"[0-9a-f]{16}", generated)
        assert _wait_until(logged(generated))

    def test_concurrent_worker_sinks_stay_line_attributable(
            self, fleet_pool):
        server, events_path = fleet_pool
        total, threads = 60, 6

        def blast(count):
            for _ in range(count):
                _post(server.url, "/predict",
                      {"model": "groupA", "x": 25, "y": 60_000})

        pool = [threading.Thread(target=blast, args=(total // threads,))
                for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        def requests_logged():
            if not events_path.exists():
                return False
            lines = events_path.read_text().splitlines()
            return sum(
                1 for line in lines
                if json.loads(line).get("type") == "request"
                and json.loads(line).get("endpoint") == "predict"
            ) >= total

        assert _wait_until(requests_logged)
        pids = set(server.worker_pids())
        for line in events_path.read_text().splitlines():
            event = json.loads(line)  # every line is complete JSON
            assert event["pid"] in pids
            assert event["worker"] in (0, 1)

    def test_healthz_names_the_worker_process(self, fleet_pool):
        server, _ = fleet_pool
        status, body = _get(server.url, "/healthz")
        assert status == 200
        assert body["pid"] in server.worker_pids()
        assert body["worker"] in (0, 1)
        assert body["workers"] == 2
        assert body["spawn_generation"] == 1
        assert body["uptime_seconds"] > 0

    def test_fleet_counters_stay_monotone_across_a_restart(
            self, fleet_pool):
        server, _ = fleet_pool
        total = 10
        for _ in range(total):
            status, _body = _post(server.url, "/predict",
                                  {"model": "groupA", "x": 25,
                                   "y": 60_000})
            assert status == 200
        assert _wait_until(self._converged(server.url, total))
        victim = server.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(
            lambda: victim not in server.worker_pids()
            and len(server.worker_pids()) == 2
        )
        # The dead incarnation's counters were folded into the slot
        # base: the fleet-wide predict total never dips, and once the
        # respawned worker's telemetry is re-published the slot shows
        # its new incarnation.
        assert _wait_until(self._converged(server.url, total))

        def restart_published():
            status, fleet = _get(server.url, "/fleet")
            if status != 200 or fleet.get("mode") != "fleet":
                return False
            assert self._worker_predict_sum(fleet) == total
            restarted = [entry for entry in fleet["workers"].values()
                         if entry["restarts"] == 1]
            return (len(restarted) == 1
                    and restarted[0]["spawn_generation"] == 2)

        assert _wait_until(restart_published)

    def test_cli_fleet_command_renders_the_surface(self, fleet_pool,
                                                   capsys):
        server, _ = fleet_pool
        assert _wait_until(self._converged(server.url, 0))
        assert cli_main(["fleet", server.url]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out
        for pid in server.worker_pids():
            assert str(pid) in out
        assert cli_main(["fleet", server.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "fleet"
