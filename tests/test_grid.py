"""Unit tests for the rule grid bitmap."""

import numpy as np
import pytest

from repro.core.grid import RuleGrid
from repro.core.rules import BinnedRule, GridRect


class TestConstruction:
    def test_empty(self):
        grid = RuleGrid.empty(4, 3)
        assert grid.n_x == 4 and grid.n_y == 3
        assert grid.is_empty()
        assert grid.n_set == 0

    def test_from_pairs(self):
        grid = RuleGrid.from_pairs([(0, 0), (2, 1)], 3, 2)
        assert grid.n_set == 2
        assert grid.cells[0, 0] and grid.cells[2, 1]

    def test_from_rules(self):
        rules = [BinnedRule(1, 1, "A", 0.1, 0.9)]
        grid = RuleGrid.from_rules(rules, 3, 3)
        assert grid.set_pairs() == [(1, 1)]

    def test_from_rules_out_of_range(self):
        rules = [BinnedRule(5, 0, "A", 0.1, 0.9)]
        with pytest.raises(ValueError):
            RuleGrid.from_rules(rules, 3, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            RuleGrid(np.zeros(5, dtype=bool))


class TestBitmaps:
    def test_row_bitmaps(self):
        grid = RuleGrid.from_pairs([(0, 0), (0, 2), (1, 1)], 2, 3)
        rows = grid.row_bitmaps()
        assert rows == [0b101, 0b010]

    def test_round_trip(self):
        grid = RuleGrid.from_pairs([(0, 0), (1, 2), (2, 1)], 3, 3)
        rows = grid.row_bitmaps()
        back = RuleGrid.from_row_bitmaps(rows, 3)
        assert np.array_equal(grid.cells, back.cells)

    def test_empty_rows_are_zero(self):
        grid = RuleGrid.empty(3, 4)
        assert grid.row_bitmaps() == [0, 0, 0]


class TestRectOperations:
    def test_covers(self):
        grid = RuleGrid.empty(4, 4)
        grid.set_rect(GridRect(1, 2, 1, 2))
        assert grid.covers(GridRect(1, 2, 1, 2))
        assert grid.covers(GridRect(1, 1, 1, 1))
        assert not grid.covers(GridRect(0, 2, 1, 2))

    def test_clear_rect(self):
        grid = RuleGrid.empty(4, 4)
        grid.set_rect(GridRect(0, 3, 0, 3))
        grid.clear_rect(GridRect(1, 2, 1, 2))
        assert grid.n_set == 16 - 4
        assert not grid.cells[1, 1]
        assert grid.cells[0, 0]

    def test_copy_is_independent(self):
        grid = RuleGrid.empty(2, 2)
        clone = grid.copy()
        clone.set_rect(GridRect(0, 0, 0, 0))
        assert grid.is_empty()
        assert not clone.is_empty()

    def test_fraction_covered_by(self):
        grid = RuleGrid.empty(4, 1)
        grid.set_rect(GridRect(0, 3, 0, 0))
        half = [GridRect(0, 1, 0, 0)]
        assert grid.fraction_covered_by(half) == pytest.approx(0.5)
        assert grid.fraction_covered_by([]) == 0.0

    def test_fraction_covered_by_empty_grid(self):
        assert RuleGrid.empty(2, 2).fraction_covered_by([]) == 1.0
