"""Unit tests for attribute selection (entropy and PCA)."""

import numpy as np
import pytest

from repro.analysis.selection import (
    information_gain,
    joint_information_gain,
    principal_components,
    rank_attribute_pairs,
)
from repro.data.schema import Table, categorical, quantitative


@pytest.fixture()
def separable_table(fresh_rng):
    """x separates groups perfectly; noise carries no signal."""
    n = 2000
    x = fresh_rng.uniform(0, 1, n)
    noise = fresh_rng.uniform(0, 1, n)
    labels = np.where(x < 0.5, "A", "other")
    return Table.from_columns(
        [quantitative("x", 0, 1), quantitative("noise", 0, 1),
         categorical("group", ("A", "other"))],
        {"x": x, "noise": noise, "group": labels.tolist()},
    )


class TestInformationGain:
    def test_informative_beats_noise(self, separable_table):
        gain_x = information_gain(separable_table, "x", "group")
        gain_noise = information_gain(separable_table, "noise", "group")
        assert gain_x > 0.9  # near the full 1 bit
        assert gain_noise < 0.05
        assert gain_x > gain_noise

    def test_gain_bounded_by_label_entropy(self, separable_table):
        gain = information_gain(separable_table, "x", "group")
        assert gain <= 1.0 + 1e-9

    def test_rejects_bad_bins(self, separable_table):
        with pytest.raises(ValueError):
            information_gain(separable_table, "x", "group", n_bins=0)

    def test_function2_prefers_age_and_salary(self, f2_clean_table):
        informative = information_gain(f2_clean_table, "salary", "group")
        irrelevant = information_gain(f2_clean_table, "hyears", "group")
        assert informative > irrelevant


class TestJointGainAndRanking:
    def test_joint_gain_at_least_best_single(self, separable_table):
        single = information_gain(separable_table, "x", "group")
        joint = joint_information_gain(
            separable_table, "x", "noise", "group"
        )
        assert joint >= single - 0.02

    def test_ranking_puts_signal_pair_first(self, f2_clean_table):
        ranked = rank_attribute_pairs(
            f2_clean_table, ["age", "salary", "hyears", "car"], "group",
        )
        top_gain, a, b = ranked[0]
        assert {a, b} == {"age", "salary"}
        assert top_gain > ranked[-1][0]

    def test_ranking_is_sorted(self, f2_clean_table):
        ranked = rank_attribute_pairs(
            f2_clean_table, ["age", "salary", "loan"], "group",
        )
        gains = [gain for gain, _, _ in ranked]
        assert gains == sorted(gains, reverse=True)


class TestPrincipalComponents:
    def test_correlated_pair_dominates(self, fresh_rng):
        n = 1000
        base = fresh_rng.normal(0, 1, n)
        table = Table.from_columns(
            [quantitative("a"), quantitative("b"), quantitative("c")],
            {
                "a": base,
                "b": base * 2 + fresh_rng.normal(0, 0.05, n),
                "c": fresh_rng.normal(0, 1, n),
            },
        )
        eigenvalues, eigenvectors = principal_components(
            table, ["a", "b", "c"]
        )
        assert eigenvalues[0] > eigenvalues[1] > 0
        # The first component loads on the correlated pair, not c.
        assert abs(eigenvectors[0, 0]) > 0.5
        assert abs(eigenvectors[1, 0]) > 0.5
        assert abs(eigenvectors[2, 0]) < 0.2

    def test_eigenvalues_descending(self, f2_clean_table):
        eigenvalues, _ = principal_components(
            f2_clean_table, ["age", "salary", "loan", "hyears"]
        )
        assert list(eigenvalues) == sorted(eigenvalues, reverse=True)

    def test_rejects_single_attribute(self, f2_clean_table):
        with pytest.raises(ValueError):
            principal_components(f2_clean_table, ["age"])
