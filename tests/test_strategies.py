"""Unit tests for the bin layout strategies."""

import numpy as np
import pytest

from repro.binning.strategies import (
    BinLayout,
    equi_depth_layout,
    equi_width_layout,
    homogeneity_layout,
    make_layout,
)


class TestBinLayout:
    def test_basic_properties(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0, 3.0])
        assert layout.n_bins == 3
        assert layout.low == 0.0
        assert layout.high == 3.0

    def test_rejects_non_monotone_edges(self):
        with pytest.raises(ValueError):
            BinLayout("x", [0.0, 2.0, 1.0])

    def test_rejects_too_few_edges(self):
        with pytest.raises(ValueError):
            BinLayout("x", [1.0])

    def test_assign_half_open_bins(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0])
        assert list(layout.assign([0.0, 0.99, 1.0, 1.99])) == [0, 0, 1, 1]

    def test_assign_maximum_lands_in_last_bin(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0])
        assert layout.assign([2.0])[0] == 1

    def test_assign_clamps_out_of_range(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0])
        assert list(layout.assign([-5.0, 7.0])) == [0, 1]

    def test_bin_interval(self):
        layout = BinLayout("x", [0.0, 1.5, 4.0])
        assert layout.bin_interval(1) == (1.5, 4.0)

    def test_bin_interval_out_of_range(self):
        layout = BinLayout("x", [0.0, 1.0])
        with pytest.raises(IndexError):
            layout.bin_interval(1)

    def test_span_interval(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0, 3.0])
        assert layout.span_interval(0, 2) == (0.0, 3.0)
        assert layout.span_interval(1, 1) == (1.0, 2.0)

    def test_span_interval_empty_rejected(self):
        layout = BinLayout("x", [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            layout.span_interval(1, 0)


class TestEquiWidth:
    def test_uniform_widths(self):
        layout = equi_width_layout("age", 20, 80, 50)
        widths = np.diff(layout.edges)
        assert layout.n_bins == 50
        assert np.allclose(widths, widths[0])
        assert widths[0] == pytest.approx(1.2)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            equi_width_layout("x", 1, 1, 10)

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(ValueError):
            equi_width_layout("x", 0, 1, 0)


class TestEquiDepth:
    def test_balanced_counts(self, fresh_rng):
        values = fresh_rng.exponential(scale=2.0, size=10_000)
        layout = equi_depth_layout("x", values, 10)
        counts = np.bincount(layout.assign(values),
                             minlength=layout.n_bins)
        # Each bin should hold close to 1000 tuples despite the skew.
        assert counts.min() > 800
        assert counts.max() < 1200

    def test_skewed_data_gets_narrow_bins_in_dense_region(self, fresh_rng):
        values = fresh_rng.exponential(scale=1.0, size=10_000)
        layout = equi_depth_layout("x", values, 10)
        widths = np.diff(layout.edges)
        # Dense low end -> narrower early bins than late bins.
        assert widths[0] < widths[-1]

    def test_ties_collapse_edges(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        layout = equi_depth_layout("x", values, 10)
        assert layout.n_bins < 10

    def test_constant_column(self):
        layout = equi_depth_layout("x", np.array([5.0, 5.0]), 4)
        assert layout.n_bins == 1
        assert layout.assign([5.0])[0] == 0

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            equi_depth_layout("x", np.array([]), 5)


class TestHomogeneity:
    def test_uniform_data_degrades_to_balanced_bins(self, fresh_rng):
        values = fresh_rng.uniform(0, 1, size=5_000)
        layout = homogeneity_layout("x", values, 20, tolerance=0.05)
        # No uniformity signal: the budget is still used (resolution
        # matters to ARCS) and the fallback splits balance populations.
        assert layout.n_bins == 20
        counts = np.bincount(layout.assign(values),
                             minlength=layout.n_bins)
        assert counts.max() < 4 * max(1, counts.min())

    def test_bimodal_data_splits_modes(self, fresh_rng):
        values = np.concatenate([
            fresh_rng.normal(0.2, 0.02, size=2_000),
            fresh_rng.normal(0.8, 0.02, size=2_000),
        ])
        layout = homogeneity_layout("x", values, 8)
        assert layout.n_bins > 1
        # Some edge should separate the two modes.
        assert any(0.3 < edge < 0.7 for edge in layout.edges)

    def test_constant_column(self):
        layout = homogeneity_layout("x", np.array([3.0, 3.0, 3.0]), 5)
        assert layout.n_bins == 1

    def test_respects_bin_budget(self, fresh_rng):
        values = fresh_rng.exponential(scale=1.0, size=3_000)
        layout = homogeneity_layout("x", values, 6, tolerance=0.0)
        assert layout.n_bins <= 6


class TestMakeLayout:
    def test_dispatch_equi_width(self):
        layout = make_layout("equi-width", "x", np.array([1.0, 9.0]),
                             4, low=0, high=10)
        assert layout.n_bins == 4
        assert layout.low == 0 and layout.high == 10

    def test_equi_width_infers_range_from_data(self):
        layout = make_layout("equi-width", "x",
                             np.array([2.0, 8.0]), 3)
        assert layout.low == 2.0 and layout.high == 8.0

    def test_dispatch_equi_depth(self, fresh_rng):
        values = fresh_rng.uniform(0, 1, 1000)
        layout = make_layout("equi-depth", "x", values, 5)
        assert 1 <= layout.n_bins <= 5

    def test_dispatch_homogeneity(self, fresh_rng):
        values = fresh_rng.uniform(0, 1, 1000)
        layout = make_layout("homogeneity", "x", values, 5)
        assert layout.n_bins >= 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown binning strategy"):
            make_layout("magic", "x", np.array([1.0]), 5)
