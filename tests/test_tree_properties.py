"""Property-based tests on the C4.5 baseline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.decision_tree import (
    C45Tree,
    TreeConfig,
    pessimistic_errors,
)
from repro.data.schema import Table, categorical, quantitative


@st.composite
def labelled_tables(draw, max_rows=60):
    n = draw(st.integers(4, max_rows))
    xs = draw(st.lists(st.floats(0, 100, allow_nan=False),
                       min_size=n, max_size=n))
    ys = draw(st.lists(st.floats(0, 100, allow_nan=False),
                       min_size=n, max_size=n))
    labels = draw(st.lists(st.sampled_from(["a", "b"]),
                           min_size=n, max_size=n))
    return Table.from_columns(
        [quantitative("x", 0, 100), quantitative("y", 0, 100),
         categorical("g", ("a", "b"))],
        {"x": xs, "y": ys, "g": labels},
    )


class TestPessimisticBoundProperties:
    @given(st.integers(1, 5000), st.integers(0, 5000),
           st.floats(0.05, 0.45))
    def test_bound_between_observed_and_total(self, n, errors, cf):
        errors = min(errors, n)
        bound = pessimistic_errors(n, errors, cf)
        assert errors - 1e-9 <= bound <= n + 1e-9

    @given(st.integers(2, 2000), st.integers(0, 100))
    def test_bound_monotone_in_confidence(self, n, errors):
        errors = min(errors, n - 1)
        strict = pessimistic_errors(n, errors, 0.10)
        loose = pessimistic_errors(n, errors, 0.40)
        # Lower CF = more pessimism = larger upper bound.
        assert strict >= loose - 1e-9


class TestTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(labelled_tables())
    def test_predictions_are_known_labels(self, table):
        tree = C45Tree(TreeConfig(min_leaf=1)).fit(
            table, ["x", "y"], "g"
        )
        predictions = tree.predict(table)
        assert set(predictions) <= set(table.column("g"))

    @settings(max_examples=25, deadline=None)
    @given(labelled_tables())
    def test_training_accuracy_at_least_majority(self, table):
        tree = C45Tree(TreeConfig(min_leaf=1)).fit(
            table, ["x", "y"], "g"
        )
        predictions = tree.predict(table)
        accuracy = float(np.mean(predictions == table.column("g")))
        labels = table.column("g")
        majority = max(
            float(np.mean(labels == "a")),
            float(np.mean(labels == "b")),
        )
        assert accuracy >= majority - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(labelled_tables(), st.integers(1, 4))
    def test_max_depth_always_respected(self, table, max_depth):
        tree = C45Tree(TreeConfig(max_depth=max_depth, min_leaf=1)).fit(
            table, ["x", "y"], "g"
        )
        assert tree.depth <= max_depth

    @settings(max_examples=20, deadline=None)
    @given(labelled_tables())
    def test_pruned_no_bigger_than_unpruned(self, table):
        unpruned = C45Tree(TreeConfig(prune=False, min_leaf=1)).fit(
            table, ["x", "y"], "g"
        )
        pruned = C45Tree(TreeConfig(prune=True, min_leaf=1)).fit(
            table, ["x", "y"], "g"
        )
        assert pruned.n_leaves <= unpruned.n_leaves
