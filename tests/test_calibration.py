"""Unit tests for noise-floor calibration and auto bin sizing."""

import pytest

import repro
from repro.analysis.calibration import (
    ErrorDecomposition,
    decompose_error,
    label_noise_rate,
)
from repro.binning.strategies import suggest_bin_count
from repro.core.arcs import ARCS, ARCSConfig
from repro.core.optimizer import OptimizerConfig


class TestLabelNoiseRate:
    def test_clean_data_has_zero_floor(self, f2_clean_table):
        assert label_noise_rate(f2_clean_table, 2) == 0.0

    def test_perturbation_creates_floor(self, f2_table):
        floor = label_noise_rate(f2_table, 2)
        assert 0.01 < floor < 0.15

    def test_outliers_add_their_fraction(self, f2_table,
                                         f2_outlier_table):
        clean_floor = label_noise_rate(f2_table, 2)
        outlier_floor = label_noise_rate(f2_outlier_table, 2)
        # ~10% of flips land on already-noisy tuples, so the gain is a
        # bit under 0.10.
        assert 0.06 < outlier_floor - clean_floor < 0.11


class TestDecomposeError:
    def test_structural_is_excess_over_floor(self, f2_table):
        floor = label_noise_rate(f2_table, 2)
        decomposition = decompose_error(floor + 0.03, f2_table, 2)
        assert decomposition.structural == pytest.approx(0.03)

    def test_structural_clamped_at_zero(self, f2_table):
        decomposition = decompose_error(0.0, f2_table, 2)
        assert decomposition.structural == 0.0

    def test_str_mentions_both_parts(self, f2_table):
        text = str(decompose_error(0.1, f2_table, 2))
        assert "floor" in text and "structural" in text

    def test_rejects_bad_error(self, f2_table):
        with pytest.raises(ValueError):
            decompose_error(1.5, f2_table, 2)

    def test_arcs_error_mostly_floor(self, f2_table):
        """The fitted segmentation's error should be dominated by the
        irreducible noise, not by structural misfit."""
        result = ARCS(ARCSConfig(
            optimizer=OptimizerConfig(max_support_levels=6,
                                      max_confidence_levels=6),
        )).fit(f2_table, "age", "salary", "group", "A")
        decomposition = decompose_error(
            result.best_trial.report.error_rate, f2_table, 2
        )
        assert decomposition.structural < decomposition.floor


class TestSuggestBinCount:
    def test_paper_regime_gives_fifty(self):
        assert suggest_bin_count(30_000) == 50
        assert suggest_bin_count(1_000_000) == 50

    def test_small_tables_get_fewer_bins(self):
        assert suggest_bin_count(5_000) < 50
        assert suggest_bin_count(800) == 10  # clamped at the floor

    def test_monotone_in_size(self):
        counts = [suggest_bin_count(n)
                  for n in (1_000, 5_000, 20_000, 100_000)]
        assert counts == sorted(counts)

    @pytest.mark.parametrize("kwargs", [
        {"n_tuples": 0},
        {"n_tuples": 100, "target_per_cell": 0},
        {"n_tuples": 100, "min_bins": 20, "max_bins": 10},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            suggest_bin_count(**kwargs)

    def test_auto_bins_fixes_small_table_regime(self):
        """The failure mode the benchmarks exposed: 5k tuples on a fixed
        50x50 grid starve; auto bins recover the three clusters."""
        table = repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=5_000, perturbation=0.05,
                                  outlier_fraction=0.10, seed=2000)
        )
        config = ARCSConfig(
            auto_bins=True,
            optimizer=OptimizerConfig(max_support_levels=6,
                                      max_confidence_levels=10),
        )
        result = ARCS(config).fit(table, "age", "salary", "group", "A")
        assert result.binner.bin_array.n_x == suggest_bin_count(5_000)
        assert 2 <= len(result.segmentation) <= 4
        assert result.best_trial.report.error_rate < 0.30
