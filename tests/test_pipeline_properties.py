"""Property-based tests on pipeline invariants: engine monotonicity,
merging soundness, cover/segmentation consistency."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout
from repro.core.bitop import BitOpClusterer
from repro.core.grid import RuleGrid
from repro.core.merging import hull_cover_fraction, merge_clusters
from repro.mining.engine import rule_pairs


@st.composite
def populated_bin_arrays(draw, max_bins=6, max_tuples=120):
    n_x = draw(st.integers(2, max_bins))
    n_y = draw(st.integers(2, max_bins))
    n_tuples = draw(st.integers(1, max_tuples))
    array = BinArray(
        x_layout=equi_width_layout("x", 0, n_x, n_x),
        y_layout=equi_width_layout("y", 0, n_y, n_y),
        rhs_encoding=CategoricalEncoding("g", ("A", "other")),
    )
    x_bins = draw(st.lists(st.integers(0, n_x - 1), min_size=n_tuples,
                           max_size=n_tuples))
    y_bins = draw(st.lists(st.integers(0, n_y - 1), min_size=n_tuples,
                           max_size=n_tuples))
    codes = draw(st.lists(st.integers(0, 1), min_size=n_tuples,
                          max_size=n_tuples))
    array.add_chunk(x_bins, y_bins, codes)
    return array


@st.composite
def small_grids(draw, max_side=8):
    n_x = draw(st.integers(1, max_side))
    n_y = draw(st.integers(1, max_side))
    bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_y, max_size=n_y),
            min_size=n_x, max_size=n_x,
        )
    )
    return RuleGrid(np.array(bits, dtype=bool))


class TestEngineMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(populated_bin_arrays(),
           st.floats(0.0, 0.3), st.floats(0.0, 0.3),
           st.floats(0.0, 0.5), st.floats(0.0, 0.5))
    def test_tighter_thresholds_shrink_rule_set(self, array, s1, s2,
                                                c1, c2):
        """Raising either threshold can only remove rules."""
        loose = set(rule_pairs(array, 0, min(s1, s2), min(c1, c2)))
        tight = set(rule_pairs(array, 0, max(s1, s2), max(c1, c2)))
        assert tight <= loose

    @settings(max_examples=40, deadline=None)
    @given(populated_bin_arrays())
    def test_zero_thresholds_emit_every_occupied_cell(self, array):
        pairs = set(rule_pairs(array, 0, 0.0, 0.0))
        occupied = {
            (int(i), int(j))
            for i, j in np.argwhere(array.count_grid(0) > 0)
        }
        assert pairs == occupied

    @settings(max_examples=40, deadline=None)
    @given(populated_bin_arrays())
    def test_emitted_cells_meet_their_thresholds(self, array):
        min_support, min_confidence = 0.05, 0.5
        for i, j in rule_pairs(array, 0, min_support, min_confidence):
            assert array.cell_support(i, j, 0) >= min_support - 1e-12
            assert array.cell_confidence(i, j, 0) >= (
                min_confidence - 1e-12
            )


class TestMergingProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_grids(), st.floats(0.5, 1.0))
    def test_merged_rectangles_meet_cover_threshold(self, grid,
                                                    cover_fraction):
        clusters = BitOpClusterer().cluster(grid)
        merged = merge_clusters(clusters, grid, cover_fraction)
        for rect in merged:
            assert hull_cover_fraction(grid, rect) >= min(
                cover_fraction, 1.0
            ) - 1e-9 or rect in clusters

    @settings(max_examples=60, deadline=None)
    @given(small_grids())
    def test_lossless_merge_preserves_covered_cells(self, grid):
        """At cover_fraction=1.0 merging never claims an unset cell and
        never loses a set cell."""
        clusters = BitOpClusterer().cluster(grid)
        merged = merge_clusters(clusters, grid, cover_fraction=1.0)
        covered = np.zeros_like(grid.cells)
        for rect in merged:
            block = grid.cells[
                rect.x_lo:rect.x_hi + 1, rect.y_lo:rect.y_hi + 1
            ]
            assert block.all()  # nothing unset claimed
            covered[rect.x_lo:rect.x_hi + 1,
                    rect.y_lo:rect.y_hi + 1] = True
        assert np.array_equal(covered, grid.cells)

    @settings(max_examples=60, deadline=None)
    @given(small_grids(), st.floats(0.5, 1.0))
    def test_merging_never_increases_cluster_count(self, grid,
                                                   cover_fraction):
        clusters = BitOpClusterer().cluster(grid)
        merged = merge_clusters(clusters, grid, cover_fraction)
        assert len(merged) <= len(clusters)

    @settings(max_examples=60, deadline=None)
    @given(small_grids(), st.floats(0.5, 1.0))
    def test_merging_preserves_total_coverage(self, grid,
                                              cover_fraction):
        """Every set cell a cluster covered stays covered after
        merging (hulls only grow, trimming only sheds empty bands)."""
        clusters = BitOpClusterer().cluster(grid)
        merged = merge_clusters(clusters, grid, cover_fraction)
        before = grid.fraction_covered_by(clusters)
        after = grid.fraction_covered_by(merged)
        assert after >= before - 1e-12
