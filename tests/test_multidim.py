"""Unit tests for multi-attribute cluster combination (Section 5)."""

import numpy as np
import pytest

from repro.core.rules import ClusteredRule, Interval
from repro.core.segmentation import Segmentation
from repro.data.schema import Table, categorical, quantitative
from repro.extensions.multidim import (
    MultiDimRule,
    combine_segmentations,
    fit_multidim,
)


def make_3d_table(n=6000, seed=0):
    """Group A is a 3-D box in (age, salary, loan)."""
    rng = np.random.default_rng(seed)
    age = rng.uniform(20, 80, n)
    salary = rng.uniform(20_000, 150_000, n)
    loan = rng.uniform(0, 500_000, n)
    in_box = (
        (age >= 30) & (age < 50)
        & (salary >= 50_000) & (salary < 100_000)
        & (loan >= 100_000) & (loan < 300_000)
    )
    labels = np.where(in_box, "A", "other")
    return Table.from_columns(
        [quantitative("age", 20, 80),
         quantitative("salary", 20_000, 150_000),
         quantitative("loan", 0, 500_000),
         categorical("group", ("A", "other"))],
        {"age": age, "salary": salary, "loan": loan,
         "group": labels.tolist()},
    )


def seg(x_attr, x_lo, x_hi, y_attr, y_lo, y_hi, confidence=0.9):
    rule = ClusteredRule(
        x_attr, y_attr, Interval(x_lo, x_hi), Interval(y_lo, y_hi),
        "group", "A", support=0.05, confidence=confidence,
    )
    return Segmentation.from_rules([rule])


class TestMultiDimRule:
    def test_matches_requires_all_intervals(self, tiny_table):
        rule = MultiDimRule(
            intervals={
                "age": Interval(20, 40),
                "salary": Interval(50_000, 100_000),
            },
            rhs_attribute="group", rhs_value="A",
            support=0.1, confidence=0.9,
        )
        got = rule.matches(tiny_table)
        expected = (
            (tiny_table.column("age") >= 20)
            & (tiny_table.column("age") < 40)
            & (tiny_table.column("salary") >= 50_000)
            & (tiny_table.column("salary") < 100_000)
        )
        assert (got == expected).all()

    def test_attributes_sorted(self):
        rule = MultiDimRule(
            intervals={"b": Interval(0, 1), "a": Interval(0, 1)},
            rhs_attribute="group", rhs_value="A",
            support=0.1, confidence=0.9,
        )
        assert rule.attributes == ("a", "b")

    def test_rejects_empty_intervals(self):
        with pytest.raises(ValueError):
            MultiDimRule({}, "group", "A", 0.1, 0.9)

    def test_str_renders_all_conjuncts(self):
        rule = MultiDimRule(
            intervals={"age": Interval(30, 50),
                       "loan": Interval(0, 100)},
            rhs_attribute="group", rhs_value="A",
            support=0.1, confidence=0.9,
        )
        assert "age" in str(rule) and "loan" in str(rule)


class TestCombineSegmentations:
    def test_recovers_3d_box(self):
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 50_000, 100_000)
        seg_bc = seg("salary", 50_000, 100_000, "loan", 100_000, 300_000)
        combined = combine_segmentations(
            seg_ab, seg_bc, table, min_support=0.01, min_confidence=0.8
        )
        assert len(combined) == 1
        box = combined[0]
        assert box.attributes == ("age", "loan", "salary")
        assert box.confidence > 0.95

    def test_shared_interval_intersected(self):
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 40_000, 100_000)
        seg_bc = seg("salary", 50_000, 120_000, "loan", 100_000, 300_000)
        combined = combine_segmentations(
            seg_ab, seg_bc, table, min_support=0.005, min_confidence=0.5
        )
        assert combined
        salary = combined[0].intervals["salary"]
        assert salary.low == 50_000 and salary.high == 100_000

    def test_disjoint_shared_intervals_produce_nothing(self):
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 20_000, 40_000)
        seg_bc = seg("salary", 100_000, 150_000, "loan", 0, 300_000)
        assert combine_segmentations(
            seg_ab, seg_bc, table, 0.0, 0.0
        ) == []

    def test_verification_filters_sparse_boxes(self):
        """Two projections can overlap on B while the 3-D box is empty —
        verification must catch that."""
        rng = np.random.default_rng(1)
        n = 4000
        age = rng.uniform(0, 10, n)
        salary = rng.uniform(0, 10, n)
        loan = rng.uniform(0, 10, n)
        # Group A occupies two separate 3-D corners whose (age,salary)
        # and (salary,loan) projections overlap in salary 4..6.
        corner1 = (age < 3) & (salary > 4) & (salary < 6) & (loan < 3)
        corner2 = (age > 7) & (salary > 4) & (salary < 6) & (loan > 7)
        labels = np.where(corner1 | corner2, "A", "other")
        table = Table.from_columns(
            [quantitative("age", 0, 10), quantitative("salary", 0, 10),
             quantitative("loan", 0, 10),
             categorical("group", ("A", "other"))],
            {"age": age, "salary": salary, "loan": loan,
             "group": labels.tolist()},
        )
        # Projections that mix the corners: age from corner1, loan from
        # corner2 -> the combined box contains no A tuples.
        seg_ab = seg("age", 0, 3, "salary", 4, 6)
        seg_bc = seg("salary", 4, 6, "loan", 7, 10)
        combined = combine_segmentations(
            seg_ab, seg_bc, table, min_support=0.001, min_confidence=0.5
        )
        assert combined == []

    def test_mismatched_criteria_rejected(self):
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 50_000, 100_000)
        other_rule = ClusteredRule(
            "salary", "loan", Interval(0, 1), Interval(0, 1),
            "group", "other", support=0.1, confidence=0.9,
        )
        seg_bc = Segmentation.from_rules([other_rule])
        with pytest.raises(ValueError, match="different criteria"):
            combine_segmentations(seg_ab, seg_bc, table, 0.0, 0.0)

    def test_no_shared_attribute_rejected(self):
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 50_000, 100_000)
        hvalue_rule = ClusteredRule(
            "hyears", "loan", Interval(0, 1), Interval(0, 1),
            "group", "A", support=0.1, confidence=0.9,
        )
        seg_cd = Segmentation.from_rules([hvalue_rule])
        with pytest.raises(ValueError, match="share no attribute"):
            combine_segmentations(seg_ab, seg_cd, table, 0.0, 0.0)

    def test_chaining_multidim_rules(self):
        """combine() accepts its own output, growing the attribute set."""
        table = make_3d_table()
        seg_ab = seg("age", 30, 50, "salary", 50_000, 100_000)
        seg_bc = seg("salary", 50_000, 100_000, "loan", 100_000, 300_000)
        three = combine_segmentations(seg_ab, seg_bc, table, 0.01, 0.5)
        again = combine_segmentations(
            three, seg_ab, table, min_support=0.01, min_confidence=0.5
        )
        assert again
        assert again[0].attributes == ("age", "loan", "salary")


class TestFitMultidim:
    def make_wide_box_table(self, n=20_000, seed=4):
        """A 3-D box wide in every dimension so 2-D projections stay
        confident enough for ARCS to cluster."""
        rng = np.random.default_rng(seed)
        age = rng.uniform(20, 80, n)
        salary = rng.uniform(20_000, 150_000, n)
        loan = rng.uniform(0, 500_000, n)
        in_box = (
            (age >= 25) & (age < 65)
            & (salary >= 40_000) & (salary < 120_000)
            & (loan >= 50_000) & (loan < 450_000)
        )
        labels = np.where(in_box, "A", "other")
        return Table.from_columns(
            [quantitative("age", 20, 80),
             quantitative("salary", 20_000, 150_000),
             quantitative("loan", 0, 500_000),
             categorical("group", ("A", "other"))],
            {"age": age, "salary": salary, "loan": loan,
             "group": labels.tolist()},
        )

    def test_recovers_planted_box_end_to_end(self):
        from repro.core.arcs import ARCSConfig
        from repro.core.optimizer import OptimizerConfig

        table = self.make_wide_box_table()
        boxes = fit_multidim(
            table, ["age", "salary", "loan"], "group", "A",
            min_support=0.05, min_confidence=0.8,
            arcs_config=ARCSConfig(
                optimizer=OptimizerConfig(max_support_levels=6,
                                          max_confidence_levels=8),
            ),
        )
        assert boxes
        best = max(boxes, key=lambda box: box.support)
        assert best.attributes == ("age", "loan", "salary")
        assert best.confidence > 0.85
        assert abs(best.intervals["age"].low - 25) < 6
        assert abs(best.intervals["salary"].high - 120_000) < 15_000

    def test_two_attributes_degenerates_to_plain_arcs(self):
        from repro.core.arcs import ARCSConfig
        from repro.core.optimizer import OptimizerConfig

        table = self.make_wide_box_table(n=10_000)
        boxes = fit_multidim(
            table, ["age", "salary"], "group", "A",
            arcs_config=ARCSConfig(
                optimizer=OptimizerConfig(max_support_levels=5,
                                          max_confidence_levels=5),
            ),
        )
        assert boxes
        assert boxes[0].attributes == ("age", "salary")

    def test_rejects_single_attribute(self):
        table = self.make_wide_box_table(n=1_000)
        with pytest.raises(ValueError):
            fit_multidim(table, ["age"], "group", "A")
