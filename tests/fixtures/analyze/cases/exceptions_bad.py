"""Fixture: every ``exception-policy`` rule fires at least once."""


def load(path):
    try:
        return open(path).read()
    except:
        return None


def parse(blob):
    try:
        return int(blob)
    except Exception:
        pass


def convert(blob):
    try:
        return float(blob)
    except Exception:
        return 0.0


def lookup(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]
