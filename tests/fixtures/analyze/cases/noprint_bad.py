"""Fixture: ``no-print`` fires on a bare print call."""


def report(rows):
    print(len(rows))
