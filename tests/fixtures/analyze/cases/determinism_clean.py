"""Fixture: ``determinism`` allows seeded Generators."""

import numpy as np


def shuffle(values, seed):
    rng = np.random.default_rng(seed)
    return rng.permutation(values)
