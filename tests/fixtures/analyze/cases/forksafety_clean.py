"""Known-negative cases for ``fork-safety``: the sanctioned remedies.

The same shapes as ``forksafety_bad.py``, each cured the way
``serve/workers.py`` cures it: an ``after_in_child`` re-arm hook for
the inherited locks (rules A and B), a *forgetter* that drops the
fork-copied sink without closing it before the child installs a fresh
one (rule C), and a block *name* crossing the fork boundary instead of
the handle (rule D).  The checker must stay silent on this file.
"""

import multiprocessing
import os
import threading

_STATE_LOCK = threading.Lock()
_events = open("/tmp/forksafety_clean_events.jsonl", "a")


def _rearm_after_fork() -> None:
    global _STATE_LOCK
    _STATE_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_rearm_after_fork)


def update_state() -> None:
    with _STATE_LOCK:
        _events.write("update\n")


def _forget_events() -> None:
    """Drop the fork-copied sink without closing (no double flush)."""
    global _events
    _events = open(f"/tmp/forksafety_clean_{os.getpid()}.jsonl", "a")


def _worker(name: str) -> None:
    _forget_events()
    with _STATE_LOCK:
        pass


def watch() -> None:
    thread = threading.Thread(target=update_state, daemon=True)
    thread.start()


def spawn_worker() -> None:
    process = multiprocessing.Process(
        target=_worker, args=("block-name",)
    )
    process.start()


def main() -> None:
    watch()
    spawn_worker()
