"""Known-positive cases for ``resource-lifetime``.

Parsed, never imported.  Expected findings:

1. ``leak_on_branch`` — the early-return path drops an open file;
2. ``double_close`` — the handle is closed on every path, then again;
3. ``close_under_views`` — PR 7's shared-memory regression: the block
   is closed while a numpy view over ``shm.buf`` has escaped (the
   mapping is unmapped under the caller's array);
4. ``thread_never_joined`` — a non-daemon thread is started, never
   joined, and never escapes the frame;
5. ``leak_by_rebind`` — the first socket is dropped, still open, when
   the name is rebound to a second one.
"""

import socket
import threading
from multiprocessing.shared_memory import SharedMemory

import numpy as np


def leak_on_branch(path: str, strict: bool) -> int:
    handle = open(path)
    if strict:
        return 0  # leaks 'handle'
    data = len(handle.read())
    handle.close()
    return data


def double_close(path: str) -> str:
    handle = open(path)
    text = handle.read()
    handle.close()
    handle.close()  # second close is certain
    return text


def close_under_views(name: str) -> "np.ndarray":
    shm = SharedMemory(name=name)
    table = np.ndarray((16,), dtype=np.float64, buffer=shm.buf)
    result = table * 2.0
    shm.close()  # unmaps the buffer under 'table'
    return table


def thread_never_joined(work) -> None:
    worker = threading.Thread(target=work)
    worker.start()
    # never joined, not daemonic, never escapes


def leak_by_rebind(host: str) -> None:
    sock = socket.socket()
    sock = socket.socket()  # first socket leaks
    sock.connect((host, 80))
    sock.close()
