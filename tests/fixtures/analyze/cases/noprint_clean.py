"""Fixture: ``no-print`` stays silent on logging output."""

import logging

logger = logging.getLogger(__name__)


def report(rows):
    logger.info("%d rows", len(rows))
