"""Known-negative cases for ``resource-lifetime``: the sanctioned shapes.

Each pattern here is the cure for a positive in ``resource_bad.py`` —
``with`` blocks, ``try/finally`` release, deliberate escape (the caller
owns the handle), the ``weakref.finalize`` deferred-close idiom from
``serve/workers.py``, daemon threads, and the close-then-rename tempfile
publish from ``stream/refitter.py``.  The checker must stay silent.
"""

import os
import socket
import tempfile
import threading
import weakref
from multiprocessing.shared_memory import SharedMemory

import numpy as np

_REGISTRY: dict[str, object] = {}


def managed_read(path: str) -> int:
    with open(path) as handle:
        return len(handle.read())


def finally_read(path: str) -> int:
    handle = open(path)
    try:
        return len(handle.read())
    finally:
        handle.close()


def escape_by_return(path: str):
    handle = open(path)
    return handle  # caller owns the handle now


def escape_by_registry(name: str) -> None:
    sock = socket.socket()
    _REGISTRY[name] = sock  # ownership moves to the registry


def deferred_close(name: str) -> "np.ndarray":
    """The workers.py idiom: close rides on the view's finalizer."""
    shm = SharedMemory(name=name)
    table = np.ndarray((16,), dtype=np.float64, buffer=shm.buf)
    weakref.finalize(table, shm.close)
    return table


def daemon_watch(work) -> None:
    worker = threading.Thread(target=work, daemon=True)
    worker.start()


def prepared_thread(work) -> "threading.Thread":
    worker = threading.Thread(target=work)
    return worker  # never started here; the caller runs it


def publish_atomic(payload: bytes, destination: str) -> None:
    """The refitter._publish shape: close, then rename into place."""
    handle = tempfile.NamedTemporaryFile(
        mode="wb", delete=False, dir=os.path.dirname(destination)
    )
    try:
        handle.write(payload)
    finally:
        handle.close()
    os.replace(handle.name, destination)
