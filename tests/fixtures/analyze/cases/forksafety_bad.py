"""Known-positive cases for ``fork-safety``: PR 7's bugs, distilled.

Parsed, never imported.  Expected findings:

1. rule A — ``spawn_worker`` forks while this module also starts a
   watchdog thread, and nothing registers an
   ``os.register_at_fork(after_in_child=...)`` re-arm hook;
2. rule B — the child entry point ``_worker`` re-acquires the
   module-level ``_STATE_LOCK`` that parent-side ``update_state`` also
   holds (a fork landing inside the parent's critical section
   deadlocks the child);
3. rule C — the child calls ``_teardown``, which ``close()``s the
   fork-copied module-global event log, flushing the parent's
   buffered lines a second time (no forgetter in sight);
4. rule D — an open file handle is passed to the child through
   ``Process(args=...)``; the copy shares the parent's seek offset.
"""

import multiprocessing
import threading

_STATE_LOCK = threading.Lock()
_events = open("/tmp/forksafety_fixture_events.jsonl", "a")


def update_state() -> None:
    with _STATE_LOCK:
        _events.write("update\n")


def _teardown() -> None:
    _events.close()  # fork-copied buffer: parent lines flush twice


def _worker() -> None:
    with _STATE_LOCK:  # fork-inherited; may be held by the parent
        pass
    _teardown()


def watch() -> None:
    thread = threading.Thread(target=update_state, daemon=True)
    thread.start()


def spawn_worker() -> None:
    log = open("/tmp/forksafety_fixture.log", "w")
    process = multiprocessing.Process(target=_worker, args=(log,))
    process.start()
    log.close()


def main() -> None:
    watch()
    spawn_worker()
