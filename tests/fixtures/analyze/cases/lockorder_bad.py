"""Known-positive cases for the ``lock-order`` checker.

Parsed by the analyzer, never imported: each class seeds one rule.
Expected findings (tests/test_analyze.py asserts on these):

1. a direct nested-``with`` ordering cycle (``Transfer.credit`` takes
   A then B, ``Transfer.debit`` takes B then A);
2. an *interprocedural* cycle: ``Journal.append`` holds its own lock
   and calls into ``Index.insert``, which holds the index lock and
   calls back into ``Journal.flush`` — the classic two-object
   deadlock no single file walk can see;
3. a fork under a held lock (``Pool.grow``);
4. a blocking ``join()`` under a held lock (``Pool.shrink``).
"""

import multiprocessing
import os
import threading

_LOCK_A = threading.Lock()
_LOCK_B = threading.Lock()


def _child() -> None:
    os.getpid()


class Transfer:
    def credit(self) -> None:
        with _LOCK_A:
            with _LOCK_B:  # A -> B
                pass

    def debit(self) -> None:
        with _LOCK_B:
            with _LOCK_A:  # B -> A: cycle with credit()
                pass


class Journal:
    def __init__(self, index: "Index") -> None:
        self._lock = threading.Lock()
        self.index = index
        self.entries: list[str] = []

    def append(self, entry: str) -> None:
        with self._lock:
            self.entries.append(entry)
            self.index.insert(entry)  # Journal._lock -> Index._lock

    def flush(self) -> None:
        with self._lock:
            self.entries.clear()


class Index:
    def __init__(self, journal: Journal) -> None:
        self._lock = threading.Lock()
        self.journal = journal

    def insert(self, entry: str) -> None:
        with self._lock:
            self.journal.flush()  # Index._lock -> Journal._lock: cycle


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.workers: dict[int, object] = {}

    def grow(self, index: int) -> None:
        with self._lock:
            process = multiprocessing.Process(target=_child)
            process.start()  # forked while holding Pool._lock
            self.workers[index] = process

    def shrink(self) -> None:
        worker = threading.Thread(target=_child)
        worker.start()
        with self._lock:
            worker.join()  # blocking join under Pool._lock
