"""Fixture: an ``arcs-analyze: ignore[...]`` comment drops the finding."""


def report(rows):
    print(len(rows))  # arcs-analyze: ignore[no-print]


def report_all(rows):
    print(rows)  # arcs-analyze: ignore
