"""Fixture: every ``concurrency`` rule fires at least once."""

import threading


class BadService:
    def __init__(self):
        self._lock = threading.Lock()
        self.counter = 0
        self.snapshot = {}
        self.mode = "idle"

    def set_mode(self, mode):
        with self._lock:
            self.mode = mode

    def reset_mode(self):
        self.mode = "idle"

    def bump(self):
        self.counter += 1

    def record(self, key, value):
        self.snapshot[key] = value

    def merge(self, extra):
        self.snapshot.update(extra)

    def rebuild(self, models):
        table = {}
        self.snapshot = table
        table["late"] = models

    def guard(self):
        lock = threading.Lock()
        with lock:
            return self.counter
