"""Fixture: ``exception-policy`` stays silent on disciplined handling."""

import logging

logger = logging.getLogger(__name__)


class FixtureError(KeyError):
    """A library error type (subclasses the builtin for callers)."""


def lookup(table, key):
    if key not in table:
        raise FixtureError(key)
    return table[key]


def _fetch(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]


def robust(blob):
    try:
        return int(blob)
    except ValueError:
        return 0


def boundary(action):
    try:
        return action()
    except Exception:
        logger.exception("action failed")
        return None
