"""Fixture: ``determinism`` fires on global and unseeded RNG use."""

import random

import numpy as np


def shuffle(values):
    random.shuffle(values)
    noise = np.random.rand(len(values))
    rng = np.random.default_rng()
    return rng.permutation(values) + noise
