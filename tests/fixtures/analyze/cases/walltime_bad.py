"""Fixture: ``no-wall-time`` fires on every spelling of time.time()."""

import time as clock
from time import time


def elapsed(started):
    return clock.time() - started


def also_elapsed(started):
    return time() - started
