"""Fixture: ``no-wall-time`` allows perf_counter and waived timestamps."""

import time
from time import perf_counter


def elapsed(started):
    return perf_counter() - started


def stamp():
    return time.time()  # wall-clock: ok (report timestamp)
