"""Known-negative cases for ``lock-order``: the sanctioned shapes.

Every pattern here is one a positive in ``lockorder_bad.py`` almost
matches — consistent ordering instead of a cycle, re-entrant locks,
forking *outside* the critical section, joining after release.
The checker must stay silent on this file.
"""

import multiprocessing
import threading

_LOCK_A = threading.Lock()
_LOCK_B = threading.Lock()


def _child() -> None:
    pass


class Ordered:
    """Both paths take A before B: a consistent order has no cycle."""

    def credit(self) -> None:
        with _LOCK_A:
            with _LOCK_B:
                pass

    def debit(self) -> None:
        with _LOCK_A:
            with _LOCK_B:
                pass


class Reentrant:
    """An RLock may be re-acquired by its holder; no self-deadlock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()

    def outer(self) -> None:
        with self._lock:
            self.inner()

    def inner(self) -> None:
        with self._lock:
            pass


class Pool:
    """Forks and joins happen outside the critical section; the lock
    only guards the bookkeeping (the serve/workers.py shape)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.workers: dict[int, object] = {}

    def grow(self, index: int) -> None:
        process = multiprocessing.Process(target=_child)
        process.start()
        with self._lock:
            self.workers[index] = process

    def shrink(self, index: int) -> None:
        with self._lock:
            worker = self.workers.pop(index)
        worker.join()
