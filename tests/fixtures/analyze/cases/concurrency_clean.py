"""Fixture: ``concurrency`` accepts the repo's two sanctioned shapes —
lock-guarded writes and immutable snapshots swapped in one assignment."""

import threading


class CleanService:
    def __init__(self):
        self._lock = threading.Lock()
        self.counter = 0
        self.snapshot = {}

    def bump(self):
        with self._lock:
            self.counter += 1

    def rebuild(self, models):
        table = {}
        for name, model in models.items():
            table[name] = model
        self.snapshot = table

    def read(self, key):
        return self.snapshot.get(key)
