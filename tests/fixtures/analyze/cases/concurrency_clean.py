"""Fixture: ``concurrency`` accepts the repo's two sanctioned shapes —
lock-guarded writes and immutable snapshots swapped in one assignment."""

import threading


class CleanService:
    def __init__(self):
        self._lock = threading.Lock()
        self.counter = 0
        self.snapshot = {}

    def bump(self):
        with self._lock:
            self.counter += 1

    def rebuild(self, models):
        table = {}
        for name, model in models.items():
            table[name] = model
        self.snapshot = table

    def read(self, key):
        return self.snapshot.get(key)


class PrimitiveShapes:
    """Per-call primitives that escape, primitive-typed attributes, and
    private methods called only under the lock are all sanctioned."""

    def __init__(self):
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.jobs = {}

    def schedule(self, worker):
        done = threading.Event()  # escapes into the closure

        def run():
            worker()
            done.set()

        threading.Thread(target=run, daemon=True).start()
        return done

    def handoff(self):
        self.ready = threading.Event()  # escapes via the attribute
        return self.ready

    def pause(self, timeout):
        threading.Event().wait(timeout)  # interruptible-sleep idiom

    def request_stop(self):
        self._stop.set()  # mutator on a synchronisation primitive

    def reset(self):
        self._stop.clear()

    def submit(self, name, job):
        with self._lock:
            self._apply(name, job)

    def cancel(self, name):
        with self._lock:
            self._apply(name, None)

    def _apply(self, name, job):
        self.jobs[name] = job  # every call site holds self._lock
