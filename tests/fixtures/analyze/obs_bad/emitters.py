"""Fixture emitters: one undeclared name, one kind mismatch."""

from repro.obs import metrics, tracing


def handle():
    metrics.inc("demo.requests")
    metrics.set_gauge("demo.requests", 1)
    metrics.inc("demo.unknown")
    with tracing.trace("demo.run"):
        pass
