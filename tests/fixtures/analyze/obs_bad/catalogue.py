"""Fixture catalogue: one orphan, one kind mismatch waiting to happen."""

METRICS: dict[str, tuple[str, str]] = {
    'demo.requests':
        ('counter',
         'requests served'),
    'demo.orphan':
        ('counter',
         'declared but never emitted'),
}

SPANS: dict[str, str] = {
    'demo.run':
        'one fixture run',
}
