"""Fixture catalogue: in sync with ``emitters.py`` and the docs table."""

METRICS: dict[str, tuple[str, str]] = {
    'demo.latency_seconds':
        ('histogram',
         'time per request'),
    'demo.requests':
        ('counter',
         'requests served'),
    'demo.requests_{endpoint}':
        ('counter',
         'requests per endpoint'),
}

SPANS: dict[str, str] = {
    'demo.run':
        'one fixture run',
}
