"""Fixture emitters: every name (and the f-string template) declared."""

from repro.obs import metrics, tracing


def handle(endpoint):
    metrics.inc("demo.requests")
    metrics.inc(f"demo.requests_{endpoint}")
    metrics.observe("demo.latency_seconds", 0.1)
    with tracing.trace("demo.run"):
        pass
