"""Unit tests for CSV round trips and streaming ingestion."""

import pytest

from repro.data.io import read_csv, stream_csv, write_csv
from repro.data.schema import Table, categorical, quantitative

SPECS = [
    quantitative("age", 20, 80),
    quantitative("salary", 20_000, 150_000),
    categorical("group", ("A", "other")),
]


@pytest.fixture()
def sample_table():
    return Table.from_columns(SPECS, {
        "age": [25.0, 45.5, 70.0],
        "salary": [60_000.0, 90_000.0, 40_000.0],
        "group": ["A", "other", "A"],
    })


class TestRoundTrip:
    def test_write_then_read(self, sample_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample_table, path)
        loaded = read_csv(path, SPECS)
        assert len(loaded) == 3
        assert list(loaded.column("age")) == [25.0, 45.5, 70.0]
        assert list(loaded.column("group")) == ["A", "other", "A"]

    def test_header_order_independent(self, sample_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample_table.select(["group", "age", "salary"]), path)
        loaded = read_csv(path, SPECS)
        assert list(loaded.column("salary")) == [
            60_000.0, 90_000.0, 40_000.0
        ]

    def test_empty_table_round_trip(self, tmp_path):
        empty = Table.from_columns(
            SPECS, {"age": [], "salary": [], "group": []}
        )
        path = tmp_path / "empty.csv"
        write_csv(empty, path)
        loaded = read_csv(path, SPECS)
        assert len(loaded) == 0


class TestStreaming:
    def test_chunked_reading(self, sample_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample_table, path)
        chunks = list(stream_csv(path, SPECS, chunk_rows=2))
        assert [len(chunk) for chunk in chunks] == [2, 1]

    def test_chunks_recombine_to_original(self, sample_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample_table, path)
        chunks = list(stream_csv(path, SPECS, chunk_rows=1))
        combined = chunks[0]
        for chunk in chunks[1:]:
            combined = combined.concat(chunk)
        assert list(combined.column("age")) == list(
            sample_table.column("age")
        )

    def test_rejects_nonpositive_chunk(self, sample_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample_table, path)
        with pytest.raises(ValueError):
            list(stream_csv(path, SPECS, chunk_rows=0))

    def test_header_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("age,wrong\n25,1\n")
        with pytest.raises(ValueError, match="header mismatch"):
            list(stream_csv(path, SPECS))

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        assert list(stream_csv(path, SPECS)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("age,salary,group\n25,50000,A\n\n30,60000,other\n")
        chunks = list(stream_csv(path, SPECS))
        assert sum(len(chunk) for chunk in chunks) == 2

    def test_ragged_row_reported_with_line_number(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("age,salary,group\n25,50000,A\n30,60000\n")
        with pytest.raises(ValueError, match="line 3"):
            list(stream_csv(path, SPECS))

    def test_non_numeric_value_reported(self, tmp_path):
        path = tmp_path / "badnum.csv"
        path.write_text("age,salary,group\ntwenty,50000,A\n")
        with pytest.raises(ValueError, match="not a number"):
            list(stream_csv(path, SPECS))
