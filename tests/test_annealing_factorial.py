"""Unit tests for the alternative optimizers (annealing, factorial)."""

import pytest

from repro.core.clusterer import GridClusterer
from repro.core.mdl import MDLWeights
from repro.core.optimizer import HeuristicOptimizer, OptimizerConfig
from repro.core.verifier import Verifier
from repro.extensions.annealing import AnnealingConfig, AnnealingOptimizer
from repro.extensions.factorial import factorial_search


@pytest.fixture(scope="module")
def search_setup(request):
    import repro
    from repro.binning import bin_table
    table = repro.generate_synthetic(
        repro.SyntheticConfig(n_tuples=8_000, function_id=2,
                              perturbation=0.05, seed=21)
    )
    binner = bin_table(table, "age", "salary", "group", 25, 25)
    code = binner.rhs_encoding.code_of("A")
    clusterer = GridClusterer()
    verifier = Verifier(table, "group", "A", sample_size=800, repeats=3)
    return binner.bin_array, code, clusterer, verifier


class TestAnnealingConfig:
    @pytest.mark.parametrize("kwargs", [
        {"cooling": 1.0},
        {"cooling": 0.0},
        {"initial_temperature": 0.0},
        {"steps_per_temperature": 0},
        {"max_support_levels": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AnnealingConfig(**kwargs)


class TestAnnealingOptimizer:
    def test_finds_reasonable_segmentation(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        optimizer = AnnealingOptimizer(
            clusterer, verifier,
            config=AnnealingConfig(initial_temperature=1.5,
                                   min_temperature=0.05, seed=3),
        )
        result = optimizer.search(bin_array, code)
        assert result.best.n_clusters >= 1
        assert result.best.report.error_rate < 0.2
        assert result.stopped_by == "annealing schedule"

    def test_best_is_minimum_of_history(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        optimizer = AnnealingOptimizer(
            clusterer, verifier,
            config=AnnealingConfig(min_temperature=0.2, seed=3),
        )
        result = optimizer.search(bin_array, code)
        assert result.best.mdl_cost == min(
            trial.mdl_cost for trial in result.history
        )

    def test_deterministic_for_fixed_seed(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        config = AnnealingConfig(min_temperature=0.3, seed=9)
        a = AnnealingOptimizer(clusterer, verifier,
                               config=config).search(bin_array, code)
        b = AnnealingOptimizer(clusterer, verifier,
                               config=config).search(bin_array, code)
        assert a.best.mdl_cost == b.best.mdl_cost
        assert len(a.history) == len(b.history)

    def test_comparable_to_heuristic(self, search_setup):
        """Annealing should land within an MDL bit or two of the
        heuristic walk on this easy problem."""
        bin_array, code, clusterer, verifier = search_setup
        heuristic = HeuristicOptimizer(
            clusterer, verifier, MDLWeights(),
            OptimizerConfig(max_support_levels=8,
                            max_confidence_levels=6),
        ).search(bin_array, code)
        annealed = AnnealingOptimizer(
            clusterer, verifier,
            config=AnnealingConfig(min_temperature=0.05, seed=1),
        ).search(bin_array, code)
        assert annealed.best.mdl_cost <= heuristic.best.mdl_cost + 2.0


class TestFactorialSearch:
    def test_runs_and_reports_effects(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        report = factorial_search(
            bin_array, code, clusterer, verifier, rounds=2
        )
        assert len(report.rounds) == 2
        assert report.best.n_clusters >= 1
        first = report.rounds[0]
        assert len(first.corner_costs) == 4

    def test_each_round_costs_at_most_four_new_runs(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        report = factorial_search(
            bin_array, code, clusterer, verifier, rounds=3
        )
        assert len(report.history) <= 4 * 3

    def test_ranges_shrink_between_rounds(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        report = factorial_search(
            bin_array, code, clusterer, verifier, rounds=2, shrink=0.5
        )
        first, second = report.rounds
        first_span = first.support_levels[1] - first.support_levels[0]
        second_span = second.support_levels[1] - second.support_levels[0]
        assert second_span <= first_span * 0.5 + 1e-12

    def test_rejects_bad_arguments(self, search_setup):
        bin_array, code, clusterer, verifier = search_setup
        with pytest.raises(ValueError):
            factorial_search(bin_array, code, clusterer, verifier,
                             rounds=0)
        with pytest.raises(ValueError):
            factorial_search(bin_array, code, clusterer, verifier,
                             shrink=1.0)
