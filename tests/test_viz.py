"""Unit tests for ASCII rendering and report tables."""

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect
from repro.viz.ascii import render_grid, render_side_by_side
from repro.viz.report import format_series_table, format_table


class TestRenderGrid:
    def test_dimensions(self):
        grid = RuleGrid.empty(5, 3)
        text = render_grid(grid)
        lines = text.splitlines()
        # Header + 3 rows (y) + axis line.
        assert len(lines) == 1 + 3 + 1

    def test_set_cells_marked(self):
        grid = RuleGrid.from_pairs([(0, 0)], 3, 2)
        text = render_grid(grid)
        # y grows upward: cell (0, 0) is in the bottom row.
        bottom_row = text.splitlines()[-2]
        assert bottom_row.strip().startswith("| #")

    def test_cluster_marks(self):
        grid = RuleGrid.from_pairs([(1, 1)], 3, 3)
        text = render_grid(grid, [GridRect(1, 1, 1, 1)])
        assert "@" in text
        text_with_empty_cluster = render_grid(
            RuleGrid.empty(3, 3), [GridRect(0, 0, 0, 0)]
        )
        assert "o" in text_with_empty_cluster

    def test_axis_labels(self):
        text = render_grid(RuleGrid.empty(2, 2), x_label="age",
                           y_label="salary")
        assert "age" in text and "salary" in text


class TestRenderSideBySide:
    def test_titles_and_alignment(self):
        left = RuleGrid.empty(4, 3)
        right = RuleGrid.from_pairs([(0, 0)], 4, 3)
        text = render_side_by_side(left, right, "before", "after")
        lines = text.splitlines()
        assert "before" in lines[0] and "after" in lines[0]
        assert len(lines) == 1 + 3

    def test_height_mismatch_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            render_side_by_side(RuleGrid.empty(2, 2),
                                RuleGrid.empty(2, 3))


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatTrialHistory:
    def test_renders_trials(self, f2_binner, f2_clean_table):
        from repro.core.clusterer import GridClusterer
        from repro.core.mdl import MDLWeights
        from repro.core.optimizer import (
            HeuristicOptimizer,
            OptimizerConfig,
        )
        from repro.core.verifier import Verifier
        from repro.viz.report import format_trial_history

        optimizer = HeuristicOptimizer(
            GridClusterer(),
            Verifier(f2_clean_table, "group", "A", sample_size=400,
                     repeats=2),
            MDLWeights(),
            OptimizerConfig(max_support_levels=3,
                            max_confidence_levels=3),
        )
        result = optimizer.search(f2_binner.bin_array, 0)
        text = format_trial_history(result.history)
        lines = text.splitlines()
        assert "MDL cost" in lines[0]
        assert len(lines) == 2 + len(result.history)


class TestFormatSeriesTable:
    def test_one_column_per_series(self):
        text = format_series_table(
            "n", [10, 20],
            {"arcs": [0.1, 0.2], "c45": [0.3, 0.4]},
        )
        header = text.splitlines()[0]
        assert "n" in header and "arcs" in header and "c45" in header

    def test_short_series_padded(self):
        text = format_series_table(
            "n", [10, 20], {"arcs": [0.1]},
        )
        assert "-" in text.splitlines()[-1]
