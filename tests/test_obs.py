"""Unit and integration tests for the observability layer (repro.obs)."""

import json
import threading

import pytest

import repro
from repro import obs
from repro.obs import metrics as metrics_mod
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    RunCapture,
    RunReport,
    config_fingerprint,
)
from repro.obs.tracing import NOOP_SPAN, Span, trace


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts and ends with observability fully off."""
    obs.disable()
    yield
    obs.disable()


class TestSpan:
    def test_nesting_builds_a_tree(self):
        with Span("root") as root:
            with trace("outer") as outer:
                with trace("inner"):
                    pass
                with trace("inner"):
                    pass
        assert [c.name for c in root.children] == ["outer"]
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert root.duration is not None and root.duration >= 0.0
        for _, span in root.walk():
            assert span.duration is not None

    def test_walk_is_preorder_with_depths(self):
        with Span("a") as a:
            with trace("b"):
                with trace("c"):
                    pass
            with trace("d"):
                pass
        visited = [(depth, span.name) for depth, span in a.walk()]
        assert visited == [(0, "a"), (1, "b"), (2, "c"), (1, "d")]

    def test_find_locates_descendants(self):
        with Span("root") as root:
            with trace("stage"):
                with trace("leaf"):
                    pass
        assert root.find("leaf").name == "leaf"
        assert root.find("missing") is None

    def test_exception_recorded_and_propagated(self):
        with pytest.raises(ValueError):
            with Span("root") as root:
                with trace("failing"):
                    raise ValueError("boom")
        failing = root.find("failing")
        assert failing.attributes["error"] == "ValueError"
        assert failing.duration is not None
        # The context variable is restored: new traces are no-ops again.
        assert trace("after") is NOOP_SPAN

    def test_attributes_and_set_chaining(self):
        with Span("root") as root:
            span = trace("stage", size=3)
            with span:
                span.set("found", 7).set("kept", 5)
        stage = root.find("stage")
        assert stage.attributes == {"size": 3, "found": 7, "kept": 5}

    def test_self_seconds_excludes_children(self):
        root = Span("root")
        root.duration = 1.0
        child = Span("child")
        child.duration = 0.4
        root.children.append(child)
        assert root.self_seconds == pytest.approx(0.6)

    def test_round_trip_through_dict(self):
        with Span("root") as root:
            with trace("stage", cells=9):
                pass
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.duration == pytest.approx(root.duration)
        assert rebuilt.children[0].attributes == {"cells": 9}

    def test_threads_trace_independently(self):
        seen = {}

        def worker():
            # A fresh thread has no current span: trace() is inert.
            seen["span"] = trace("in-thread")

        with Span("root") as root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["span"] is NOOP_SPAN
        assert root.children == []


class TestTraceDisabled:
    def test_trace_without_root_is_the_noop_singleton(self):
        assert trace("anything") is NOOP_SPAN
        assert trace("other", key=1) is NOOP_SPAN

    def test_noop_span_accepts_the_full_api(self):
        with trace("stage") as span:
            assert span.set("key", "value") is span
        assert tracing.current_span() is None


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.counter("hits").value == 5
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("occupancy", 0.25)
        registry.set_gauge("occupancy", 0.75)
        assert registry.gauge("occupancy").value == 0.75

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (2.0, 4.0, 6.0):
            registry.observe("seconds", value)
        histogram = registry.histogram("seconds")
        assert histogram.count == 3
        assert histogram.total == pytest.approx(12.0)
        assert histogram.minimum == 2.0
        assert histogram.maximum == 6.0
        assert histogram.mean == pytest.approx(4.0)

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("count", 2)
        registry.set_gauge("level", 0.5)
        registry.observe("seconds", 1.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"] == {"count": 2}
        assert snapshot["gauges"] == {"level": 0.5}
        assert snapshot["histograms"]["seconds"]["count"] == 1

    def test_merge_combines_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("count", 2)
        b.inc("count", 3)
        a.observe("seconds", 1.0)
        b.observe("seconds", 5.0)
        b.set_gauge("level", 0.9)
        a.merge(b)
        assert a.counter("count").value == 5
        assert a.gauge("level").value == 0.9
        histogram = a.histogram("seconds")
        assert histogram.count == 2
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0

    def test_disabled_emitters_are_noops(self):
        assert not metrics_mod.enabled()
        metrics_mod.inc("ignored")
        metrics_mod.set_gauge("ignored", 1.0)
        metrics_mod.observe("ignored", 1.0)
        assert metrics_mod.active() is None

    def test_enable_installs_registry(self):
        registry = metrics_mod.enable()
        metrics_mod.inc("hits", 2)
        assert registry.counter("hits").value == 2
        metrics_mod.disable()
        metrics_mod.inc("hits")
        assert registry.counter("hits").value == 2


class TestLabeledAndBucketedMetrics:
    def test_series_key_round_trip(self):
        key = metrics_mod.series_key(
            "serve.request_seconds", {"endpoint": "predict", "code": "200"}
        )
        assert key == ('serve.request_seconds'
                       '{code="200",endpoint="predict"}')
        name, labels = metrics_mod.parse_series_key(key)
        assert name == "serve.request_seconds"
        assert labels == {"endpoint": "predict", "code": "200"}

    def test_unlabeled_key_is_the_bare_name(self):
        assert metrics_mod.series_key("hits", None) == "hits"
        assert metrics_mod.parse_series_key("hits") == ("hits", {})

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("requests", labels={"endpoint": "a"})
        registry.inc("requests", 2, labels={"endpoint": "b"})
        registry.inc("requests")
        assert registry.counter(
            "requests", labels={"endpoint": "a"}).value == 1
        assert registry.counter(
            "requests", labels={"endpoint": "b"}).value == 2
        assert registry.counter("requests").value == 1

    def test_histogram_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.004, 0.02, 0.02, 0.09, 0.4, 3.0):
            registry.observe("seconds", value)
        summary = registry.histogram("seconds").summary()
        bounds = [bound for bound, _ in summary["buckets"]]
        assert bounds[-1] == "+Inf"
        cumulative = [count for _, count in summary["buckets"]]
        assert cumulative == sorted(cumulative)  # cumulative
        assert cumulative[-1] == summary["count"] == 6
        assert summary["min"] <= summary["p50"] <= summary["p95"]
        assert summary["p95"] <= summary["p99"] <= summary["max"]

    def test_quantiles_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.3)
        summary = registry.histogram("seconds").summary()
        assert summary["p50"] == pytest.approx(0.3)
        assert summary["p99"] == pytest.approx(0.3)

    def test_merge_combines_labeled_series_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("seconds", 0.01, labels={"endpoint": "x"})
        b.observe("seconds", 0.5, labels={"endpoint": "x"})
        b.observe("seconds", 0.2, labels={"endpoint": "y"})
        b.inc("requests", 3, labels={"endpoint": "x"})
        a.merge(b)
        merged = a.histogram("seconds", labels={"endpoint": "x"})
        assert merged.count == 2
        assert merged.minimum == 0.01 and merged.maximum == 0.5
        # Bucket counts merged positionally and stay cumulative-correct.
        assert sum(merged.bucket_counts) == 2
        assert a.histogram("seconds", labels={"endpoint": "y"}).count == 1
        assert a.counter("requests", labels={"endpoint": "x"}).value == 3

    def test_merge_snapshot_round_trip(self):
        worker = MetricsRegistry()
        worker.inc("items", 4, labels={"shard": "0"})
        worker.observe("seconds", 0.25)
        parent = MetricsRegistry()
        parent.inc("items", 1, labels={"shard": "0"})
        parent.merge_snapshot(json.loads(json.dumps(worker.snapshot())))
        assert parent.counter("items", labels={"shard": "0"}).value == 5
        assert parent.histogram("seconds").count == 1

    def test_merge_rejects_mismatched_bucket_bounds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("seconds", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("seconds", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_reset_clears_every_series(self):
        registry = MetricsRegistry()
        registry.inc("hits", labels={"endpoint": "a"})
        registry.set_gauge("level", 0.5)
        registry.observe("seconds", 1.0, labels={"endpoint": "a"})
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {},
                            "histograms": {}}

    def test_snapshot_keys_are_flat_series_keys(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.1, labels={"endpoint": "a"})
        registry.observe("seconds", 0.2)
        snapshot = registry.snapshot()
        assert set(snapshot["histograms"]) == {
            "seconds", 'seconds{endpoint="a"}'
        }
        json.dumps(snapshot)  # stays JSON-ready

    def test_module_emitters_accept_labels(self):
        registry = metrics_mod.enable()
        try:
            metrics_mod.inc("hits", labels={"endpoint": "a"})
            metrics_mod.observe("seconds", 0.1, labels={"endpoint": "a"})
            metrics_mod.set_gauge("level", 1.0, labels={"endpoint": "a"})
        finally:
            metrics_mod.disable()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {'hits{endpoint="a"}': 1}
        assert snapshot["gauges"] == {'level{endpoint="a"}': 1.0}
        assert list(snapshot["histograms"]) == ['seconds{endpoint="a"}']


class TestHistogramEdgeCases:
    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("seconds")
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["total"] == 0.0
        assert summary["min"] is None and summary["max"] is None
        assert summary["mean"] == 0.0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0
        # Cumulative buckets exist (all zero) so exposition still works.
        assert [count for _, count in summary["buckets"]] == \
            [0] * len(summary["buckets"])

    def test_single_observation_pins_every_quantile(self):
        histogram = MetricsRegistry().histogram("seconds")
        histogram.observe(0.42)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 0.42
        for quantile in ("p50", "p95", "p99"):
            assert summary[quantile] == pytest.approx(0.42)
        assert histogram.quantile(0.0) == pytest.approx(0.42)
        assert histogram.quantile(1.0) == pytest.approx(0.42)

    def test_all_values_in_one_bucket_interpolate_within_range(self):
        histogram = MetricsRegistry().histogram(
            "seconds", buckets=(1.0, 10.0, 100.0)
        )
        for value in (4.0, 5.0, 6.0):  # all land in (1.0, 10.0]
            histogram.observe(value)
        assert histogram.bucket_counts == [0, 3, 0, 0]
        # Interpolation is clamped to the observed min/max, not the
        # bucket bounds, so estimates cannot leave [4, 6].
        for q in (0.01, 0.5, 0.95, 0.99):
            assert 4.0 <= histogram.quantile(q) <= 6.0
        assert histogram.quantile(0.5) == pytest.approx(5.0, abs=1.0)

    def test_observation_on_a_bucket_boundary_is_inclusive(self):
        histogram = MetricsRegistry().histogram(
            "seconds", buckets=(1.0, 2.0)
        )
        histogram.observe(1.0)  # value <= bound: first bucket
        histogram.observe(2.5)  # beyond every bound: +Inf bucket
        assert histogram.bucket_counts == [1, 0, 1]
        cumulative = histogram.cumulative_buckets()
        assert cumulative[-1] == (float("inf"), 2)

    def test_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("seconds")
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("seconds", buckets=(1.0, 1.0))


class TestRunReport:
    def _sample_report(self):
        obs.enable()
        with RunCapture("sample", config={"bins": 50}) as capture:
            metrics_mod.inc("stage.items", 3)
            with trace("stage"):
                pass
        return capture.report

    def test_json_round_trip(self):
        report = self._sample_report()
        rebuilt = RunReport.from_json(report.to_json())
        assert rebuilt.name == "sample"
        assert rebuilt.counters() == {"stage.items": 3}
        assert rebuilt.config["sha256"] == report.config["sha256"]
        assert rebuilt.span_tree().find("stage") is not None

    def test_write_and_read(self, tmp_path):
        report = self._sample_report()
        path = tmp_path / "report.json"
        report.write(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "arcs-run-report"
        rebuilt = RunReport.read(path)
        assert rebuilt.duration_seconds == pytest.approx(
            report.duration_seconds
        )

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"format": "something-else"})

    def test_summary_names_spans_and_counters(self):
        report = self._sample_report()
        summary = report.summary()
        assert "sample" in summary
        assert "stage" in summary
        assert "stage.items" in summary

    def test_config_fingerprint_is_deterministic(self):
        first = config_fingerprint({"b": 2, "a": 1})
        second = config_fingerprint({"a": 1, "b": 2})
        assert first["sha256"] == second["sha256"]
        assert first["values"] == {"a": 1, "b": 2}
        different = config_fingerprint({"a": 1, "b": 3})
        assert different["sha256"] != first["sha256"]


class TestRunCapture:
    def test_disabled_capture_produces_no_report(self):
        with RunCapture("run") as capture:
            with trace("stage"):
                pass
        assert capture.report is None

    def test_nested_capture_degrades_to_child_span(self):
        obs.enable()
        with RunCapture("outer") as outer:
            with RunCapture("inner") as inner:
                with trace("leaf"):
                    pass
        assert inner.report is None
        root = outer.report.span_tree()
        assert root.find("inner") is not None
        assert root.find("leaf") is not None

    def test_metrics_merge_back_into_process_totals(self):
        process = metrics_mod.enable()
        tracing.enable()
        metrics_mod.inc("hits", 1)
        with RunCapture("run"):
            metrics_mod.inc("hits", 5)
        # The run's report isolates its own count ...
        # ... and the process registry keeps the running total.
        assert process.counter("hits").value == 6

    def test_exception_still_produces_a_report(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with RunCapture("run") as capture:
                raise RuntimeError("boom")
        assert capture.report is not None
        assert capture.report.span_tree().attributes["error"] == (
            "RuntimeError"
        )


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def table(self):
        return repro.generate_synthetic(
            repro.SyntheticConfig(n_tuples=3000, function_id=2,
                                  perturbation=0.05, seed=11)
        )

    def _small_arcs(self):
        return repro.ARCS(repro.ARCSConfig(
            n_bins_x=20, n_bins_y=20,
            optimizer=repro.OptimizerConfig(
                max_support_levels=4, max_confidence_levels=3,
            ),
        ))

    def test_fit_attaches_a_complete_report(self, table):
        obs.enable()
        result = self._small_arcs().fit(
            table, "age", "salary", "group", "A"
        )
        report = result.run_report
        assert report is not None
        root = report.span_tree()
        for stage in ("bin", "optimizer.search", "optimizer.trial",
                      "cluster", "mine", "smooth", "bitop", "merge",
                      "prune", "verify"):
            assert root.find(stage) is not None, stage
        counters = report.counters()
        for name in ("binner.tuples_binned", "engine.cells_qualified",
                     "bitop.rectangles_enumerated", "optimizer.trials",
                     "verifier.samples_drawn", "smoothing.cells_flipped",
                     "pruning.clusters_dropped"):
            assert name in counters, name
        assert counters["binner.tuples_binned"] == len(table)
        assert counters["optimizer.trials"] == len(result.history)
        assert "binner.occupancy_fraction" in report.gauges()

    def test_fit_without_obs_attaches_nothing(self, table):
        result = self._small_arcs().fit(
            table, "age", "salary", "group", "A"
        )
        assert result.run_report is None

    def test_standalone_optimizer_search_gets_its_own_report(self, table):
        from repro.binning.binner import bin_table
        from repro.core.clusterer import GridClusterer
        from repro.core.optimizer import (
            HeuristicOptimizer,
            OptimizerConfig,
        )
        from repro.core.verifier import Verifier

        obs.enable()
        binner = bin_table(table, "age", "salary", "group", 20, 20)
        rhs_code = binner.rhs_encoding.code_of("A")
        optimizer = HeuristicOptimizer(
            clusterer=GridClusterer(),
            verifier=Verifier(table, "group", "A",
                              sample_size=500, repeats=2),
            weights=repro.MDLWeights(),
            config=OptimizerConfig(max_support_levels=3,
                                   max_confidence_levels=3),
        )
        search = optimizer.search(binner.bin_array, rhs_code)
        assert search.run_report is not None
        assert search.run_report.name == "optimizer.search"
        assert search.run_report.counters()["optimizer.trials"] >= 1


class TestServeIntegration:
    def test_scoring_records_serve_metrics_in_run_report(self):
        import numpy as np

        from repro.core.rules import ClusteredRule, Interval
        from repro.core.segmentation import Segmentation
        from repro.serve.scorer import compile_scorer, scorer_cache_clear

        segmentation = Segmentation.from_rules([
            ClusteredRule(
                "age", "salary",
                Interval(20, 40), Interval(50_000, 100_000),
                "group", "A", support=0.1, confidence=0.9,
            )
        ])
        scorer_cache_clear()
        obs.enable()
        with RunCapture("cli.score") as capture:
            scorer = compile_scorer(segmentation)
            scorer.score_batch(
                np.array([25.0, 5.0, 30.0]),
                np.array([60_000.0, 60_000.0, 70_000.0]),
            )
            compile_scorer(segmentation)  # second compile hits the cache
        counters = capture.report.counters()
        assert counters["serve.tuples_scored"] == 3
        assert counters["serve.scorer_cache_misses"] == 1
        assert counters["serve.scorer_cache_hits"] == 1
        histograms = capture.report.metrics.get("histograms", {})
        assert histograms["serve.batch_size"]["count"] == 1
        assert "serve.compile_seconds" in histograms
        # The whole report survives a JSON round trip (--metrics-out).
        rebuilt = RunReport.from_json(capture.report.to_json())
        assert rebuilt.counters()["serve.tuples_scored"] == 3
