"""Guard rails on the public API surface.

These tests pin the import contract a downstream user relies on: the
names `repro` re-exports exist, resolve, and carry documentation, and
the subpackage `__all__` lists stay truthful.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.binning",
    "repro.mining",
    "repro.data",
    "repro.baselines",
    "repro.analysis",
    "repro.extensions",
    "repro.viz",
]


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_core_entry_points_exported(self):
        for name in ("ARCS", "ARCSConfig", "ARCSResult", "Table",
                     "SyntheticConfig", "generate_synthetic",
                     "Segmentation", "ClusteredRule", "BitOpClusterer"):
            assert name in repro.__all__

    def test_exports_are_documented(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_lists_are_truthful(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists missing name {name!r}"
            )

    def test_every_module_has_a_docstring(self):
        """Deliverable (e): doc comments on every public item — start
        with every module."""
        import pkgutil
        import repro as package
        for info in pkgutil.walk_packages(package.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a docstring"

    def test_public_classes_and_functions_documented(self):
        import pkgutil
        import repro as package
        undocumented = []
        for info in pkgutil.walk_packages(package.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                defined_here = (
                    getattr(obj, "__module__", None) == info.name
                )
                is_public_callable = (
                    inspect.isclass(obj) or inspect.isfunction(obj)
                )
                if defined_here and is_public_callable:
                    if not obj.__doc__:
                        undocumented.append(f"{info.name}.{name}")
        assert not undocumented, (
            "public items without docstrings: " + ", ".join(undocumented)
        )
