"""Property-based tests on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.strategies import equi_width_layout
from repro.core.grid import RuleGrid
from repro.core.mdl import mdl_cost
from repro.core.rules import GridRect, Interval
from repro.core.smoothing import neighbourhood_mean, smooth_binary

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw):
    low = draw(finite_floats)
    width = draw(st.floats(min_value=1e-3, max_value=1e6,
                           allow_nan=False))
    closed = draw(st.booleans())
    return Interval(low, low + width, closed_high=closed)


@st.composite
def rects(draw, max_coord=12):
    x_lo = draw(st.integers(0, max_coord))
    x_hi = draw(st.integers(x_lo, max_coord))
    y_lo = draw(st.integers(0, max_coord))
    y_hi = draw(st.integers(y_lo, max_coord))
    return GridRect(x_lo, x_hi, y_lo, y_hi)


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_intersection_within_both(self, a, b):
        got = a.intersect(b)
        if got is not None:
            assert got.low >= a.low and got.low >= b.low
            assert got.high <= a.high and got.high <= b.high

    @given(intervals(), intervals())
    def test_intersection_symmetric_bounds(self, a, b):
        ab = a.intersect(b)
        ba = b.intersect(a)
        if ab is None:
            assert ba is None
        else:
            assert (ab.low, ab.high) == (ba.low, ba.high)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.low <= min(a.low, b.low)
        assert hull.high >= max(a.high, b.high)

    @given(intervals(), finite_floats)
    def test_membership_consistent_with_bounds(self, interval, x):
        inside = bool(interval.contains([x])[0])
        if inside:
            assert interval.low <= x
            assert x < interval.high or (
                interval.closed_high and x == interval.high
            )

    @given(intervals(), intervals())
    def test_overlap_iff_intersection(self, a, b):
        # Half-open semantics: a nonempty intersection implies overlap.
        if a.intersect(b) is not None:
            assert a.overlaps(b)


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_consistent_with_overlap(self, a, b):
        got = a.intersect(b)
        assert (got is not None) == a.overlaps(b)
        if got is not None:
            assert got.area <= min(a.area, b.area)

    @given(rects(), rects())
    def test_bounding_union_contains_both(self, a, b):
        hull = a.union_bounding(b)
        assert hull.area >= max(a.area, b.area)
        for rect in (a, b):
            assert hull.contains_cell(rect.x_lo, rect.y_lo)
            assert hull.contains_cell(rect.x_hi, rect.y_hi)

    @given(rects())
    def test_area_equals_cell_count(self, rect):
        assert rect.area == len(list(rect.cells()))


class TestBinningProperties:
    @given(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        st.floats(min_value=1e-2, max_value=1e5, allow_nan=False),
        st.integers(1, 200),
        st.lists(st.floats(0, 1), min_size=1, max_size=50),
    )
    def test_assignment_respects_bin_bounds(self, low, width, n_bins,
                                            fractions):
        layout = equi_width_layout("x", low, low + width, n_bins)
        values = np.array([low + f * width for f in fractions])
        bins = layout.assign(values)
        for value, index in zip(values, bins):
            bin_low, bin_high = layout.bin_interval(int(index))
            is_last = index == n_bins - 1
            assert bin_low <= value + 1e-9
            if not is_last:
                assert value < bin_high + 1e-9

    @given(st.integers(1, 100))
    def test_edges_cover_range_exactly(self, n_bins):
        layout = equi_width_layout("x", 0.0, 1.0, n_bins)
        assert layout.edges[0] == 0.0
        assert layout.edges[-1] == 1.0
        assert layout.n_bins == n_bins


class TestSmoothingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 10), st.integers(2, 10), st.data())
    def test_mean_preserves_total_range(self, n_x, n_y, data):
        values = np.array(
            data.draw(
                st.lists(
                    st.lists(st.floats(0, 1), min_size=n_y,
                             max_size=n_y),
                    min_size=n_x, max_size=n_x,
                )
            )
        )
        smoothed = neighbourhood_mean(values)
        assert smoothed.min() >= values.min() - 1e-12
        assert smoothed.max() <= values.max() + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.integers(3, 8), st.integers(3, 8))
    def test_full_and_empty_grids_are_fixed_points(self, n_x, n_y):
        empty = RuleGrid.empty(n_x, n_y)
        assert smooth_binary(empty).is_empty()
        full = RuleGrid(np.ones((n_x, n_y), dtype=bool))
        assert smooth_binary(full).cells.all()


class TestMdlProperties:
    @given(st.integers(1, 10_000), st.integers(0, 10_000))
    def test_cost_finite_and_nonnegative(self, clusters, errors):
        cost = mdl_cost(clusters, errors)
        assert math.isfinite(cost)
        assert cost >= 0.0

    @given(st.integers(1, 1000), st.integers(0, 1000),
           st.integers(0, 1000), st.integers(0, 1000))
    def test_dominance(self, clusters, errors, extra_clusters,
                       extra_errors):
        """Fewer clusters AND fewer errors never cost more."""
        better = mdl_cost(clusters, errors)
        worse = mdl_cost(clusters + extra_clusters, errors + extra_errors)
        assert better <= worse

    @given(st.integers(1, 1000), st.integers(0, 1000),
           st.floats(0.1, 10), st.floats(0.1, 10))
    def test_weights_scale_linearly(self, clusters, errors, wc, we):
        base_model = mdl_cost(clusters, 0, cluster_weight=1.0,
                              error_weight=0.0)
        base_data = mdl_cost(clusters, errors, cluster_weight=0.0,
                             error_weight=1.0)
        combined = mdl_cost(clusters, errors, cluster_weight=wc,
                            error_weight=we)
        assert combined == (
            wc * base_model + we * base_data
        ) or abs(combined - (wc * base_model + we * base_data)) < 1e-9
