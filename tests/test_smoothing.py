"""Unit tests for grid smoothing (paper Section 3.4, Figure 7)."""

import numpy as np
import pytest

from repro.core.grid import RuleGrid
from repro.core.rules import GridRect
from repro.core.smoothing import (
    neighbourhood_mean,
    smooth_binary,
    smooth_support,
)


class TestNeighbourhoodMean:
    def test_interior_cell_uses_nine_neighbours(self):
        values = np.zeros((3, 3))
        values[1, 1] = 9.0
        got = neighbourhood_mean(values)
        assert got[1, 1] == pytest.approx(1.0)
        assert got[0, 0] == pytest.approx(9.0 / 4)

    def test_corner_normalised_by_four(self):
        values = np.zeros((3, 3))
        values[0, 0] = 4.0
        got = neighbourhood_mean(values)
        assert got[0, 0] == pytest.approx(1.0)

    def test_edge_normalised_by_six(self):
        values = np.zeros((3, 3))
        values[0, 1] = 6.0
        got = neighbourhood_mean(values)
        assert got[0, 1] == pytest.approx(1.0)

    def test_constant_grid_is_fixed_point(self):
        values = np.full((4, 5), 0.7)
        assert np.allclose(neighbourhood_mean(values), 0.7)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            neighbourhood_mean(np.zeros(4))

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            neighbourhood_mean(np.zeros((2, 2)), radius=0)


class TestSmoothBinary:
    def test_fills_single_hole(self):
        """The Figure 7 behaviour: a pinhole inside a dense region
        disappears."""
        grid = RuleGrid.empty(7, 7)
        grid.set_rect(GridRect(0, 6, 0, 6))
        grid.cells[3, 3] = False
        smoothed = smooth_binary(grid)
        assert smoothed.cells[3, 3]

    def test_removes_isolated_cell(self):
        grid = RuleGrid.empty(7, 7)
        grid.cells[3, 3] = True
        smoothed = smooth_binary(grid)
        assert not smoothed.cells[3, 3]

    def test_preserves_solid_block_interior(self):
        grid = RuleGrid.empty(9, 9)
        grid.set_rect(GridRect(2, 6, 2, 6))
        smoothed = smooth_binary(grid)
        # Interior must survive intact.
        assert smoothed.cells[3:6, 3:6].all()

    def test_zero_passes_is_identity(self):
        grid = RuleGrid.empty(4, 4)
        grid.set_rect(GridRect(0, 0, 0, 3))
        smoothed = smooth_binary(grid, passes=0)
        assert np.array_equal(smoothed.cells, grid.cells)

    def test_input_not_modified(self):
        grid = RuleGrid.empty(5, 5)
        grid.cells[2, 2] = True
        smooth_binary(grid)
        assert grid.cells[2, 2]

    def test_low_threshold_dilates(self):
        grid = RuleGrid.empty(5, 5)
        grid.set_rect(GridRect(1, 3, 1, 3))
        smoothed = smooth_binary(grid, threshold=0.2)
        assert smoothed.n_set > grid.n_set

    def test_high_threshold_erodes(self):
        grid = RuleGrid.empty(5, 5)
        grid.set_rect(GridRect(1, 3, 1, 3))
        smoothed = smooth_binary(grid, threshold=0.99)
        assert smoothed.n_set < grid.n_set

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            smooth_binary(RuleGrid.empty(2, 2), threshold=0.0)

    def test_rejects_negative_passes(self):
        with pytest.raises(ValueError):
            smooth_binary(RuleGrid.empty(2, 2), passes=-1)

    def test_jagged_edge_straightened(self):
        """A ragged boundary (alternating teeth) smooths toward a straight
        edge — the paper's motivating anomaly.  Straightness is measured
        as the number of on/off alternations along the boundary column."""
        grid = RuleGrid.empty(8, 8)
        grid.set_rect(GridRect(0, 7, 0, 4))
        for i in range(0, 8, 2):
            grid.cells[i, 5] = True  # teeth

        def alternations(column):
            return int((column[1:] != column[:-1]).sum())

        before = alternations(grid.cells[:, 5])
        smoothed = smooth_binary(grid, passes=2)
        after = alternations(smoothed.cells[:, 5])
        assert before == 7
        assert after < before
        # The bulk region itself must survive smoothing.
        assert smoothed.cells[:, 0:4].all()


class TestSmoothSupport:
    def test_hole_inherits_neighbour_mass(self):
        support = np.full((5, 5), 0.02)
        support[2, 2] = 0.0  # pinhole below threshold
        grid = smooth_support(support, min_support=0.01)
        assert grid.cells[2, 2]

    def test_lone_marginal_cell_averaged_away(self):
        support = np.zeros((5, 5))
        support[2, 2] = 0.012  # just above threshold but alone
        grid = smooth_support(support, min_support=0.01)
        assert not grid.cells[2, 2]

    def test_strong_lone_cell_survives(self):
        support = np.zeros((5, 5))
        support[2, 2] = 0.5
        grid = smooth_support(support, min_support=0.01)
        assert grid.cells[2, 2]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            smooth_support(np.zeros((2, 2)), min_support=-0.1)
        with pytest.raises(ValueError):
            smooth_support(np.zeros((2, 2)), min_support=0.1, passes=0)
