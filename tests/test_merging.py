"""Unit tests for cluster hull-merging."""

import pytest

from repro.core.grid import RuleGrid
from repro.core.merging import hull_cover_fraction, merge_clusters
from repro.core.rules import GridRect


def grid_with(*rects, shape=(10, 10)):
    grid = RuleGrid.empty(*shape)
    for rect in rects:
        grid.set_rect(rect)
    return grid


class TestHullCoverFraction:
    def test_fully_set(self):
        grid = grid_with(GridRect(0, 1, 0, 1))
        assert hull_cover_fraction(grid, GridRect(0, 1, 0, 1)) == 1.0

    def test_half_set(self):
        grid = grid_with(GridRect(0, 0, 0, 1))
        assert hull_cover_fraction(grid, GridRect(0, 1, 0, 1)) == 0.5

    def test_empty(self):
        grid = RuleGrid.empty(4, 4)
        assert hull_cover_fraction(grid, GridRect(0, 1, 0, 1)) == 0.0


class TestMergeClusters:
    def test_flush_fragments_merge_losslessly(self):
        """Two fragments of one rectangle merge back into it."""
        left = GridRect(0, 4, 0, 2)
        right = GridRect(0, 4, 3, 5)
        grid = grid_with(left, right)
        merged = merge_clusters([left, right], grid, cover_fraction=1.0)
        assert merged == [GridRect(0, 4, 0, 5)]

    def test_sliver_absorbed_into_main_rectangle(self):
        """The jagged-boundary case: a big rectangle plus a thin adjacent
        sliver consolidates when the hull is dense enough."""
        main = GridRect(0, 9, 0, 6)
        sliver = GridRect(0, 7, 7, 7)
        grid = grid_with(main, sliver)
        merged = merge_clusters([main, sliver], grid, cover_fraction=0.8)
        assert len(merged) == 1
        assert merged[0] == GridRect(0, 9, 0, 7)

    def test_distant_clusters_stay_apart(self):
        a = GridRect(0, 1, 0, 1)
        b = GridRect(8, 9, 8, 9)
        grid = grid_with(a, b)
        merged = merge_clusters([a, b], grid, cover_fraction=0.8)
        assert sorted(merged) == [a, b]

    def test_cover_fraction_gate(self):
        """The same pair merges at a loose threshold and not at a strict
        one."""
        a = GridRect(0, 4, 0, 1)
        b = GridRect(0, 4, 3, 4)
        grid = grid_with(a, b)  # hull is 4/5 covered
        assert len(merge_clusters([a, b], grid, 0.75)) == 1
        assert len(merge_clusters([a, b], grid, 0.9)) == 2

    def test_hull_trimmed_to_content(self):
        """A merge never stretches into fully empty border bands."""
        a = GridRect(0, 4, 0, 1)
        b = GridRect(0, 4, 2, 3)
        grid = grid_with(a, b)
        merged = merge_clusters([a, b], grid, cover_fraction=0.5)
        assert merged == [GridRect(0, 4, 0, 3)]

    def test_empty_rectangle_dropped(self):
        ghost = GridRect(5, 6, 5, 6)  # nothing set underneath
        grid = RuleGrid.empty(10, 10)
        assert merge_clusters([ghost], grid) == []

    def test_single_cluster_passthrough(self):
        a = GridRect(1, 2, 1, 2)
        grid = grid_with(a)
        assert merge_clusters([a], grid) == [a]

    def test_chain_of_three_merges(self):
        parts = [
            GridRect(0, 4, 0, 1),
            GridRect(0, 4, 2, 3),
            GridRect(0, 4, 4, 5),
        ]
        grid = grid_with(*parts)
        merged = merge_clusters(parts, grid, cover_fraction=1.0)
        assert merged == [GridRect(0, 4, 0, 5)]

    def test_rejects_bad_cover_fraction(self):
        with pytest.raises(ValueError):
            merge_clusters([], RuleGrid.empty(2, 2), cover_fraction=0.0)
