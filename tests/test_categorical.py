"""Unit tests for categorical value encoding."""

import numpy as np
import pytest

from repro.binning.categorical import CategoricalEncoding


class TestConstruction:
    def test_declared_order_preserved(self):
        encoding = CategoricalEncoding("group", ("b", "a", "c"))
        assert encoding.values == ("b", "a", "c")
        assert encoding.cardinality == 3

    def test_from_values_first_seen_order(self):
        encoding = CategoricalEncoding.from_values(
            "g", ["y", "x", "y", "z", "x"]
        )
        assert encoding.values == ("y", "x", "z")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CategoricalEncoding("g", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CategoricalEncoding("g", ("a", "a"))


class TestCoding:
    def test_code_of(self):
        encoding = CategoricalEncoding("g", ("A", "other"))
        assert encoding.code_of("A") == 0
        assert encoding.code_of("other") == 1

    def test_code_of_unknown(self):
        encoding = CategoricalEncoding("g", ("A",))
        with pytest.raises(KeyError):
            encoding.code_of("B")

    def test_encode_round_trip(self):
        encoding = CategoricalEncoding("g", ("a", "b", "c"))
        values = ["c", "a", "b", "a"]
        codes = encoding.encode(values)
        assert codes.dtype == np.int64
        assert list(codes) == [2, 0, 1, 0]
        assert encoding.decode(codes) == values

    def test_encode_unknown_value(self):
        encoding = CategoricalEncoding("g", ("a",))
        with pytest.raises(KeyError, match="not in the domain"):
            encoding.encode(["a", "zzz"])

    def test_encode_empty(self):
        encoding = CategoricalEncoding("g", ("a",))
        assert len(encoding.encode([])) == 0

    def test_integer_values(self):
        encoding = CategoricalEncoding("zipcode", tuple(range(9)))
        assert encoding.code_of(4) == 4
        assert encoding.decode([8, 0]) == [8, 0]
