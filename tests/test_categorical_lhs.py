"""Unit tests for the categorical-LHS extension (Section 5)."""

import numpy as np
import pytest

from repro.core.arcs import ARCSConfig
from repro.core.optimizer import OptimizerConfig
from repro.data.schema import Table, categorical, quantitative
from repro.extensions.categorical_lhs import (
    density_ordering,
    fit_categorical_lhs,
)

REGIONS = ("north", "south", "east", "west", "centre")


def region_table(n=12_000, seed=0):
    """Group A concentrates in two regions and one salary band."""
    rng = np.random.default_rng(seed)
    region = rng.choice(REGIONS, size=n)
    salary = rng.uniform(0, 100_000, size=n)
    dense = np.isin(region, ("north", "east"))
    in_band = (salary >= 40_000) & (salary < 80_000)
    base = dense & in_band
    noise = rng.random(n) < 0.02
    labels = np.where(base ^ noise, "A", "other")
    return Table.from_columns(
        [categorical("region", REGIONS),
         quantitative("salary", 0, 100_000),
         categorical("group", ("A", "other"))],
        {"region": region.tolist(), "salary": salary,
         "group": labels.tolist()},
    )


class TestDensityOrdering:
    def test_dense_regions_first(self):
        table = region_table()
        ordering = density_ordering(table, "region", "group", "A")
        assert set(ordering[:2]) == {"north", "east"}
        assert len(ordering) == len(REGIONS)

    def test_deterministic(self):
        table = region_table()
        a = density_ordering(table, "region", "group", "A")
        b = density_ordering(table, "region", "group", "A")
        assert a == b


class TestFitCategoricalLhs:
    @pytest.fixture(scope="class")
    def fitted(self):
        table = region_table()
        config = ARCSConfig(
            n_bins_y=20,
            optimizer=OptimizerConfig(max_support_levels=6,
                                      max_confidence_levels=4),
            sample_size=800,
        )
        rules, ordering, result = fit_categorical_lhs(
            table, "region", "salary", "group", "A", config=config
        )
        return table, rules, ordering, result

    def test_finds_the_dense_value_set(self, fitted):
        _, rules, _, _ = fitted
        assert rules
        top = max(rules, key=lambda rule: rule.support)
        assert set(top.x_values) == {"north", "east"}

    def test_salary_band_recovered(self, fitted):
        _, rules, _, _ = fitted
        top = max(rules, key=lambda rule: rule.support)
        assert abs(top.y_interval.low - 40_000) <= 10_000
        assert abs(top.y_interval.high - 80_000) <= 10_000

    def test_rule_matches_semantics(self, fitted):
        table, rules, _, _ = fitted
        top = max(rules, key=lambda rule: rule.support)
        got = top.matches(
            table.column("region")[:50], table.column("salary")[:50]
        )
        value_set = set(top.x_values)
        for i in range(50):
            expected = (
                table.column("region")[i] in value_set
                and top.y_interval.contains(
                    [table.column("salary")[i]]
                )[0]
            )
            assert got[i] == expected

    def test_str_lists_value_set(self, fitted):
        _, rules, _, _ = fitted
        assert "in {" in str(rules[0])

    def test_rejects_quantitative_x(self, fitted):
        table, _, _, _ = fitted
        with pytest.raises(ValueError, match="not categorical"):
            fit_categorical_lhs(
                table, "salary", "salary", "group", "A"
            )


class TestFitCategoricalPair:
    """Both LHS attributes categorical (Section 5's full goal)."""

    CITIES = ("u1", "u2", "u3", "u4")

    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(33)
        n = 12_000
        region = rng.choice(REGIONS, size=n)
        city = rng.choice(self.CITIES, size=n)
        dense = (
            np.isin(region, ("north", "east"))
            & np.isin(city, ("u1", "u3"))
        )
        labels = np.where(dense, "A", "other")
        table = Table.from_columns(
            [categorical("region", REGIONS),
             categorical("city", self.CITIES),
             categorical("group", ("A", "other"))],
            {"region": region.tolist(), "city": city.tolist(),
             "group": labels.tolist()},
        )
        from repro.extensions.categorical_lhs import fit_categorical_pair
        config = ARCSConfig(
            optimizer=OptimizerConfig(max_support_levels=5,
                                      max_confidence_levels=5),
            sample_size=800,
        )
        rules, orderings, result = fit_categorical_pair(
            table, "region", "city", "group", "A", config=config
        )
        return table, rules, orderings, result

    def test_finds_both_value_sets(self, fitted):
        _, rules, _, _ = fitted
        assert rules
        top = max(rules, key=lambda rule: rule.support)
        assert set(top.x_values) == {"north", "east"}
        assert set(top.y_values) == {"u1", "u3"}

    def test_orderings_density_first(self, fitted):
        _, _, (x_ordering, y_ordering), _ = fitted
        assert set(x_ordering[:2]) == {"north", "east"}
        assert set(y_ordering[:2]) == {"u1", "u3"}

    def test_matches_semantics(self, fitted):
        table, rules, _, _ = fitted
        top = max(rules, key=lambda rule: rule.support)
        got = top.matches(
            table.column("region")[:100], table.column("city")[:100]
        )
        x_set, y_set = set(top.x_values), set(top.y_values)
        for i in range(100):
            expected = (
                table.column("region")[i] in x_set
                and table.column("city")[i] in y_set
            )
            assert got[i] == expected

    def test_str_lists_both_sets(self, fitted):
        _, rules, _, _ = fitted
        text = str(rules[0])
        assert text.count("in {") == 2

    def test_rejects_quantitative_attribute(self, fitted):
        from repro.extensions.categorical_lhs import fit_categorical_pair
        table = region_table(n=500)
        with pytest.raises(ValueError, match="not categorical"):
            fit_categorical_pair(
                table, "region", "salary", "group", "A"
            )
