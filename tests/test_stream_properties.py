"""Property-based tests of the window algebra.

Hypothesis drives arbitrary interleavings of ingests, sliding expiries
and refit closes, then checks the streaming invariant: the windowed
BinArray always equals — exactly, on every integer counter — a fresh
BinArray accumulated from the window's surviving tuples.  Because
``add_chunk`` and ``remove_chunk`` share their scatter grids and the
counters are int64, the equality is ``==``, not ``allclose``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.bin_array import BinArray
from repro.binning.categorical import CategoricalEncoding
from repro.binning.strategies import equi_width_layout
from repro.stream import SLIDING, TUMBLING, StreamWindow, WindowConfig

N_X, N_Y, N_CODES = 5, 4, 3


def make_window(mode, size, refit_every=None, target=None):
    return StreamWindow(
        equi_width_layout("x", 0, 5, N_X),
        equi_width_layout("y", 0, 4, N_Y),
        CategoricalEncoding("g", ("A", "B", "other")),
        WindowConfig(mode=mode, size=size, refit_every=refit_every),
        target_code=target,
    )


@st.composite
def chunk_arrays(draw, max_len=12):
    n = draw(st.integers(0, max_len))
    ints = st.lists(st.integers(0, 10**9), min_size=n, max_size=n)
    return (
        np.array(draw(ints), dtype=np.int64) % N_X,
        np.array(draw(ints), dtype=np.int64) % N_Y,
        np.array(draw(ints), dtype=np.int64) % N_CODES,
    )


#: One stream event: a chunk to ingest, or a refit close.
events = st.lists(
    st.one_of(chunk_arrays(), st.just("refit")), min_size=1, max_size=30
)


def drive(window, sequence):
    """Apply a generated event sequence to the window."""
    for event in sequence:
        if event == "refit":
            window.mark_refit()
        else:
            window.ingest(*event)


def fresh_equivalent(window):
    xs, ys, codes = window.surviving()
    fresh = BinArray(
        window.x_layout, window.y_layout, window.rhs_encoding,
        target_code=window.target_code,
    )
    fresh.add_chunk(xs, ys, codes)
    return fresh, len(xs)


def assert_invariant(window):
    fresh, survivors = fresh_equivalent(window)
    assert np.array_equal(fresh.counts, window.bin_array.counts)
    assert np.array_equal(fresh.totals, window.bin_array.totals)
    assert fresh.n_total == window.bin_array.n_total == survivors
    assert window.window_tuples == survivors


@settings(max_examples=60, deadline=None)
@given(sequence=events, size=st.integers(1, 25))
def test_sliding_interleavings_round_trip(sequence, size):
    window = make_window(SLIDING, size)
    drive(window, sequence)
    assert_invariant(window)
    assert window.window_tuples <= size


@settings(max_examples=60, deadline=None)
@given(sequence=events, size=st.integers(1, 25))
def test_tumbling_interleavings_round_trip(sequence, size):
    window = make_window(TUMBLING, size)
    drive(window, sequence)
    assert_invariant(window)


@settings(max_examples=40, deadline=None)
@given(sequence=events, size=st.integers(1, 25),
       target=st.integers(0, N_CODES - 1))
def test_single_target_mode_keeps_the_invariant(sequence, size, target):
    window = make_window(SLIDING, size, target=target)
    drive(window, sequence)
    assert_invariant(window)


@settings(max_examples=40, deadline=None)
@given(sequence=events, size=st.integers(1, 25))
def test_invariant_holds_at_every_step(sequence, size):
    """Not just at the end: every intermediate state is exact."""
    window = make_window(SLIDING, size)
    for event in sequence:
        if event == "refit":
            window.mark_refit()
        else:
            window.ingest(*event)
        assert_invariant(window)


@settings(max_examples=60, deadline=None)
@given(chunk=chunk_arrays(max_len=20))
def test_add_then_remove_is_identity(chunk):
    """remove_chunk is the exact inverse of add_chunk."""
    array = BinArray(
        equi_width_layout("x", 0, 5, N_X),
        equi_width_layout("y", 0, 4, N_Y),
        CategoricalEncoding("g", ("A", "B", "other")),
    )
    before_counts = array.counts.copy()
    before_totals = array.totals.copy()
    array.add_chunk(*chunk)
    array.remove_chunk(*chunk)
    assert np.array_equal(array.counts, before_counts)
    assert np.array_equal(array.totals, before_totals)
    assert array.n_total == 0


@settings(max_examples=40, deadline=None)
@given(chunks=st.lists(chunk_arrays(), min_size=2, max_size=6),
       data=st.data())
def test_removal_order_does_not_matter(chunks, data):
    """Removing accumulated chunks in any order empties the array."""
    array = BinArray(
        equi_width_layout("x", 0, 5, N_X),
        equi_width_layout("y", 0, 4, N_Y),
        CategoricalEncoding("g", ("A", "B", "other")),
    )
    for chunk in chunks:
        array.add_chunk(*chunk)
    order = data.draw(st.permutations(range(len(chunks))))
    for index in order:
        array.remove_chunk(*chunks[index])
    assert not array.counts.any()
    assert not array.totals.any()
    assert array.n_total == 0
